"""Simulated CWC central server (Sections 5 and 6), chaos-hardened.

:class:`CentralServer` drives a complete CWC run on the event loop:

1. at a scheduling instant it builds a
   :class:`~repro.core.instance.SchedulingInstance` from the currently
   plugged-in phones and the jobs awaiting scheduling, and asks its
   scheduler for a :class:`~repro.core.schedule.Schedule`;
2. per phone it runs the dispatch pipeline — *the next assigned task is
   copied only after the phone completes executing its last assigned
   task* — paying the executable-shipping cost once per (phone, job);
3. completions carry the measured local execution time, which is folded
   into the runtime predictor (Section 4.1's online refinement);
4. failures follow Section 5: online failures checkpoint the partially
   processed partition immediately; offline failures are detected by
   the keep-alive monitor and lose the in-flight partition's progress.
   Failed work accumulates in the failed-task list ``F_A`` and is
   rescheduled together with any newly arrived jobs at the *next*
   scheduling instant — which in this simulation is when every
   surviving phone has drained its queue.

Beyond the paper, the server can defend a chaos-injected fleet
(:mod:`repro.sim.chaos`).  With a :class:`~repro.sim.chaos.ResiliencePolicy`:

* **dispatch timeouts** — any copy/execute running longer than ``k``
  times its expected duration is aborted and retried with exponential
  backoff, up to a bounded retry budget; exhausted partitions fall back
  to ``F_A`` for next-round rescheduling;
* **straggler detection + speculation** — an execution running longer
  than ``k`` times its *predicted* time is flagged; a speculative
  backup copy is dispatched to an idle phone, the first result wins
  and the loser is cancelled;
* **result verification** — each completed partition is optionally
  re-executed on a second phone; matching payloads are credited once,
  mismatches are quarantined (both copies discarded, partition retried).

Every partition is *credited exactly once* regardless of how many
speculative or verification copies ran, so the trace conservation
invariant (:mod:`repro.sim.validation`) holds under arbitrary chaos.

The simulation is exact in the cost model's terms: copies take
``kb × b_i`` (true ``b_i``), executions take ``kb × c_ij`` (true
``c_ij`` from :class:`~repro.sim.entities.FleetGroundTruth`, times the
phone's throttling slowdown and any chaos straggler factor).  The
*scheduler* sees only measured ``b_i`` and predicted ``c_ij``, so
prediction error, learning, and load imbalance all play out exactly as
on the paper's testbed.
"""

from __future__ import annotations

import enum
import hashlib
import json
import time
from collections import deque
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field

from ..core.instance import SchedulingInstance
from ..core.migration import Checkpoint, FailedTaskList
from ..core.model import Job, PhoneSpec
from ..core.prediction import RuntimePredictor
from ..core.schedule import Assignment, Schedule
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from .chaos import ChaosPlan, ResiliencePolicy
from .engine import EventLoop, EventToken
from .entities import FleetGroundTruth, PhoneRuntime, PhoneState
from .failures import FailurePlan, PlannedFailure
from .keepalive import DEFAULT_PERIOD_MS, DEFAULT_TOLERATED_MISSES, KeepAliveMonitor
from .trace import (
    ChaosRecord,
    CompletionRecord,
    FailureRecord,
    ResilienceEvent,
    Span,
    SpanKind,
    TimelineTrace,
)

__all__ = ["CentralServer", "RunResult", "RoundRecord"]


@dataclass(frozen=True)
class RoundRecord:
    """One scheduling round: the instant, the schedule, its prediction."""

    round_index: int
    scheduled_at_ms: float
    schedule: Schedule
    predicted_makespan_ms: float
    rescheduled: bool
    job_ids: tuple[str, ...]
    #: Wall-clock time the scheduler spent producing this round's
    #: schedule (real time, not simulated time).
    scheduling_wall_ms: float = 0.0
    #: Real Algorithm-1 packs the capacity search issued (0 for
    #: schedulers that expose no diagnostics).
    packer_passes: int = 0
    #: Bracket updates the capacity bisection walked.
    bisection_steps: int = 0
    #: Whether a verified warm hint steered this round's search.
    warm_started: bool = False
    #: Packing backend the capacity search resolved to ("" for
    #: schedulers that expose no diagnostics).
    kernel: str = ""
    #: Candidate-block width the capacity search resolved to (1 for
    #: serial probing or schedulers that expose no diagnostics).
    batch_width: int = 1
    #: Fraction of speculative probe verdicts the bisection consumed.
    #: 1.0 when probing was serial — the convention everywhere (see
    #: :class:`~repro.core.capacity.CapacitySearchResult`) is "no pool
    #: means nothing speculated, so nothing was wasted".
    probe_worker_utilisation: float = 1.0
    #: Wall ms the capacity search spent blocked on pool verdicts this
    #: round (tracing-only diagnostic; 0.0 unless a tracer was armed).
    probe_wait_ms: float = 0.0
    #: Wall ms probe workers spent in consumed packs this round
    #: (tracing-only diagnostic; 0.0 unless a tracer was armed).
    probe_exec_ms: float = 0.0
    #: Capacity the search converged to (0.0 for schedulers that expose
    #: no diagnostics).
    capacity_ms: float = 0.0
    #: Pods the sharded scheduler solved this round (1 for monolithic
    #: schedulers and for sharded rounds that delegated).
    pods: int = 1
    #: Job-to-pod splitter policy of the round ("none" unless sharded).
    pod_assign: str = "none"
    #: Slowest single pod solve this round (wall clock, ms).
    pod_solve_ms_max: float = 0.0
    #: Total pod solve time this round (wall clock, ms).
    pod_solve_ms_sum: float = 0.0
    #: Sharded makespan over the certification floor (0.0 when the
    #: round was not certified).
    shard_bound_ratio: float = 0.0
    #: Scheduling policy that produced this round ("" for schedulers
    #: that expose no name).
    policy: str = ""
    #: Proactive replica directives the policy attached to this round
    #: (0 for policies that never replicate).
    replicas: int = 0
    #: The round's scheduling instance, retained only when the server is
    #: constructed with ``record_instances=True`` (the verify oracle's
    #: tap); ``None`` otherwise to keep :class:`RunResult` light.
    instance: SchedulingInstance | None = None


@dataclass
class RunResult:
    """Everything a simulated run produced."""

    trace: TimelineTrace
    rounds: list[RoundRecord]
    unfinished_jobs: tuple[Job, ...] = ()

    @property
    def measured_makespan_ms(self) -> float:
        return self.trace.makespan_ms()

    @property
    def predicted_makespan_ms(self) -> float:
        """Prediction for the first round (what Fig. 12a compares)."""
        return self.rounds[0].predicted_makespan_ms if self.rounds else 0.0

    @property
    def reschedule_overhead_ms(self) -> float:
        return self.trace.reschedule_overhead_ms()


class _Role(enum.Enum):
    """Why a partition copy is running on a phone."""

    PRIMARY = "primary"    # the scheduled (or retried) dispatch
    BACKUP = "backup"      # speculative duplicate of a straggler
    VERIFY = "verify"      # duplicate execution for result verification


@dataclass
class _Instance:
    """One logical partition in flight (credited exactly once).

    ``runners`` tracks the phones currently holding a primary or backup
    copy; verification duplicates are tracked via ``pending_verify``.
    """

    assignment: Assignment
    attempt: int = 0
    runners: dict[str, "_WorkItem"] = field(default_factory=dict)
    completed: bool = False
    abandoned: bool = False
    speculated: bool = False
    pending_verify: bool = False
    primary_data: "_CompletionData | None" = None

    @property
    def resolved(self) -> bool:
        return self.completed or self.abandoned


@dataclass
class _WorkItem:
    """One dispatchable copy of a partition, bound to its instance."""

    instance: _Instance
    role: _Role
    #: True for proactive replicas a policy requested at round start
    #: (as opposed to reactive straggler backups); only meaningful for
    #: ``_Role.BACKUP`` items.
    proactive: bool = False

    @property
    def redundant(self) -> bool:
        return self.role is not _Role.PRIMARY


@dataclass(frozen=True)
class _CompletionData:
    """A finished execution held back until verification resolves."""

    phone_id: str
    time_ms: float
    local_execution_ms: float
    rescheduled: bool
    payload: object


@dataclass
class _Operation:
    item: _WorkItem
    kind: SpanKind
    start_ms: float
    duration_ms: float
    token: EventToken
    includes_executable: bool
    timeout_token: EventToken | None = None
    watchdog_token: EventToken | None = None
    #: The tracer handle of the scheduling round this op was dispatched
    #: under (None when tracing is disarmed).  Kept on the op so spans
    #: recorded after the round drained still parent on *their* round.
    trace_round: object | None = None

    @property
    def assignment(self) -> Assignment:
        return self.item.instance.assignment


@dataclass
class _Pipeline:
    runtime: PhoneRuntime
    queue: deque[_WorkItem] = field(default_factory=deque)
    shipped_jobs: set[str] = field(default_factory=set)
    current: _Operation | None = None
    rescheduled: bool = False
    #: True failure instant for silent failures (the server learns of the
    #: failure only at keep-alive detection time, but the trace records
    #: the actual moment work stopped).
    failed_at_ms: float | None = None
    #: Number of injected result corruptions not yet consumed.
    corrupt_pending: int = 0

    @property
    def phone_id(self) -> str:
        return self.runtime.phone_id


def _true_payload(assignment: Assignment) -> tuple:
    """The (deterministic) correct result token for a partition."""
    return ("ok", assignment.job_id, assignment.task, round(assignment.input_kb, 9))


class CentralServer:
    """Event-driven simulation of the CWC central server.

    Parameters
    ----------
    phones:
        The fleet.
    truth:
        Ground-truth execution rates (what actually happens).
    predictor:
        The scheduler's runtime predictor (what the server believes);
        it is updated in place as completions report measured times.
    scheduler:
        Any :class:`~repro.core.greedy.Scheduler`.
    measured_b_ms_per_kb:
        Per-phone ``b_i`` as measured by the bandwidth test — the values
        the scheduler uses.
    true_b_ms_per_kb:
        Actual transfer rates; defaults to the measured values.
    failure_plan:
        Unplug failures to inject (default: none).
    chaos:
        A :class:`~repro.sim.chaos.ChaosPlan` of timed faults; its
        unplug stream is merged with ``failure_plan``.
    resilience:
        A :class:`~repro.sim.chaos.ResiliencePolicy`; the default
        disables every defence (paper-faithful behaviour).
    compute_slowdown:
        Per-phone execution-time multiplier (MIMD throttling penalty).
    on_result:
        Optional callback ``(job_id, task, phone_id, input_kb, payload)``
        invoked for every credited partition — the aggregation hook.
    on_round:
        Optional callback ``(server, round_index)`` invoked at every
        scheduling instant, *before* the round's schedule is computed.
        Round boundaries are the consistent snapshot points (no
        partition is in flight), so this is where the durability layer
        saves checkpoints — and, in crash drills, where it raises to
        kill the run mid-flight.  Exceptions propagate out of
        :meth:`run`.
    telemetry:
        An optional :class:`~repro.obs.telemetry.Telemetry` facade.  When
        armed, every dispatch/completion/failure/chaos/resilience action
        is mirrored onto the unified event bus, round latencies feed the
        ``round_latency_ms`` histogram, and fleet-level samplers (phone
        utilisation, queue depth, outstanding dispatches, capacity probe
        counts) are driven from the server's event hooks.  One facade
        instruments exactly one run.  Defaults to the zero-overhead
        disabled facade.
    """

    def __init__(
        self,
        phones: Iterable[PhoneSpec],
        truth: FleetGroundTruth,
        predictor: RuntimePredictor,
        scheduler,
        measured_b_ms_per_kb: Mapping[str, float],
        *,
        true_b_ms_per_kb: Mapping[str, float] | None = None,
        failure_plan: FailurePlan | None = None,
        chaos: ChaosPlan | None = None,
        resilience: ResiliencePolicy | None = None,
        compute_slowdown: Mapping[str, float] | None = None,
        keepalive_period_ms: float = DEFAULT_PERIOD_MS,
        keepalive_tolerated_misses: int = DEFAULT_TOLERATED_MISSES,
        max_rounds: int = 20,
        on_result: Callable[[str, str, str, float, object], None] | None = None,
        on_round: Callable[["CentralServer", int], None] | None = None,
        telemetry: Telemetry | None = None,
        record_instances: bool = False,
    ) -> None:
        self._phones = tuple(phones)
        if not self._phones:
            raise ValueError("need at least one phone")
        self._truth = truth
        self._predictor = predictor
        self._scheduler = scheduler
        self._measured_b = dict(measured_b_ms_per_kb)
        self._true_b = dict(true_b_ms_per_kb or self._measured_b)
        for phone in self._phones:
            if phone.phone_id not in self._measured_b:
                raise ValueError(f"missing measured b_i for {phone.phone_id!r}")
            self._true_b.setdefault(
                phone.phone_id, self._measured_b[phone.phone_id]
            )
        self._chaos = chaos or ChaosPlan.none()
        merged = self._chaos.failures
        if failure_plan is not None:
            merged = merged.merged(failure_plan)
        self._failure_plan = merged
        self._policy = resilience or ResiliencePolicy()
        self._slowdown = dict(compute_slowdown or {})
        self._keepalive_period_ms = keepalive_period_ms
        self._keepalive_misses = keepalive_tolerated_misses
        self._max_rounds = max_rounds
        self._on_result = on_result
        self._on_round = on_round
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._record_instances = record_instances

        # Per-run state, initialised in run().
        self._loop: EventLoop | None = None
        self._trace: TimelineTrace | None = None
        self._pipelines: dict[str, _Pipeline] = {}
        self._monitors: dict[str, KeepAliveMonitor] = {}
        self._failed = FailedTaskList()
        self._jobs_by_id: dict[str, Job] = {}
        self._outstanding = 0
        self._rounds: list[RoundRecord] = []
        self._waiting_jobs: list[Job] = []
        self._round_active = False
        self._round_index = 0
        self._corruption_seq = 0
        self._round_started_ms = 0.0
        self._samplers_installed = False
        self._probes_parked = False
        # Flight-recorder state (None whenever tracing is disarmed).
        self._tracer = None
        self._run_span = None
        self._round_span = None

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(
        self,
        jobs: Iterable[Job],
        *,
        arrivals: Iterable[tuple[float, Job]] = (),
    ) -> RunResult:
        """Simulate a complete run of ``jobs`` (plus later arrivals)."""
        jobs = tuple(jobs)
        if not jobs:
            raise ValueError("need at least one job")

        loop = EventLoop(telemetry=self._tel)
        self._loop = loop
        self._trace = TimelineTrace()
        self._failed = FailedTaskList()
        self._rounds = []
        self._waiting_jobs = []
        self._outstanding = 0
        self._round_active = False
        self._round_index = 0
        self._jobs_by_id = {}
        self._corruption_seq = 0
        self._probes_parked = False

        self._pipelines = {
            phone.phone_id: _Pipeline(
                runtime=PhoneRuntime(
                    spec=phone,
                    true_b_ms_per_kb=self._true_b[phone.phone_id],
                    compute_slowdown=self._slowdown.get(phone.phone_id, 1.0),
                    compute_schedule=self._chaos.compute_schedule(
                        phone.phone_id
                    ),
                    bandwidth_schedule=self._chaos.bandwidth_schedule(
                        phone.phone_id
                    ),
                )
            )
            for phone in self._phones
        }
        self._monitors = {}
        for phone in self._phones:
            self._start_monitor(phone.phone_id)

        tel = self._tel
        tracer = tel.tracer if tel.enabled else None
        self._tracer = tracer
        self._run_span = None
        self._round_span = None
        if tel.enabled:
            self._install_samplers()
            tel.event(
                "run",
                "run_start",
                sim_time_ms=loop.now_ms,
                phones=len(self._phones),
                jobs=len(jobs),
            )
        if tracer is not None:
            self._run_span = tracer.start(
                "run",
                category="sim",
                sim_time_ms=loop.now_ms,
                phones=len(self._phones),
                jobs=len(jobs),
            )

        try:
            self._inject_chaos(loop)

            for time_ms, job in arrivals:
                loop.schedule_at(time_ms, self._make_arrival_action(job))

            self._begin_round(tuple(jobs), rescheduled=False)
            loop.run()
        except BaseException:
            # A crash hook (durability drill) or a sim bug killed the
            # run mid-flight: close every in-flight span so the store
            # holds only finished, checkpointable segments.
            if tracer is not None:
                tracer.abort_open(
                    status="interrupted", sim_time_ms=loop.now_ms
                )
                self._run_span = None
                self._round_span = None
            raise

        for monitor in self._monitors.values():
            monitor.stop()

        unfinished = self._failed.drain()
        if tracer is not None:
            # Undetected offline phones can hold an op forever (their
            # monitor was parked when the run drained); flush those as
            # interrupted so every dispatch owns exactly one span.
            for pipeline in self._pipelines.values():
                if pipeline.current is not None:
                    failed_at = pipeline.failed_at_ms
                    self._trace_op(
                        pipeline,
                        pipeline.current,
                        end_sim_ms=(
                            failed_at if failed_at is not None else loop.now_ms
                        ),
                        status="interrupted",
                    )
            if self._round_span is not None:
                tracer.end(
                    self._round_span,
                    sim_time_ms=loop.now_ms,
                    status="interrupted",
                )
                self._round_span = None
            tracer.end(
                self._run_span,
                sim_time_ms=loop.now_ms,
                makespan_ms=self._trace.makespan_ms(),
                rounds=self._round_index,
                unfinished_jobs=len(unfinished),
            )
            self._run_span = None
        if tel.enabled:
            tel.sample_now(loop.now_ms)
            tel.event(
                "run",
                "run_end",
                sim_time_ms=loop.now_ms,
                makespan_ms=self._trace.makespan_ms(),
                rounds=self._round_index,
                unfinished_jobs=len(unfinished),
            )
        return RunResult(
            trace=self._trace,
            rounds=self._rounds,
            unfinished_jobs=unfinished,
        )

    # ------------------------------------------------------------------
    # durable state capture
    # ------------------------------------------------------------------

    def capture_state(self) -> dict:
        """JSON-safe snapshot of the server's full dynamic state.

        Intended at round boundaries (the ``on_round`` hook), where no
        partition is in flight and the state is consistent: queues and
        ``F_A``, the predictor's learned estimates, the scheduler's
        warm-start cache, per-pipeline runtime state, keep-alive monitor
        state (including parked probes), the engine clock plus the
        timing skeleton of its pending events, and a digest of the trace
        so far.  Two deterministic replays of the same inputs capture
        byte-identical state at the same round — the property the
        durability layer's restore verification rests on.
        """
        assert self._loop is not None and self._trace is not None
        from ..core.serialize import job_to_dict

        scheduler_state = None
        warm = getattr(self._scheduler, "warm_state", None)
        if callable(warm):
            scheduler_state = warm()
        trace_json = json.dumps(
            self._trace.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return {
            "now_ms": self._loop.now_ms,
            "round_index": self._round_index,
            "outstanding": self._outstanding,
            "round_active": self._round_active,
            "probes_parked": self._probes_parked,
            "corruption_seq": self._corruption_seq,
            "waiting_jobs": [job_to_dict(job) for job in self._waiting_jobs],
            "jobs_seen": sorted(self._jobs_by_id),
            "failed": self._failed.state(),
            "predictor_learned": {
                f"{phone_id}␟{task}": value
                for (phone_id, task), value in sorted(
                    self._predictor.learned_pairs().items()
                )
            },
            "scheduler": scheduler_state,
            "pipelines": {
                phone_id: {
                    "state": pipeline.runtime.state.value,
                    "shipped_jobs": sorted(pipeline.shipped_jobs),
                    "queue_len": len(pipeline.queue),
                    "busy": pipeline.current is not None,
                    "rescheduled": pipeline.rescheduled,
                    "failed_at_ms": pipeline.failed_at_ms,
                    "corrupt_pending": pipeline.corrupt_pending,
                }
                for phone_id, pipeline in sorted(self._pipelines.items())
            },
            "monitors": {
                phone_id: monitor.state()
                for phone_id, monitor in sorted(self._monitors.items())
            },
            "pending_events": [
                [time_ms, seq]
                for time_ms, seq in self._loop.pending_signature()
            ],
            "trace_counts": {
                "spans": len(self._trace.spans),
                "failures": len(self._trace.failures),
                "completions": len(self._trace.completions),
                "chaos": len(self._trace.chaos),
                "resilience_events": len(self._trace.resilience_events),
            },
            "trace_sha256": hashlib.sha256(
                trace_json.encode("utf-8")
            ).hexdigest(),
        }

    def state_digest(self) -> str:
        """sha256 over the canonical JSON of :meth:`capture_state`."""
        payload = json.dumps(
            self.capture_state(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return hashlib.sha256(payload).hexdigest()

    # ------------------------------------------------------------------
    # telemetry plumbing
    # ------------------------------------------------------------------

    def _install_samplers(self) -> None:
        """Register the fleet-level probes on the telemetry sampler set.

        Probes read live server state through ``self``, so they always
        see the current run; a facade is expected to instrument exactly
        one run (the sim clock restarting at zero would otherwise move
        the series backwards).
        """
        if self._samplers_installed:
            return
        self._samplers_installed = True
        samplers = self._tel.samplers
        assert samplers is not None

        def fleet_utilisation() -> float:
            pipelines = self._pipelines
            busy = sum(1 for p in pipelines.values() if p.current is not None)
            return busy / len(pipelines) if pipelines else 0.0

        samplers.add_probe("fleet_utilisation", fleet_utilisation)
        samplers.add_probe(
            "fleet_available_phones",
            lambda: float(
                sum(
                    1
                    for p in self._pipelines.values()
                    if p.runtime.available
                )
            ),
        )
        samplers.add_probe(
            "server_queue_depth",
            lambda: float(sum(len(p.queue) for p in self._pipelines.values())),
        )
        samplers.add_probe(
            "outstanding_dispatches", lambda: float(self._outstanding)
        )
        stats = getattr(self._scheduler, "stats", None)
        if stats is not None:
            samplers.add_probe(
                "capacity_probe_packs",
                lambda: float(getattr(stats, "packer_passes", 0)),
            )
        samplers.add_multi_probe(
            "phone_busy",
            lambda: {
                phone_id: (1.0 if pipe.current is not None else 0.0)
                for phone_id, pipe in self._pipelines.items()
            },
        )

    def _record_span(self, span: Span) -> None:
        """Append a span to the trace and mirror it onto the event bus."""
        assert self._loop is not None and self._trace is not None
        now = self._loop.now_ms
        self._trace.add_span(span, at_ms=now)
        tel = self._tel
        if tel.enabled:
            tel.event(
                "server",
                "span",
                sim_time_ms=now,
                phone_id=span.phone_id,
                job_id=span.job_id,
                span=span.kind.value,
                start_ms=span.start_ms,
                end_ms=span.end_ms,
                input_kb=span.input_kb,
                rescheduled=span.rescheduled,
                interrupted=span.interrupted,
                speculative=span.speculative,
            )
            tel.observe(
                "span_duration_ms", span.duration_ms, kind=span.kind.value
            )
            tel.maybe_sample(now)

    def _trace_op(
        self,
        pipeline: _Pipeline,
        op: _Operation,
        *,
        end_sim_ms: float,
        status: str = "ok",
    ) -> None:
        """Record one finished pipeline op as a closed tracer span.

        Ops are recorded retroactively at their resolution instant (the
        sim interval is exact; the wall interval is the recording
        moment, which is what keeps the tracer entirely off the sim's
        critical path).  The span parents on the round the op was
        dispatched under while that round is still open, else on the
        run root — an op on a silently failed phone can outlive its
        round by an arbitrary number of scheduling instants.
        """
        tracer = self._tracer
        if tracer is None:
            return
        parent = op.trace_round
        if parent is None or parent.closed:
            parent = self._run_span
        assignment = op.assignment
        handle = tracer.start(
            op.kind.value,
            category="fleet",
            process=f"fleet/{pipeline.phone_id}",
            parent=parent,
            sim_time_ms=op.start_ms,
            job_id=assignment.job_id,
            task=assignment.task,
            role=op.item.role.value,
            attempt=op.item.instance.attempt,
            input_kb=assignment.input_kb,
        )
        tracer.end(
            handle, sim_time_ms=max(op.start_ms, end_sim_ms), status=status
        )

    def _record_chaos(self, record: ChaosRecord) -> None:
        """Append a chaos ground-truth record; mirror it as a chaos event."""
        assert self._loop is not None and self._trace is not None
        now = self._loop.now_ms
        self._trace.add_chaos(record, at_ms=now)
        tel = self._tel
        if tel.enabled:
            tel.inc("chaos_faults_total", kind=record.kind)
            tel.event(
                "chaos",
                record.kind,
                sim_time_ms=now,
                severity="warning",
                phone_id=record.phone_id,
                fires_at_ms=record.time_ms,
                detail=record.detail,
            )

    def _record_failure_event(
        self,
        phone_id: str,
        *,
        online: bool,
        failed_at_ms: float,
        detected_at_ms: float,
        job_id: str | None,
    ) -> None:
        tel = self._tel
        if not tel.enabled:
            return
        tel.inc("failures_total", online="true" if online else "false")
        tel.event(
            "server",
            "failure",
            sim_time_ms=detected_at_ms,
            severity="warning",
            phone_id=phone_id,
            online=online,
            failed_at_ms=failed_at_ms,
            detected_at_ms=detected_at_ms,
            job_id=job_id or "",
        )
        tel.maybe_sample(detected_at_ms)

    def _end_round_telemetry(self) -> None:
        """Observe the latency of the round that just drained."""
        if self._tracer is not None and self._round_span is not None:
            self._tracer.end(
                self._round_span, sim_time_ms=self._loop.now_ms
            )
            self._round_span = None
        tel = self._tel
        if not tel.enabled:
            return
        assert self._loop is not None
        now = self._loop.now_ms
        latency = now - self._round_started_ms
        tel.observe("round_latency_ms", latency)
        tel.event(
            "server",
            "round_end",
            sim_time_ms=now,
            round_index=self._round_index - 1,
            latency_ms=latency,
        )
        tel.maybe_sample(now)

    # ------------------------------------------------------------------
    # chaos wiring
    # ------------------------------------------------------------------

    def _inject_chaos(self, loop: EventLoop) -> None:
        """Schedule every planned fault and record the ground truth."""
        assert self._trace is not None
        for failure in self._failure_plan:
            if failure.phone_id not in self._pipelines:
                raise ValueError(
                    f"failure plan names unknown phone {failure.phone_id!r}"
                )
            self._record_chaos(
                ChaosRecord(
                    kind="unplug",
                    phone_id=failure.phone_id,
                    time_ms=failure.time_ms,
                    detail=(
                        ("online" if failure.online else "offline")
                        + (
                            f", rejoin after {failure.rejoin_after_ms:.0f} ms"
                            if failure.rejoin_after_ms is not None
                            else ", terminal"
                        )
                    ),
                )
            )
            loop.schedule_at(
                failure.time_ms, self._make_failure_action(failure)
            )
        for slow in self._chaos.slowdowns:
            self._require_phone(slow.phone_id)
            self._record_chaos(
                ChaosRecord(
                    kind="cpu_slowdown",
                    phone_id=slow.phone_id,
                    time_ms=slow.start_ms,
                    detail=f"x{slow.factor:g} until "
                    + ("end" if slow.end_ms is None else f"{slow.end_ms:.0f} ms"),
                )
            )
        for degradation in self._chaos.bandwidth:
            self._require_phone(degradation.phone_id)
            self._record_chaos(
                ChaosRecord(
                    kind="bandwidth_degraded",
                    phone_id=degradation.phone_id,
                    time_ms=degradation.start_ms,
                    detail=f"x{degradation.factor:g} until "
                    + (
                        "end"
                        if degradation.end_ms is None
                        else f"{degradation.end_ms:.0f} ms"
                    ),
                )
            )
        for crash in self._chaos.crashes:
            self._require_phone(crash.phone_id)
            loop.schedule_at(crash.time_ms, self._make_crash_action(crash))
        for corruption in self._chaos.corruptions:
            self._require_phone(corruption.phone_id)
            loop.schedule_at(
                corruption.time_ms, self._make_corruption_action(corruption)
            )

    def _require_phone(self, phone_id: str) -> None:
        if phone_id not in self._pipelines:
            raise ValueError(f"chaos plan names unknown phone {phone_id!r}")

    def _make_crash_action(self, crash):
        def action() -> None:
            assert self._trace is not None
            pipeline = self._pipelines[crash.phone_id]
            hit = (
                pipeline.runtime.available and pipeline.current is not None
            )
            self._record_chaos(
                ChaosRecord(
                    kind="task_crash",
                    phone_id=crash.phone_id,
                    time_ms=crash.time_ms,
                    detail="hit" if hit else "no-op",
                )
            )
            if hit:
                self._abort_current(pipeline, cause="crash")

        return action

    def _make_corruption_action(self, corruption):
        def action() -> None:
            assert self._trace is not None
            pipeline = self._pipelines[corruption.phone_id]
            pipeline.corrupt_pending += 1
            self._record_chaos(
                ChaosRecord(
                    kind="corrupt_result",
                    phone_id=corruption.phone_id,
                    time_ms=corruption.time_ms,
                    detail="next completed execution lies",
                )
            )

        return action

    # ------------------------------------------------------------------
    # scheduling rounds
    # ------------------------------------------------------------------

    def _available_phones(self) -> tuple[PhoneSpec, ...]:
        return tuple(
            pipe.runtime.spec
            for pipe in self._pipelines.values()
            if pipe.runtime.available
        )

    def _begin_round(self, jobs: tuple[Job, ...], *, rescheduled: bool) -> None:
        assert self._loop is not None and self._trace is not None
        if self._on_round is not None:
            self._on_round(self, self._round_index)
        if self._probes_parked:
            self._resume_parked_probes()
        phones = self._available_phones()
        if not phones:
            # No capacity left; jobs stay failed/unfinished.
            for job in jobs:
                self._failed.record_offline_failure(job, job.input_kb)
            return

        for job in jobs:
            self._jobs_by_id[job.job_id] = job

        instance = SchedulingInstance.build(
            jobs, phones, self._measured_b, self._predictor
        )
        tracer = self._tracer
        if tracer is not None:
            self._round_span = tracer.start(
                "round",
                category="sim",
                parent=self._run_span,
                sim_time_ms=self._loop.now_ms,
                round_index=self._round_index,
                jobs=len(jobs),
                phones=len(phones),
                rescheduled=rescheduled,
            )
        started = time.perf_counter()
        if tracer is not None:
            # Make the round the stack parent so a scheduler sharing
            # this telemetry nests its schedule/capacity spans under it.
            with tracer.as_current(self._round_span):
                schedule = self._scheduler.schedule(instance)
        else:
            schedule = self._scheduler.schedule(instance)
        scheduling_wall_ms = (time.perf_counter() - started) * 1000.0
        schedule.validate(instance)
        search = getattr(self._scheduler, "last_result", None)
        directives = tuple(getattr(self._scheduler, "last_replicas", ()) or ())
        self._rounds.append(
            RoundRecord(
                round_index=self._round_index,
                scheduled_at_ms=self._loop.now_ms,
                schedule=schedule,
                predicted_makespan_ms=schedule.predicted_makespan_ms(instance),
                rescheduled=rescheduled,
                job_ids=tuple(job.job_id for job in jobs),
                scheduling_wall_ms=scheduling_wall_ms,
                packer_passes=getattr(search, "packer_passes", 0),
                bisection_steps=getattr(search, "bisection_steps", 0),
                warm_started=getattr(search, "warm_start_used", False),
                kernel=getattr(search, "kernel", ""),
                batch_width=getattr(search, "batch_width", 1),
                probe_worker_utilisation=getattr(
                    search, "probe_worker_utilisation", 1.0
                ),
                probe_wait_ms=getattr(search, "probe_wait_ms", 0.0),
                probe_exec_ms=getattr(search, "probe_exec_ms", 0.0),
                capacity_ms=getattr(search, "capacity_ms", 0.0),
                pods=getattr(search, "pods", 1),
                pod_assign=getattr(search, "pod_assign", "none"),
                pod_solve_ms_max=getattr(search, "pod_solve_ms_max", 0.0),
                pod_solve_ms_sum=getattr(search, "pod_solve_ms_sum", 0.0),
                shard_bound_ratio=getattr(search, "shard_bound_ratio", 0.0),
                policy=getattr(self._scheduler, "name", ""),
                replicas=len(directives),
                instance=instance if self._record_instances else None,
            )
        )
        self._round_index += 1
        self._round_active = True
        self._round_started_ms = self._loop.now_ms
        tel = self._tel
        if tel.enabled:
            record = self._rounds[-1]
            tel.inc("scheduler_rounds_total")
            tel.inc("scheduler_jobs_total", float(len(jobs)))
            tel.observe("scheduling_wall_ms", scheduling_wall_ms)
            tel.event(
                "server",
                "round_start",
                sim_time_ms=self._loop.now_ms,
                round_index=record.round_index,
                jobs=len(jobs),
                phones=len(phones),
                rescheduled=rescheduled,
                predicted_makespan_ms=record.predicted_makespan_ms,
                scheduling_wall_ms=scheduling_wall_ms,
                packer_passes=record.packer_passes,
                bisection_steps=record.bisection_steps,
                warm_started=record.warm_started,
                kernel=record.kernel,
                batch_width=record.batch_width,
                probe_worker_utilisation=record.probe_worker_utilisation,
                pods=record.pods,
                pod_assign=record.pod_assign,
                policy=record.policy,
                replicas=record.replicas,
            )

        whole_instances: dict[str, _Instance] = {}
        for phone_id, pipeline in self._pipelines.items():
            for assignment in schedule.for_phone(phone_id):
                task_instance = _Instance(assignment=assignment)
                item = _WorkItem(instance=task_instance, role=_Role.PRIMARY)
                task_instance.runners[phone_id] = item
                pipeline.queue.append(item)
                self._outstanding += 1
                if assignment.whole:
                    whole_instances[assignment.job_id] = task_instance
            pipeline.rescheduled = rescheduled

        if directives:
            self._launch_replicas(directives, whole_instances)

        for pipeline in self._pipelines.values():
            if pipeline.current is None and pipeline.queue:
                self._start_next(pipeline)

        if self._outstanding == 0:
            self._round_active = False
            self._end_round_telemetry()

    def _maybe_end_round(self) -> None:
        """Called whenever outstanding work may have hit zero."""
        if self._outstanding > 0 or not self._round_active:
            return
        self._round_active = False
        self._end_round_telemetry()
        assert self._loop is not None
        self._loop.schedule_after(0.0, self._next_scheduling_instant)

    def _next_scheduling_instant(self) -> None:
        if self._round_active:
            return
        retry = self._failed.drain()
        waiting = tuple(self._waiting_jobs)
        self._waiting_jobs = []
        combined = tuple(retry) + waiting
        if not combined:
            # Run complete: stop the keep-alive probes so the event loop
            # can drain (a real server would keep probing; the simulation
            # has nothing left to observe).
            self._stop_all_monitors()
            return
        if self._round_index >= self._max_rounds:
            for job in combined:
                self._failed.record_offline_failure(job, job.input_kb)
            self._stop_all_monitors()
            return
        self._begin_round(combined, rescheduled=True)

    def _stop_all_monitors(self) -> None:
        # Remember that probing was parked: a later arrival restarts
        # scheduling, and work dispatched without keep-alive coverage
        # would make offline failures undetectable (lost input).
        self._probes_parked = True
        for monitor in self._monitors.values():
            monitor.stop()

    def _resume_parked_probes(self) -> None:
        """Restart keep-alive probing for phones the fleet can still use.

        Phones in a handled failure state keep their monitors stopped;
        the rejoin path restarts those itself.
        """
        self._probes_parked = False
        for phone_id, pipeline in self._pipelines.items():
            if not pipeline.runtime.available:
                continue
            monitor = self._monitors.get(phone_id)
            if monitor is not None:
                monitor.reset()
                monitor.start()
            else:
                self._start_monitor(phone_id)

    def _make_arrival_action(self, job: Job):
        def action() -> None:
            self._waiting_jobs.append(job)
            if not self._round_active:
                self._next_scheduling_instant()

        return action

    # ------------------------------------------------------------------
    # dispatch pipeline
    # ------------------------------------------------------------------

    def _start_next(self, pipeline: _Pipeline) -> None:
        assert self._loop is not None
        if not pipeline.runtime.available or pipeline.current is not None:
            return
        # Skip items whose partition was already credited or abandoned
        # while queued (a speculation race resolved, for instance).
        while pipeline.queue and pipeline.queue[0].instance.resolved:
            stale = pipeline.queue.popleft()
            stale.instance.runners.pop(pipeline.phone_id, None)
        if not pipeline.queue:
            pipeline.runtime.state = PhoneState.IDLE
            return
        item = pipeline.queue.popleft()
        assignment = item.instance.assignment
        job = self._jobs_by_id[assignment.job_id]
        includes_exe = assignment.job_id not in pipeline.shipped_jobs
        copy_kb = assignment.input_kb + (job.executable_kb if includes_exe else 0.0)
        now = self._loop.now_ms
        duration = pipeline.runtime.copy_time_ms(copy_kb, at_ms=now)
        pipeline.runtime.state = PhoneState.COPYING
        token = self._loop.schedule_after(
            duration, lambda: self._finish_copy(pipeline)
        )
        op = _Operation(
            item=item,
            kind=SpanKind.COPY,
            start_ms=now,
            duration_ms=duration,
            token=token,
            includes_executable=includes_exe,
            trace_round=self._round_span,
        )
        pipeline.current = op
        tel = self._tel
        if tel.enabled:
            tel.inc("dispatches_total", role=item.role.value)
            tel.event(
                "server",
                "dispatch",
                sim_time_ms=now,
                phone_id=pipeline.phone_id,
                job_id=assignment.job_id,
                task=assignment.task,
                role=item.role.value,
                input_kb=assignment.input_kb,
                copy_kb=copy_kb,
                includes_executable=includes_exe,
                attempt=item.instance.attempt,
            )
            tel.maybe_sample(now)
        expected = copy_kb * self._measured_b[pipeline.phone_id]
        self._arm_timeout(pipeline, op, expected_ms=expected)

    def _finish_copy(self, pipeline: _Pipeline) -> None:
        assert self._loop is not None and self._trace is not None
        op = pipeline.current
        assert op is not None and op.kind is SpanKind.COPY
        item = op.item
        assignment = op.assignment
        now = self._loop.now_ms
        self._cancel_guard_tokens(op)
        self._record_span(
            Span(
                phone_id=pipeline.phone_id,
                job_id=assignment.job_id,
                kind=SpanKind.COPY,
                start_ms=op.start_ms,
                end_ms=now,
                input_kb=assignment.input_kb,
                rescheduled=pipeline.rescheduled,
                speculative=item.redundant,
            )
        )
        self._trace_op(pipeline, op, end_sim_ms=now)
        pipeline.shipped_jobs.add(assignment.job_id)
        duration = pipeline.runtime.execute_time_ms(
            self._truth, assignment.task, assignment.input_kb, at_ms=now
        )
        pipeline.runtime.state = PhoneState.EXECUTING
        token = self._loop.schedule_after(
            duration, lambda: self._finish_execute(pipeline)
        )
        execute_op = _Operation(
            item=item,
            kind=SpanKind.EXECUTE,
            start_ms=now,
            duration_ms=duration,
            token=token,
            includes_executable=False,
            trace_round=op.trace_round,
        )
        pipeline.current = execute_op
        predicted = (
            self._predictor.predict_ms_per_kb(
                pipeline.runtime.spec, assignment.task
            )
            * assignment.input_kb
        )
        self._arm_timeout(pipeline, execute_op, expected_ms=predicted)
        self._arm_straggler_watchdog(pipeline, execute_op, predicted_ms=predicted)

    def _finish_execute(self, pipeline: _Pipeline) -> None:
        assert self._loop is not None and self._trace is not None
        op = pipeline.current
        assert op is not None and op.kind is SpanKind.EXECUTE
        item = op.item
        instance = item.instance
        assignment = op.assignment
        now = self._loop.now_ms
        self._cancel_guard_tokens(op)
        self._record_span(
            Span(
                phone_id=pipeline.phone_id,
                job_id=assignment.job_id,
                kind=SpanKind.EXECUTE,
                start_ms=op.start_ms,
                end_ms=now,
                input_kb=assignment.input_kb,
                rescheduled=pipeline.rescheduled,
                speculative=item.redundant,
            )
        )
        self._trace_op(pipeline, op, end_sim_ms=now)
        # The phone reports the measured local execution time; the server
        # refines its per-KB prediction for this (phone, task) pair.
        if assignment.input_kb > 0 and op.duration_ms > 0:
            self._predictor.observe(
                pipeline.runtime.spec,
                assignment.task,
                op.duration_ms / assignment.input_kb,
            )
        payload = self._make_payload(pipeline, assignment)
        pipeline.current = None

        if item.role is _Role.VERIFY:
            self._finish_verify(pipeline, instance, payload)
        else:
            self._finish_primary_or_backup(pipeline, op, payload)
        self._start_next(pipeline)
        self._maybe_end_round()

    def _finish_primary_or_backup(
        self, pipeline: _Pipeline, op: _Operation, payload: object
    ) -> None:
        assert self._loop is not None
        item = op.item
        instance = item.instance
        now = self._loop.now_ms
        if instance.resolved:
            return
        instance.runners.pop(pipeline.phone_id, None)
        # First result wins: cancel any rival primary/backup copies.
        for rival_phone, rival_item in list(instance.runners.items()):
            self._cancel_runner(rival_phone, rival_item)
        instance.runners.clear()
        if item.role is _Role.BACKUP:
            self._note(
                "replication_won" if item.proactive else "speculation_won",
                pipeline.phone_id,
                instance,
            )
        elif instance.speculated:
            self._note("primary_won", pipeline.phone_id, instance)
        data = _CompletionData(
            phone_id=pipeline.phone_id,
            time_ms=now,
            local_execution_ms=op.duration_ms,
            rescheduled=pipeline.rescheduled,
            payload=payload,
        )
        if self._policy.verify_results:
            verifier = self._pick_dispatch_phone(exclude={pipeline.phone_id})
            if verifier is not None:
                instance.primary_data = data
                instance.pending_verify = True
                verify_item = _WorkItem(instance=instance, role=_Role.VERIFY)
                verifier.queue.append(verify_item)
                self._note("verify_launched", verifier.phone_id, instance)
                if verifier.current is None:
                    self._start_next(verifier)
                return
            self._note("verify_skipped", pipeline.phone_id, instance)
        self._credit(instance, data)

    def _finish_verify(
        self, pipeline: _Pipeline, instance: _Instance, payload: object
    ) -> None:
        assert self._loop is not None
        instance.pending_verify = False
        if instance.resolved:
            return
        primary = instance.primary_data
        assert primary is not None
        if payload == primary.payload:
            self._note("verify_ok", pipeline.phone_id, instance)
            self._credit(instance, primary)
            return
        self._note(
            "verify_mismatch",
            pipeline.phone_id,
            instance,
            detail=f"duplicate on {pipeline.phone_id} disagrees with "
            f"{primary.phone_id}",
        )
        instance.primary_data = None
        instance.attempt += 1
        if instance.attempt > self._policy.max_retries:
            self._quarantine(instance)
            return
        target = self._pick_dispatch_phone()
        if target is None:
            self._quarantine(instance)
            return
        self._note("retry", target.phone_id, instance, detail="after mismatch")
        retry_item = _WorkItem(instance=instance, role=_Role.PRIMARY)
        instance.runners[target.phone_id] = retry_item
        target.queue.append(retry_item)
        if target.current is None:
            self._start_next(target)

    def _quarantine(self, instance: _Instance) -> None:
        assert self._loop is not None
        assignment = instance.assignment
        job = self._jobs_by_id[assignment.job_id]
        self._failed.record_quarantined(job, assignment.input_kb)
        instance.abandoned = True
        self._outstanding -= 1
        self._note("quarantined", "", instance)

    def _credit(self, instance: _Instance, data: _CompletionData) -> None:
        """Credit a partition exactly once and release its slot."""
        assert self._loop is not None and self._trace is not None
        assignment = instance.assignment
        instance.completed = True
        instance.pending_verify = False
        # The credit instant can lag the completion's own time_ms (a
        # verification duplicate holds the primary result back), so the
        # trace order check uses the arrival clock explicitly.
        now = self._loop.now_ms
        self._trace.add_completion(
            CompletionRecord(
                phone_id=data.phone_id,
                job_id=assignment.job_id,
                time_ms=data.time_ms,
                input_kb=assignment.input_kb,
                local_execution_ms=data.local_execution_ms,
                rescheduled=data.rescheduled,
            ),
            at_ms=now,
        )
        tel = self._tel
        if tel.enabled:
            tel.inc("completions_total")
            tel.observe(
                "local_execution_ms",
                data.local_execution_ms,
                kind="execute",
            )
            tel.event(
                "server",
                "complete",
                sim_time_ms=now,
                phone_id=data.phone_id,
                job_id=assignment.job_id,
                task=assignment.task,
                input_kb=assignment.input_kb,
                completed_at_ms=data.time_ms,
                local_execution_ms=data.local_execution_ms,
                rescheduled=data.rescheduled,
            )
            tel.maybe_sample(now)
        if self._on_result is not None:
            self._on_result(
                assignment.job_id,
                assignment.task,
                data.phone_id,
                assignment.input_kb,
                data.payload,
            )
        self._outstanding -= 1

    def _make_payload(
        self, pipeline: _Pipeline, assignment: Assignment
    ) -> tuple:
        if pipeline.corrupt_pending > 0:
            pipeline.corrupt_pending -= 1
            self._corruption_seq += 1
            return (
                "corrupt",
                pipeline.phone_id,
                assignment.job_id,
                self._corruption_seq,
            )
        return _true_payload(assignment)

    # ------------------------------------------------------------------
    # resilience: timeouts, stragglers, speculation
    # ------------------------------------------------------------------

    #: Resilience kinds that signal something went wrong (vs. routine
    #: defensive bookkeeping) — they surface as warning-severity events.
    _WARN_KINDS = frozenset(
        {
            "timeout",
            "straggler_detected",
            "verify_mismatch",
            "quarantined",
            "gave_up",
        }
    )

    def _note(
        self,
        kind: str,
        phone_id: str,
        instance: _Instance | None = None,
        *,
        detail: str = "",
    ) -> None:
        assert self._loop is not None and self._trace is not None
        now = self._loop.now_ms
        job_id = instance.assignment.job_id if instance is not None else None
        self._trace.add_resilience_event(
            ResilienceEvent(
                kind=kind,
                phone_id=phone_id,
                time_ms=now,
                job_id=job_id,
                detail=detail,
            ),
            at_ms=now,
        )
        tel = self._tel
        if tel.enabled:
            tel.inc("resilience_events_total", kind=kind)
            tel.event(
                "server",
                kind,
                sim_time_ms=now,
                severity=(
                    "warning" if kind in self._WARN_KINDS else "info"
                ),
                phone_id=phone_id,
                job_id=job_id or "",
                detail=detail,
            )

    def _cancel_guard_tokens(self, op: _Operation) -> None:
        if op.timeout_token is not None:
            op.timeout_token.cancel()
            op.timeout_token = None
        if op.watchdog_token is not None:
            op.watchdog_token.cancel()
            op.watchdog_token = None

    def _arm_timeout(
        self, pipeline: _Pipeline, op: _Operation, *, expected_ms: float
    ) -> None:
        factor = self._policy.dispatch_timeout_factor
        if factor is None or expected_ms <= 0:
            return
        assert self._loop is not None
        op.timeout_token = self._loop.schedule_after(
            factor * expected_ms, lambda: self._on_timeout(pipeline, op)
        )

    def _arm_straggler_watchdog(
        self, pipeline: _Pipeline, op: _Operation, *, predicted_ms: float
    ) -> None:
        factor = self._policy.straggler_factor
        if factor is None or predicted_ms <= 0:
            return
        if op.item.role is _Role.VERIFY:
            return
        assert self._loop is not None
        op.watchdog_token = self._loop.schedule_after(
            factor * predicted_ms, lambda: self._on_straggler(pipeline, op)
        )

    def _on_timeout(self, pipeline: _Pipeline, op: _Operation) -> None:
        if not pipeline.runtime.available or pipeline.current is not op:
            return
        if op.item.instance.resolved:
            return
        self._note(
            "timeout",
            pipeline.phone_id,
            op.item.instance,
            detail=f"{op.kind.value} exceeded its dispatch timeout",
        )
        self._abort_current(pipeline, cause="timeout")

    def _on_straggler(self, pipeline: _Pipeline, op: _Operation) -> None:
        if not pipeline.runtime.available or pipeline.current is not op:
            return
        instance = op.item.instance
        if instance.resolved:
            return
        self._note(
            "straggler_detected",
            pipeline.phone_id,
            instance,
            detail=f"running > {self._policy.straggler_factor:g}x prediction",
        )
        if not self._policy.speculate or instance.speculated:
            return
        backup = self._pick_idle_phone(exclude=set(instance.runners))
        if backup is None:
            return
        instance.speculated = True
        backup_item = _WorkItem(instance=instance, role=_Role.BACKUP)
        instance.runners[backup.phone_id] = backup_item
        backup.queue.append(backup_item)
        self._note("speculation_launched", backup.phone_id, instance)
        if backup.current is None:
            self._start_next(backup)

    def _launch_replicas(
        self, directives, whole_instances: dict[str, "_Instance"]
    ) -> None:
        """Queue the proactive replicas a policy attached to this round.

        Each directive is honoured only when it still makes sense at
        dispatch time: the job must have been placed whole (split
        partitions can't be duplicated — only whole results are
        first-result-wins racers), the target phone must exist and be
        available, and it must not already hold a copy.  A replica runs
        as a ``_Role.BACKUP`` item, so the existing speculation
        machinery guarantees the partition is credited exactly once and
        the losing copy is cancelled; marking the instance
        ``speculated`` keeps the reactive straggler path from stacking
        a third copy on top.
        """
        for directive in directives:
            instance = whole_instances.get(directive.job_id)
            if instance is None or instance.resolved:
                continue
            pipeline = self._pipelines.get(directive.phone_id)
            if pipeline is None or not pipeline.runtime.available:
                continue
            if directive.phone_id in instance.runners:
                continue
            instance.speculated = True
            item = _WorkItem(
                instance=instance, role=_Role.BACKUP, proactive=True
            )
            instance.runners[directive.phone_id] = item
            pipeline.queue.append(item)
            self._note("replication_launched", directive.phone_id, instance)

    def _abort_current(self, pipeline: _Pipeline, *, cause: str) -> None:
        """Cancel the in-flight op (crash/timeout) and retry or give up."""
        assert self._loop is not None and self._trace is not None
        op = pipeline.current
        if op is None:
            return
        item = op.item
        instance = item.instance
        now = self._loop.now_ms
        op.token.cancel()
        self._cancel_guard_tokens(op)
        self._record_span(
            Span(
                phone_id=pipeline.phone_id,
                job_id=op.assignment.job_id,
                kind=op.kind,
                start_ms=op.start_ms,
                end_ms=now,
                input_kb=op.assignment.input_kb,
                rescheduled=pipeline.rescheduled,
                interrupted=True,
                speculative=item.redundant,
            )
        )
        self._trace_op(pipeline, op, end_sim_ms=now, status="interrupted")
        pipeline.current = None
        if item.role is _Role.VERIFY:
            # Verification lost its duplicate: credit the held-back
            # primary result rather than stall the partition.
            if not instance.resolved and instance.primary_data is not None:
                self._note("verify_abandoned", pipeline.phone_id, instance)
                self._credit(instance, instance.primary_data)
        else:
            instance.runners.pop(pipeline.phone_id, None)
            if instance.resolved or instance.runners:
                pass  # a rival copy is still racing; nothing lost
            else:
                self._retry_or_give_up(instance, cause=cause)
        self._start_next(pipeline)
        self._maybe_end_round()

    def _retry_or_give_up(self, instance: _Instance, *, cause: str) -> None:
        assert self._loop is not None
        instance.attempt += 1
        assignment = instance.assignment
        job = self._jobs_by_id[assignment.job_id]
        if instance.attempt > self._policy.max_retries:
            if cause == "crash":
                self._failed.record_crashed(job, assignment.input_kb)
            else:
                self._failed.record_offline_failure(job, assignment.input_kb)
            instance.abandoned = True
            self._outstanding -= 1
            self._note("gave_up", "", instance, detail=f"after {cause}")
            return
        backoff = self._policy.retry_backoff_ms * (
            self._policy.backoff_multiplier ** (instance.attempt - 1)
        )
        self._note("retry", "", instance, detail=f"{cause}, backoff {backoff:g} ms")
        wait_span = None
        tracer = self._tracer
        if tracer is not None:
            parent = self._round_span
            if parent is None or parent.closed:
                parent = self._run_span
            wait_span = tracer.start(
                "retry_backoff",
                category="fleet",
                parent=parent,
                sim_time_ms=self._loop.now_ms,
                job_id=assignment.job_id,
                task=assignment.task,
                attempt=instance.attempt,
                cause=cause,
                backoff_ms=backoff,
            )
        self._loop.schedule_after(
            backoff, lambda: self._requeue_after_backoff(instance, wait_span)
        )

    def _requeue_after_backoff(
        self, instance: _Instance, wait_span=None
    ) -> None:
        if wait_span is not None and not wait_span.closed:
            self._tracer.end(wait_span, sim_time_ms=self._loop.now_ms)
        if instance.resolved:
            return
        target = self._pick_dispatch_phone()
        if target is None:
            assignment = instance.assignment
            job = self._jobs_by_id[assignment.job_id]
            self._failed.record_offline_failure(job, assignment.input_kb)
            instance.abandoned = True
            self._outstanding -= 1
            self._note("gave_up", "", instance, detail="no phone available")
            self._maybe_end_round()
            return
        retry_item = _WorkItem(instance=instance, role=_Role.PRIMARY)
        instance.runners[target.phone_id] = retry_item
        target.queue.append(retry_item)
        if target.current is None:
            self._start_next(target)

    def _pick_idle_phone(self, *, exclude: set[str]) -> _Pipeline | None:
        """First fully idle phone, in fleet order (deterministic)."""
        for phone in self._phones:
            pipeline = self._pipelines[phone.phone_id]
            if phone.phone_id in exclude:
                continue
            if not pipeline.runtime.available:
                continue
            if pipeline.current is None and not pipeline.queue:
                return pipeline
        return None

    def _pick_dispatch_phone(
        self, *, exclude: set[str] | None = None
    ) -> _Pipeline | None:
        """Least-loaded available phone, ties broken by fleet order."""
        exclude = exclude or set()
        best: _Pipeline | None = None
        best_load = -1
        for phone in self._phones:
            pipeline = self._pipelines[phone.phone_id]
            if phone.phone_id in exclude or not pipeline.runtime.available:
                continue
            load = len(pipeline.queue) + (1 if pipeline.current else 0)
            if best is None or load < best_load:
                best = pipeline
                best_load = load
        return best

    def _cancel_runner(self, phone_id: str, item: _WorkItem) -> None:
        """Withdraw a rival copy (it lost the speculation race)."""
        assert self._loop is not None and self._trace is not None
        pipeline = self._pipelines[phone_id]
        op = pipeline.current
        if op is not None and op.item is item:
            op.token.cancel()
            self._cancel_guard_tokens(op)
            now = self._loop.now_ms
            end = now
            if pipeline.failed_at_ms is not None:
                end = min(end, pipeline.failed_at_ms)
            self._record_span(
                Span(
                    phone_id=phone_id,
                    job_id=op.assignment.job_id,
                    kind=op.kind,
                    start_ms=op.start_ms,
                    end_ms=max(op.start_ms, end),
                    input_kb=op.assignment.input_kb,
                    rescheduled=pipeline.rescheduled,
                    interrupted=True,
                    speculative=item.redundant,
                )
            )
            self._trace_op(
                pipeline,
                op,
                end_sim_ms=max(op.start_ms, end),
                status="interrupted",
            )
            pipeline.current = None
            self._start_next(pipeline)
        else:
            try:
                pipeline.queue.remove(item)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------

    def _make_failure_action(self, failure: PlannedFailure):
        def action() -> None:
            pipeline = self._pipelines[failure.phone_id]
            if not pipeline.runtime.available:
                return  # already failed
            if failure.online:
                self._fail_online(pipeline)
            else:
                self._fail_offline(pipeline)
            if failure.rejoin_after_ms is not None:
                assert self._loop is not None
                self._loop.schedule_after(
                    failure.rejoin_after_ms,
                    lambda: self._rejoin(pipeline),
                )

        return action

    def _rejoin(self, pipeline: _Pipeline) -> None:
        """A failed phone re-enters the fleet (Section 5's re-entry case).

        New work reaches it only at the *next scheduling instant* — in-
        flight rounds are not re-planned — but a silent failure whose
        keep-alive detection had not yet fired resumes its own queue:
        connectivity was restored before the server ever marked the
        phone failed, so the in-flight partition simply restarts.
        """
        assert self._loop is not None and self._trace is not None
        if pipeline.runtime.available:
            return
        interrupted = pipeline.current
        pipeline.current = None
        pipeline.runtime.state = PhoneState.IDLE
        if interrupted is not None:
            # Offline failure, not yet detected: record the lost span
            # and restart the partition from scratch.
            self._cancel_guard_tokens(interrupted)
            failed_at = (
                pipeline.failed_at_ms
                if pipeline.failed_at_ms is not None
                else interrupted.start_ms
            )
            self._record_span(
                Span(
                    phone_id=pipeline.phone_id,
                    job_id=interrupted.assignment.job_id,
                    kind=interrupted.kind,
                    start_ms=interrupted.start_ms,
                    end_ms=max(interrupted.start_ms, failed_at),
                    input_kb=interrupted.assignment.input_kb,
                    rescheduled=pipeline.rescheduled,
                    interrupted=True,
                    speculative=interrupted.item.redundant,
                )
            )
            self._trace_op(
                pipeline,
                interrupted,
                end_sim_ms=max(interrupted.start_ms, failed_at),
                status="interrupted",
            )
            # Restarting means re-copying the input (the phone-side
            # runtime lost its state); the executable is still on disk.
            pipeline.queue.appendleft(interrupted.item)
        pipeline.failed_at_ms = None
        self._note("rejoin", pipeline.phone_id)
        # The monitor is stale (stopped or mid-miss-count): reset it to a
        # clean probe cycle rather than constructing a replacement.
        monitor = self._monitors.get(pipeline.phone_id)
        if monitor is not None:
            monitor.reset()
            monitor.start()
        else:
            self._start_monitor(pipeline.phone_id)
        if pipeline.queue:
            self._start_next(pipeline)
        elif not self._round_active:
            self._next_scheduling_instant()

    def _fail_online(self, pipeline: _Pipeline) -> None:
        """Clean unplug: the phone checkpoints and reports immediately."""
        assert self._loop is not None and self._trace is not None
        now = self._loop.now_ms
        failed_job_id: str | None = None
        processed_kb = 0.0
        op = pipeline.current
        if op is not None:
            item = op.item
            instance = item.instance
            op.token.cancel()
            self._cancel_guard_tokens(op)
            if op.kind is SpanKind.EXECUTE and op.duration_ms > 0:
                fraction = min(1.0, (now - op.start_ms) / op.duration_ms)
                processed_kb = fraction * instance.assignment.input_kb
            self._record_span(
                Span(
                    phone_id=pipeline.phone_id,
                    job_id=op.assignment.job_id,
                    kind=op.kind,
                    start_ms=op.start_ms,
                    end_ms=now,
                    input_kb=op.assignment.input_kb,
                    rescheduled=pipeline.rescheduled,
                    interrupted=True,
                    speculative=item.redundant,
                )
            )
            self._trace_op(pipeline, op, end_sim_ms=now, status="interrupted")
            pipeline.current = None
            failed_job_id = instance.assignment.job_id
            if item.role is _Role.VERIFY:
                self._resolve_verify_loss(pipeline, instance)
                processed_kb = 0.0
            else:
                instance.runners.pop(pipeline.phone_id, None)
                if instance.resolved or instance.runners:
                    # A rival copy survives; nothing is lost, so the
                    # phone has nothing worth checkpointing.
                    processed_kb = 0.0
                else:
                    job = self._jobs_by_id[instance.assignment.job_id]
                    checkpoint = Checkpoint(
                        job_id=instance.assignment.job_id,
                        task=instance.assignment.task,
                        phone_id=pipeline.phone_id,
                        partition_kb=instance.assignment.input_kb,
                        processed_kb=processed_kb,
                        partial_result=None,
                        time_ms=now,
                    )
                    self._failed.record_online_failure(job, checkpoint)
                    instance.abandoned = True
                    self._outstanding -= 1
        self._drain_queue_on_loss(pipeline, online=True)
        pipeline.runtime.state = PhoneState.UNPLUGGED
        self._monitors[pipeline.phone_id].stop()
        self._trace.add_failure(
            FailureRecord(
                phone_id=pipeline.phone_id,
                failed_at_ms=now,
                detected_at_ms=now,
                online=True,
                job_id=failed_job_id,
                processed_kb=processed_kb,
            ),
            at_ms=now,
        )
        self._record_failure_event(
            pipeline.phone_id,
            online=True,
            failed_at_ms=now,
            detected_at_ms=now,
            job_id=failed_job_id,
        )
        self._maybe_end_round()

    def _fail_offline(self, pipeline: _Pipeline) -> None:
        """Silent failure: the phone vanishes; keep-alives will notice."""
        assert self._loop is not None
        op = pipeline.current
        if op is not None:
            # The phone is gone; its in-flight operation never completes.
            op.token.cancel()
            self._cancel_guard_tokens(op)
        pipeline.failed_at_ms = self._loop.now_ms
        pipeline.runtime.state = PhoneState.OFFLINE
        # Detection (and F_A bookkeeping) happens in _on_offline_detected,
        # fired by the keep-alive monitor.

    def _resolve_verify_loss(
        self, pipeline: _Pipeline, instance: _Instance
    ) -> None:
        """A verification duplicate died; credit the held-back result."""
        instance.pending_verify = False
        if not instance.resolved and instance.primary_data is not None:
            self._note("verify_abandoned", pipeline.phone_id, instance)
            self._credit(instance, instance.primary_data)

    def _drain_queue_on_loss(self, pipeline: _Pipeline, *, online: bool) -> None:
        """Re-enqueue everything the failed phone never started."""
        while pipeline.queue:
            item = pipeline.queue.popleft()
            instance = item.instance
            if item.role is _Role.VERIFY:
                self._resolve_verify_loss(pipeline, instance)
                continue
            instance.runners.pop(pipeline.phone_id, None)
            if instance.resolved or instance.runners:
                continue
            job = self._jobs_by_id[instance.assignment.job_id]
            self._failed.record_pending(job, instance.assignment.input_kb)
            instance.abandoned = True
            self._outstanding -= 1

    def _start_monitor(self, phone_id: str) -> None:
        pipeline = self._pipelines[phone_id]

        def is_responsive() -> bool:
            return pipeline.runtime.state is not PhoneState.OFFLINE

        def on_detect(detected_at_ms: float) -> None:
            self._on_offline_detected(pipeline, detected_at_ms)

        assert self._loop is not None
        monitor = KeepAliveMonitor(
            self._loop,
            phone_id,
            is_responsive=is_responsive,
            on_detect=on_detect,
            period_ms=self._keepalive_period_ms,
            tolerated_misses=self._keepalive_misses,
        )
        monitor.start()
        self._monitors[phone_id] = monitor

    def _on_offline_detected(
        self, pipeline: _Pipeline, detected_at_ms: float
    ) -> None:
        assert self._trace is not None
        failed_job_id: str | None = None
        op = pipeline.current
        if op is not None:
            item = op.item
            instance = item.instance
            # Record the truncated span up to the true failure instant
            # (the server only learns of it now); progress is lost.
            failed_at = pipeline.failed_at_ms
            if failed_at is None:
                failed_at = min(detected_at_ms, op.start_ms + op.duration_ms)
            self._record_span(
                Span(
                    phone_id=pipeline.phone_id,
                    job_id=op.assignment.job_id,
                    kind=op.kind,
                    start_ms=op.start_ms,
                    end_ms=failed_at,
                    input_kb=op.assignment.input_kb,
                    rescheduled=pipeline.rescheduled,
                    interrupted=True,
                    speculative=item.redundant,
                )
            )
            self._trace_op(
                pipeline,
                op,
                end_sim_ms=max(op.start_ms, failed_at),
                status="interrupted",
            )
            pipeline.current = None
            failed_job_id = instance.assignment.job_id
            if item.role is _Role.VERIFY:
                self._resolve_verify_loss(pipeline, instance)
            else:
                instance.runners.pop(pipeline.phone_id, None)
                if not (instance.resolved or instance.runners):
                    job = self._jobs_by_id[instance.assignment.job_id]
                    self._failed.record_offline_failure(
                        job, instance.assignment.input_kb
                    )
                    instance.abandoned = True
                    self._outstanding -= 1
        self._drain_queue_on_loss(pipeline, online=False)
        failed_at = (
            pipeline.failed_at_ms
            if pipeline.failed_at_ms is not None
            else detected_at_ms
        )
        self._trace.add_failure(
            FailureRecord(
                phone_id=pipeline.phone_id,
                failed_at_ms=failed_at,
                detected_at_ms=detected_at_ms,
                online=False,
                job_id=failed_job_id,
                processed_kb=0.0,
            ),
            at_ms=detected_at_ms,
        )
        self._record_failure_event(
            pipeline.phone_id,
            online=False,
            failed_at_ms=failed_at,
            detected_at_ms=detected_at_ms,
            job_id=failed_job_id,
        )
        self._maybe_end_round()
