"""Simulated CWC central server (Sections 5 and 6).

:class:`CentralServer` drives a complete CWC run on the event loop:

1. at a scheduling instant it builds a
   :class:`~repro.core.instance.SchedulingInstance` from the currently
   plugged-in phones and the jobs awaiting scheduling, and asks its
   scheduler for a :class:`~repro.core.schedule.Schedule`;
2. per phone it runs the dispatch pipeline — *the next assigned task is
   copied only after the phone completes executing its last assigned
   task* — paying the executable-shipping cost once per (phone, job);
3. completions carry the measured local execution time, which is folded
   into the runtime predictor (Section 4.1's online refinement);
4. failures follow Section 5: online failures checkpoint the partially
   processed partition immediately; offline failures are detected by
   the keep-alive monitor and lose the in-flight partition's progress.
   Failed work accumulates in the failed-task list ``F_A`` and is
   rescheduled together with any newly arrived jobs at the *next*
   scheduling instant — which in this simulation is when every
   surviving phone has drained its queue.

The simulation is exact in the cost model's terms: copies take
``kb × b_i`` (true ``b_i``), executions take ``kb × c_ij`` (true
``c_ij`` from :class:`~repro.sim.entities.FleetGroundTruth`, times the
phone's throttling slowdown).  The *scheduler* sees only measured
``b_i`` and predicted ``c_ij``, so prediction error, learning, and
load imbalance all play out exactly as on the paper's testbed.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass, field

from ..core.instance import SchedulingInstance
from ..core.migration import Checkpoint, FailedTaskList
from ..core.model import Job, PhoneSpec
from ..core.prediction import RuntimePredictor
from ..core.schedule import Assignment, Schedule
from .engine import EventLoop, EventToken
from .entities import FleetGroundTruth, PhoneRuntime, PhoneState
from .failures import FailurePlan, PlannedFailure
from .keepalive import DEFAULT_PERIOD_MS, DEFAULT_TOLERATED_MISSES, KeepAliveMonitor
from .trace import CompletionRecord, FailureRecord, Span, SpanKind, TimelineTrace

__all__ = ["CentralServer", "RunResult", "RoundRecord"]


@dataclass(frozen=True)
class RoundRecord:
    """One scheduling round: the instant, the schedule, its prediction."""

    round_index: int
    scheduled_at_ms: float
    schedule: Schedule
    predicted_makespan_ms: float
    rescheduled: bool
    job_ids: tuple[str, ...]


@dataclass
class RunResult:
    """Everything a simulated run produced."""

    trace: TimelineTrace
    rounds: list[RoundRecord]
    unfinished_jobs: tuple[Job, ...] = ()

    @property
    def measured_makespan_ms(self) -> float:
        return self.trace.makespan_ms()

    @property
    def predicted_makespan_ms(self) -> float:
        """Prediction for the first round (what Fig. 12a compares)."""
        return self.rounds[0].predicted_makespan_ms if self.rounds else 0.0

    @property
    def reschedule_overhead_ms(self) -> float:
        return self.trace.reschedule_overhead_ms()


@dataclass
class _Operation:
    assignment: Assignment
    kind: SpanKind
    start_ms: float
    duration_ms: float
    token: EventToken
    includes_executable: bool


@dataclass
class _Pipeline:
    runtime: PhoneRuntime
    queue: deque[Assignment] = field(default_factory=deque)
    shipped_jobs: set[str] = field(default_factory=set)
    current: _Operation | None = None
    rescheduled: bool = False
    #: True failure instant for silent failures (the server learns of the
    #: failure only at keep-alive detection time, but the trace records
    #: the actual moment work stopped).
    failed_at_ms: float | None = None


class CentralServer:
    """Event-driven simulation of the CWC central server.

    Parameters
    ----------
    phones:
        The fleet.
    truth:
        Ground-truth execution rates (what actually happens).
    predictor:
        The scheduler's runtime predictor (what the server believes);
        it is updated in place as completions report measured times.
    scheduler:
        Any :class:`~repro.core.greedy.Scheduler`.
    measured_b_ms_per_kb:
        Per-phone ``b_i`` as measured by the bandwidth test — the values
        the scheduler uses.
    true_b_ms_per_kb:
        Actual transfer rates; defaults to the measured values.
    failure_plan:
        Failures to inject (default: none).
    compute_slowdown:
        Per-phone execution-time multiplier (MIMD throttling penalty).
    on_result:
        Optional callback ``(job_id, task, phone_id, input_kb, payload)``
        invoked for every completed partition — the aggregation hook.
    """

    def __init__(
        self,
        phones: Iterable[PhoneSpec],
        truth: FleetGroundTruth,
        predictor: RuntimePredictor,
        scheduler,
        measured_b_ms_per_kb: Mapping[str, float],
        *,
        true_b_ms_per_kb: Mapping[str, float] | None = None,
        failure_plan: FailurePlan | None = None,
        compute_slowdown: Mapping[str, float] | None = None,
        keepalive_period_ms: float = DEFAULT_PERIOD_MS,
        keepalive_tolerated_misses: int = DEFAULT_TOLERATED_MISSES,
        max_rounds: int = 20,
        on_result: Callable[[str, str, str, float, object], None] | None = None,
    ) -> None:
        self._phones = tuple(phones)
        if not self._phones:
            raise ValueError("need at least one phone")
        self._truth = truth
        self._predictor = predictor
        self._scheduler = scheduler
        self._measured_b = dict(measured_b_ms_per_kb)
        self._true_b = dict(true_b_ms_per_kb or self._measured_b)
        for phone in self._phones:
            if phone.phone_id not in self._measured_b:
                raise ValueError(f"missing measured b_i for {phone.phone_id!r}")
            self._true_b.setdefault(
                phone.phone_id, self._measured_b[phone.phone_id]
            )
        self._failure_plan = failure_plan or FailurePlan.none()
        self._slowdown = dict(compute_slowdown or {})
        self._keepalive_period_ms = keepalive_period_ms
        self._keepalive_misses = keepalive_tolerated_misses
        self._max_rounds = max_rounds
        self._on_result = on_result

        # Per-run state, initialised in run().
        self._loop: EventLoop | None = None
        self._trace: TimelineTrace | None = None
        self._pipelines: dict[str, _Pipeline] = {}
        self._monitors: dict[str, KeepAliveMonitor] = {}
        self._failed = FailedTaskList()
        self._jobs_by_id: dict[str, Job] = {}
        self._outstanding = 0
        self._rounds: list[RoundRecord] = []
        self._waiting_jobs: list[Job] = []
        self._round_active = False
        self._round_index = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def run(
        self,
        jobs: Iterable[Job],
        *,
        arrivals: Iterable[tuple[float, Job]] = (),
    ) -> RunResult:
        """Simulate a complete run of ``jobs`` (plus later arrivals)."""
        jobs = tuple(jobs)
        if not jobs:
            raise ValueError("need at least one job")

        loop = EventLoop()
        self._loop = loop
        self._trace = TimelineTrace()
        self._failed = FailedTaskList()
        self._rounds = []
        self._waiting_jobs = []
        self._outstanding = 0
        self._round_active = False
        self._round_index = 0
        self._jobs_by_id = {}

        self._pipelines = {
            phone.phone_id: _Pipeline(
                runtime=PhoneRuntime(
                    spec=phone,
                    true_b_ms_per_kb=self._true_b[phone.phone_id],
                    compute_slowdown=self._slowdown.get(phone.phone_id, 1.0),
                )
            )
            for phone in self._phones
        }
        self._monitors = {}
        for phone in self._phones:
            self._start_monitor(phone.phone_id)

        for failure in self._failure_plan:
            if failure.phone_id not in self._pipelines:
                raise ValueError(
                    f"failure plan names unknown phone {failure.phone_id!r}"
                )
            loop.schedule_at(
                failure.time_ms, self._make_failure_action(failure)
            )

        for time_ms, job in arrivals:
            loop.schedule_at(time_ms, self._make_arrival_action(job))

        self._begin_round(tuple(jobs), rescheduled=False)
        loop.run()

        for monitor in self._monitors.values():
            monitor.stop()

        unfinished = self._failed.drain()
        return RunResult(
            trace=self._trace,
            rounds=self._rounds,
            unfinished_jobs=unfinished,
        )

    # ------------------------------------------------------------------
    # scheduling rounds
    # ------------------------------------------------------------------

    def _available_phones(self) -> tuple[PhoneSpec, ...]:
        return tuple(
            pipe.runtime.spec
            for pipe in self._pipelines.values()
            if pipe.runtime.available
        )

    def _begin_round(self, jobs: tuple[Job, ...], *, rescheduled: bool) -> None:
        assert self._loop is not None and self._trace is not None
        phones = self._available_phones()
        if not phones:
            # No capacity left; jobs stay failed/unfinished.
            for job in jobs:
                self._failed.record_offline_failure(job, job.input_kb)
            return

        for job in jobs:
            self._jobs_by_id[job.job_id] = job

        instance = SchedulingInstance.build(
            jobs, phones, self._measured_b, self._predictor
        )
        schedule = self._scheduler.schedule(instance)
        schedule.validate(instance)
        self._rounds.append(
            RoundRecord(
                round_index=self._round_index,
                scheduled_at_ms=self._loop.now_ms,
                schedule=schedule,
                predicted_makespan_ms=schedule.predicted_makespan_ms(instance),
                rescheduled=rescheduled,
                job_ids=tuple(job.job_id for job in jobs),
            )
        )
        self._round_index += 1
        self._round_active = True

        for phone_id, pipeline in self._pipelines.items():
            for assignment in schedule.for_phone(phone_id):
                pipeline.queue.append(assignment)
                self._outstanding += 1
            pipeline.rescheduled = rescheduled

        for pipeline in self._pipelines.values():
            if pipeline.current is None and pipeline.queue:
                self._start_next(pipeline)

        if self._outstanding == 0:
            self._round_active = False

    def _maybe_end_round(self) -> None:
        """Called whenever outstanding work may have hit zero."""
        if self._outstanding > 0 or not self._round_active:
            return
        self._round_active = False
        assert self._loop is not None
        self._loop.schedule_after(0.0, self._next_scheduling_instant)

    def _next_scheduling_instant(self) -> None:
        if self._round_active:
            return
        retry = self._failed.drain()
        waiting = tuple(self._waiting_jobs)
        self._waiting_jobs = []
        combined = tuple(retry) + waiting
        if not combined:
            # Run complete: stop the keep-alive probes so the event loop
            # can drain (a real server would keep probing; the simulation
            # has nothing left to observe).
            self._stop_all_monitors()
            return
        if self._round_index >= self._max_rounds:
            for job in combined:
                self._failed.record_offline_failure(job, job.input_kb)
            self._stop_all_monitors()
            return
        self._begin_round(combined, rescheduled=True)

    def _stop_all_monitors(self) -> None:
        for monitor in self._monitors.values():
            monitor.stop()

    def _make_arrival_action(self, job: Job):
        def action() -> None:
            self._waiting_jobs.append(job)
            if not self._round_active:
                self._next_scheduling_instant()

        return action

    # ------------------------------------------------------------------
    # dispatch pipeline
    # ------------------------------------------------------------------

    def _start_next(self, pipeline: _Pipeline) -> None:
        assert self._loop is not None
        if not pipeline.runtime.available:
            return
        if not pipeline.queue:
            pipeline.runtime.state = PhoneState.IDLE
            return
        assignment = pipeline.queue.popleft()
        job = self._jobs_by_id[assignment.job_id]
        includes_exe = assignment.job_id not in pipeline.shipped_jobs
        copy_kb = assignment.input_kb + (job.executable_kb if includes_exe else 0.0)
        duration = pipeline.runtime.copy_time_ms(copy_kb)
        pipeline.runtime.state = PhoneState.COPYING
        token = self._loop.schedule_after(
            duration, lambda: self._finish_copy(pipeline)
        )
        pipeline.current = _Operation(
            assignment=assignment,
            kind=SpanKind.COPY,
            start_ms=self._loop.now_ms,
            duration_ms=duration,
            token=token,
            includes_executable=includes_exe,
        )

    def _finish_copy(self, pipeline: _Pipeline) -> None:
        assert self._loop is not None and self._trace is not None
        op = pipeline.current
        assert op is not None and op.kind is SpanKind.COPY
        assignment = op.assignment
        self._trace.add_span(
            Span(
                phone_id=pipeline.runtime.phone_id,
                job_id=assignment.job_id,
                kind=SpanKind.COPY,
                start_ms=op.start_ms,
                end_ms=self._loop.now_ms,
                input_kb=assignment.input_kb,
                rescheduled=pipeline.rescheduled,
            )
        )
        pipeline.shipped_jobs.add(assignment.job_id)
        duration = pipeline.runtime.execute_time_ms(
            self._truth, assignment.task, assignment.input_kb
        )
        pipeline.runtime.state = PhoneState.EXECUTING
        token = self._loop.schedule_after(
            duration, lambda: self._finish_execute(pipeline)
        )
        pipeline.current = _Operation(
            assignment=assignment,
            kind=SpanKind.EXECUTE,
            start_ms=self._loop.now_ms,
            duration_ms=duration,
            token=token,
            includes_executable=False,
        )

    def _finish_execute(self, pipeline: _Pipeline) -> None:
        assert self._loop is not None and self._trace is not None
        op = pipeline.current
        assert op is not None and op.kind is SpanKind.EXECUTE
        assignment = op.assignment
        now = self._loop.now_ms
        self._trace.add_span(
            Span(
                phone_id=pipeline.runtime.phone_id,
                job_id=assignment.job_id,
                kind=SpanKind.EXECUTE,
                start_ms=op.start_ms,
                end_ms=now,
                input_kb=assignment.input_kb,
                rescheduled=pipeline.rescheduled,
            )
        )
        self._trace.add_completion(
            CompletionRecord(
                phone_id=pipeline.runtime.phone_id,
                job_id=assignment.job_id,
                time_ms=now,
                input_kb=assignment.input_kb,
                local_execution_ms=op.duration_ms,
                rescheduled=pipeline.rescheduled,
            )
        )
        # The phone reports the measured local execution time; the server
        # refines its per-KB prediction for this (phone, task) pair.
        if assignment.input_kb > 0 and op.duration_ms > 0:
            self._predictor.observe(
                pipeline.runtime.spec,
                assignment.task,
                op.duration_ms / assignment.input_kb,
            )
        if self._on_result is not None:
            self._on_result(
                assignment.job_id,
                assignment.task,
                pipeline.runtime.phone_id,
                assignment.input_kb,
                None,
            )
        pipeline.current = None
        self._outstanding -= 1
        self._start_next(pipeline)
        self._maybe_end_round()

    # ------------------------------------------------------------------
    # failures
    # ------------------------------------------------------------------

    def _make_failure_action(self, failure: PlannedFailure):
        def action() -> None:
            pipeline = self._pipelines[failure.phone_id]
            if not pipeline.runtime.available:
                return  # already failed
            if failure.online:
                self._fail_online(pipeline)
            else:
                self._fail_offline(pipeline)
            if failure.rejoin_after_ms is not None:
                assert self._loop is not None
                self._loop.schedule_after(
                    failure.rejoin_after_ms,
                    lambda: self._rejoin(pipeline),
                )

        return action

    def _rejoin(self, pipeline: _Pipeline) -> None:
        """A failed phone re-enters the fleet (Section 5's re-entry case).

        New work reaches it only at the *next scheduling instant* — in-
        flight rounds are not re-planned — but a silent failure whose
        keep-alive detection had not yet fired resumes its own queue:
        connectivity was restored before the server ever marked the
        phone failed, so the in-flight partition simply restarts.
        """
        assert self._loop is not None and self._trace is not None
        if pipeline.runtime.available:
            return
        interrupted = pipeline.current
        pipeline.current = None
        pipeline.runtime.state = PhoneState.IDLE
        if interrupted is not None:
            # Offline failure, not yet detected: record the lost span
            # and restart the partition from scratch.
            failed_at = (
                pipeline.failed_at_ms
                if pipeline.failed_at_ms is not None
                else interrupted.start_ms
            )
            self._trace.add_span(
                Span(
                    phone_id=pipeline.runtime.phone_id,
                    job_id=interrupted.assignment.job_id,
                    kind=interrupted.kind,
                    start_ms=interrupted.start_ms,
                    end_ms=max(interrupted.start_ms, failed_at),
                    input_kb=interrupted.assignment.input_kb,
                    rescheduled=pipeline.rescheduled,
                    interrupted=True,
                )
            )
            # Restarting means re-copying the input (the phone-side
            # runtime lost its state); the executable is still on disk.
            pipeline.queue.appendleft(interrupted.assignment)
        pipeline.failed_at_ms = None
        # The old monitor is stale (stopped or mid-miss-count): replace it.
        old = self._monitors.get(pipeline.runtime.phone_id)
        if old is not None:
            old.stop()
        self._start_monitor(pipeline.runtime.phone_id)
        if pipeline.queue:
            self._start_next(pipeline)
        elif not self._round_active:
            self._next_scheduling_instant()

    def _interrupt_current(
        self, pipeline: _Pipeline
    ) -> tuple[Assignment | None, float]:
        """Cancel the in-flight operation; return (assignment, processed_kb)."""
        assert self._loop is not None and self._trace is not None
        op = pipeline.current
        if op is None:
            return None, 0.0
        op.token.cancel()
        now = self._loop.now_ms
        processed_kb = 0.0
        if op.kind is SpanKind.EXECUTE and op.duration_ms > 0:
            fraction = min(1.0, (now - op.start_ms) / op.duration_ms)
            processed_kb = fraction * op.assignment.input_kb
        self._trace.add_span(
            Span(
                phone_id=pipeline.runtime.phone_id,
                job_id=op.assignment.job_id,
                kind=op.kind,
                start_ms=op.start_ms,
                end_ms=now,
                input_kb=op.assignment.input_kb,
                rescheduled=pipeline.rescheduled,
                interrupted=True,
            )
        )
        pipeline.current = None
        return op.assignment, processed_kb

    def _drain_queue_to_failed(self, pipeline: _Pipeline) -> int:
        """Re-enqueue everything the failed phone never started."""
        count = 0
        while pipeline.queue:
            assignment = pipeline.queue.popleft()
            job = self._jobs_by_id[assignment.job_id]
            self._failed.record_pending(job, assignment.input_kb)
            count += 1
        return count

    def _fail_online(self, pipeline: _Pipeline) -> None:
        """Clean unplug: the phone checkpoints and reports immediately."""
        assert self._loop is not None and self._trace is not None
        now = self._loop.now_ms
        assignment, processed_kb = self._interrupt_current(pipeline)
        resolved = 0
        if assignment is not None:
            job = self._jobs_by_id[assignment.job_id]
            checkpoint = Checkpoint(
                job_id=assignment.job_id,
                task=assignment.task,
                phone_id=pipeline.runtime.phone_id,
                partition_kb=assignment.input_kb,
                processed_kb=processed_kb,
                partial_result=None,
                time_ms=now,
            )
            self._failed.record_online_failure(job, checkpoint)
            resolved += 1
        resolved += self._drain_queue_to_failed(pipeline)
        pipeline.runtime.state = PhoneState.UNPLUGGED
        self._monitors[pipeline.runtime.phone_id].stop()
        self._trace.add_failure(
            FailureRecord(
                phone_id=pipeline.runtime.phone_id,
                failed_at_ms=now,
                detected_at_ms=now,
                online=True,
                job_id=assignment.job_id if assignment else None,
                processed_kb=processed_kb,
            )
        )
        self._outstanding -= resolved
        self._maybe_end_round()

    def _fail_offline(self, pipeline: _Pipeline) -> None:
        """Silent failure: the phone vanishes; keep-alives will notice."""
        assert self._loop is not None
        op = pipeline.current
        if op is not None:
            # The phone is gone; its in-flight operation never completes.
            op.token.cancel()
        pipeline.failed_at_ms = self._loop.now_ms
        pipeline.runtime.state = PhoneState.OFFLINE
        # Detection (and F_A bookkeeping) happens in _on_offline_detected,
        # fired by the keep-alive monitor.

    def _start_monitor(self, phone_id: str) -> None:
        pipeline = self._pipelines[phone_id]

        def is_responsive() -> bool:
            return pipeline.runtime.state is not PhoneState.OFFLINE

        def on_detect(detected_at_ms: float) -> None:
            self._on_offline_detected(pipeline, detected_at_ms)

        assert self._loop is not None
        monitor = KeepAliveMonitor(
            self._loop,
            phone_id,
            is_responsive=is_responsive,
            on_detect=on_detect,
            period_ms=self._keepalive_period_ms,
            tolerated_misses=self._keepalive_misses,
        )
        monitor.start()
        self._monitors[phone_id] = monitor

    def _on_offline_detected(
        self, pipeline: _Pipeline, detected_at_ms: float
    ) -> None:
        assert self._trace is not None
        op_assignment: Assignment | None = None
        resolved = 0
        op = pipeline.current
        if op is not None:
            # Record the truncated span up to the true failure instant
            # (the server only learns of it now); progress is lost.
            failed_at = pipeline.failed_at_ms
            if failed_at is None:
                failed_at = min(detected_at_ms, op.start_ms + op.duration_ms)
            self._trace.add_span(
                Span(
                    phone_id=pipeline.runtime.phone_id,
                    job_id=op.assignment.job_id,
                    kind=op.kind,
                    start_ms=op.start_ms,
                    end_ms=failed_at,
                    input_kb=op.assignment.input_kb,
                    rescheduled=pipeline.rescheduled,
                    interrupted=True,
                )
            )
            job = self._jobs_by_id[op.assignment.job_id]
            self._failed.record_offline_failure(job, op.assignment.input_kb)
            op_assignment = op.assignment
            pipeline.current = None
            resolved += 1
        resolved += self._drain_queue_to_failed(pipeline)
        self._trace.add_failure(
            FailureRecord(
                phone_id=pipeline.runtime.phone_id,
                failed_at_ms=(
                    pipeline.failed_at_ms
                    if pipeline.failed_at_ms is not None
                    else detected_at_ms
                ),
                detected_at_ms=detected_at_ms,
                online=False,
                job_id=op_assignment.job_id if op_assignment else None,
                processed_kb=0.0,
            )
        )
        self._outstanding -= resolved
        self._maybe_end_round()
