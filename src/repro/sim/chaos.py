"""Composable chaos injection for simulated CWC runs.

The paper's evaluation injects exactly three clean unplugs (Fig. 12c);
:class:`~repro.sim.failures.FailurePlan` inherits that narrowness.  Real
overnight fleets *flap* (fail, rejoin, fail again), *straggle* (a phone
silently slows down mid-run), suffer degraded links, crash individual
tasks, and occasionally return wrong answers.  This module generalises
the failure plan into a :class:`ChaosPlan` — a seeded, deterministic
stream of timed faults across five classes:

* **unplug / flapping** — :class:`~repro.sim.failures.PlannedFailure`
  streams, now with repeated fail/rejoin cycles per phone;
* **CPU stragglers** — :class:`CpuSlowdown`: a multiplicative factor on
  the phone's ground-truth execution time over a time window;
* **bandwidth degradation** — :class:`BandwidthDegradation`: the same,
  on the link model's per-KB transfer time;
* **task crashes** — :class:`TaskCrash`: the operation in flight on a
  phone dies; the phone survives;
* **corrupted results** — :class:`ResultCorruption`: the phone's next
  completed execution returns a wrong payload.

:class:`ChaosMonkey` samples plans from per-fault rates with a caller
supplied RNG, so a single integer seed reproduces an entire night of
chaos byte-for-byte.  :class:`ResiliencePolicy` configures the central
server's defences (straggler detection, speculative backups, dispatch
timeouts with bounded retry/backoff, duplicate-execution verification);
the degenerate default policy disables all of them, preserving the
paper-faithful server behaviour.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

from ..netmodel.links import DegradationSchedule
from .failures import FailurePlan, PlannedFailure

__all__ = [
    "CpuSlowdown",
    "BandwidthDegradation",
    "TaskCrash",
    "ResultCorruption",
    "ChaosPlan",
    "ChaosMonkey",
    "ResiliencePolicy",
]


def _check_time(name: str, value: float) -> None:
    if not math.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be finite and >= 0, got {value!r}")


@dataclass(frozen=True, slots=True)
class CpuSlowdown:
    """A mid-run CPU straggler: execution time multiplied by ``factor``.

    ``duration_ms = None`` means the phone stays slow until the end of
    the run.  Factors below 1 (a phone speeding up) are allowed but
    unusual; zero/negative factors are rejected.
    """

    phone_id: str
    start_ms: float
    factor: float
    duration_ms: float | None = None

    def __post_init__(self) -> None:
        _check_time("start_ms", self.start_ms)
        if not math.isfinite(self.factor) or self.factor <= 0:
            raise ValueError(f"factor must be finite and > 0, got {self.factor!r}")
        if self.duration_ms is not None and (
            not math.isfinite(self.duration_ms) or self.duration_ms <= 0
        ):
            raise ValueError(
                f"duration_ms must be finite and > 0, got {self.duration_ms!r}"
            )

    @property
    def end_ms(self) -> float | None:
        if self.duration_ms is None:
            return None
        return self.start_ms + self.duration_ms


@dataclass(frozen=True, slots=True)
class BandwidthDegradation:
    """A degraded link: per-KB transfer time multiplied by ``factor``."""

    phone_id: str
    start_ms: float
    factor: float
    duration_ms: float | None = None

    def __post_init__(self) -> None:
        _check_time("start_ms", self.start_ms)
        if not math.isfinite(self.factor) or self.factor <= 0:
            raise ValueError(f"factor must be finite and > 0, got {self.factor!r}")
        if self.duration_ms is not None and (
            not math.isfinite(self.duration_ms) or self.duration_ms <= 0
        ):
            raise ValueError(
                f"duration_ms must be finite and > 0, got {self.duration_ms!r}"
            )

    @property
    def end_ms(self) -> float | None:
        if self.duration_ms is None:
            return None
        return self.start_ms + self.duration_ms


@dataclass(frozen=True, slots=True)
class TaskCrash:
    """The operation in flight on ``phone_id`` at ``time_ms`` dies.

    The phone itself stays healthy: it reports the crash and keeps
    serving its queue.  If nothing is in flight the crash is a no-op.
    """

    phone_id: str
    time_ms: float

    def __post_init__(self) -> None:
        _check_time("time_ms", self.time_ms)


@dataclass(frozen=True, slots=True)
class ResultCorruption:
    """The phone's next completed execution after ``time_ms`` lies.

    The corrupted payload differs from the true result (and from any
    other corrupted payload), so duplicate-execution verification can
    detect it; without verification it is silently aggregated.
    """

    phone_id: str
    time_ms: float

    def __post_init__(self) -> None:
        _check_time("time_ms", self.time_ms)


class ChaosPlan:
    """An immutable, composable bundle of timed fault streams.

    All five fault classes are optional; an empty plan injects nothing.
    Plans are plain data — building one never touches an RNG, so a plan
    assembled from sampled pieces stays deterministic.
    """

    def __init__(
        self,
        *,
        failures: FailurePlan | Iterable[PlannedFailure] = (),
        slowdowns: Iterable[CpuSlowdown] = (),
        bandwidth: Iterable[BandwidthDegradation] = (),
        crashes: Iterable[TaskCrash] = (),
        corruptions: Iterable[ResultCorruption] = (),
    ) -> None:
        if not isinstance(failures, FailurePlan):
            failures = FailurePlan(failures)
        self._failures = failures
        self._slowdowns = tuple(
            sorted(slowdowns, key=lambda s: (s.start_ms, s.phone_id))
        )
        self._bandwidth = tuple(
            sorted(bandwidth, key=lambda b: (b.start_ms, b.phone_id))
        )
        self._crashes = tuple(
            sorted(crashes, key=lambda c: (c.time_ms, c.phone_id))
        )
        self._corruptions = tuple(
            sorted(corruptions, key=lambda c: (c.time_ms, c.phone_id))
        )

    @classmethod
    def none(cls) -> "ChaosPlan":
        """A plan that injects nothing."""
        return cls()

    @classmethod
    def from_failure_plan(cls, plan: FailurePlan) -> "ChaosPlan":
        """Wrap a legacy unplug-only failure plan."""
        return cls(failures=plan)

    # -- structure ---------------------------------------------------------

    @property
    def failures(self) -> FailurePlan:
        return self._failures

    @property
    def slowdowns(self) -> tuple[CpuSlowdown, ...]:
        return self._slowdowns

    @property
    def bandwidth(self) -> tuple[BandwidthDegradation, ...]:
        return self._bandwidth

    @property
    def crashes(self) -> tuple[TaskCrash, ...]:
        return self._crashes

    @property
    def corruptions(self) -> tuple[ResultCorruption, ...]:
        return self._corruptions

    @property
    def is_empty(self) -> bool:
        return not (
            len(self._failures)
            or self._slowdowns
            or self._bandwidth
            or self._crashes
            or self._corruptions
        )

    def fault_count(self) -> int:
        """Total number of planned faults across all classes."""
        return (
            len(self._failures)
            + len(self._slowdowns)
            + len(self._bandwidth)
            + len(self._crashes)
            + len(self._corruptions)
        )

    def phone_ids(self) -> frozenset[str]:
        """Every phone named by at least one fault."""
        ids = set(self._failures.phone_ids)
        for stream in (self._slowdowns, self._bandwidth, self._crashes,
                       self._corruptions):
            ids.update(event.phone_id for event in stream)
        return frozenset(ids)

    def merged(self, other: "ChaosPlan") -> "ChaosPlan":
        """Union of two plans (failure streams re-validated)."""
        return ChaosPlan(
            failures=self._failures.merged(other._failures),
            slowdowns=self._slowdowns + other._slowdowns,
            bandwidth=self._bandwidth + other._bandwidth,
            crashes=self._crashes + other._crashes,
            corruptions=self._corruptions + other._corruptions,
        )

    # -- compilation for the simulator -------------------------------------

    def compute_schedule(self, phone_id: str) -> DegradationSchedule | None:
        """This phone's CPU-slowdown timeline (None if never slowed)."""
        segments = [
            (s.start_ms, s.end_ms, s.factor)
            for s in self._slowdowns
            if s.phone_id == phone_id
        ]
        return DegradationSchedule(segments) if segments else None

    def bandwidth_schedule(self, phone_id: str) -> DegradationSchedule | None:
        """This phone's link-degradation timeline (None if never hit)."""
        segments = [
            (b.start_ms, b.end_ms, b.factor)
            for b in self._bandwidth
            if b.phone_id == phone_id
        ]
        return DegradationSchedule(segments) if segments else None

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe representation (round-trips via :meth:`from_dict`)."""
        return {
            "failures": [
                {
                    "phone_id": f.phone_id,
                    "time_ms": f.time_ms,
                    "online": f.online,
                    "rejoin_after_ms": f.rejoin_after_ms,
                }
                for f in self._failures
            ],
            "slowdowns": [
                {
                    "phone_id": s.phone_id,
                    "start_ms": s.start_ms,
                    "factor": s.factor,
                    "duration_ms": s.duration_ms,
                }
                for s in self._slowdowns
            ],
            "bandwidth": [
                {
                    "phone_id": b.phone_id,
                    "start_ms": b.start_ms,
                    "factor": b.factor,
                    "duration_ms": b.duration_ms,
                }
                for b in self._bandwidth
            ],
            "crashes": [
                {"phone_id": c.phone_id, "time_ms": c.time_ms}
                for c in self._crashes
            ],
            "corruptions": [
                {"phone_id": c.phone_id, "time_ms": c.time_ms}
                for c in self._corruptions
            ],
        }

    @classmethod
    def from_dict(cls, spec: Mapping) -> "ChaosPlan":
        """Parse a chaos spec (the CLI's ``--chaos`` file format)."""
        failures = [
            PlannedFailure(
                phone_id=str(f["phone_id"]),
                time_ms=float(f["time_ms"]),
                online=bool(f.get("online", True)),
                rejoin_after_ms=(
                    None
                    if f.get("rejoin_after_ms") is None
                    else float(f["rejoin_after_ms"])
                ),
            )
            for f in spec.get("failures", ())
        ]
        slowdowns = [
            CpuSlowdown(
                phone_id=str(s["phone_id"]),
                start_ms=float(s["start_ms"]),
                factor=float(s["factor"]),
                duration_ms=(
                    None
                    if s.get("duration_ms") is None
                    else float(s["duration_ms"])
                ),
            )
            for s in spec.get("slowdowns", ())
        ]
        bandwidth = [
            BandwidthDegradation(
                phone_id=str(b["phone_id"]),
                start_ms=float(b["start_ms"]),
                factor=float(b["factor"]),
                duration_ms=(
                    None
                    if b.get("duration_ms") is None
                    else float(b["duration_ms"])
                ),
            )
            for b in spec.get("bandwidth", ())
        ]
        crashes = [
            TaskCrash(phone_id=str(c["phone_id"]), time_ms=float(c["time_ms"]))
            for c in spec.get("crashes", ())
        ]
        corruptions = [
            ResultCorruption(
                phone_id=str(c["phone_id"]), time_ms=float(c["time_ms"])
            )
            for c in spec.get("corruptions", ())
        ]
        return cls(
            failures=failures,
            slowdowns=slowdowns,
            bandwidth=bandwidth,
            crashes=crashes,
            corruptions=corruptions,
        )


@dataclass(frozen=True)
class ResiliencePolicy:
    """The central server's defensive configuration.

    The default constructor disables every defence — the server then
    behaves exactly like the paper's prototype.  :meth:`hardened`
    returns the recommended all-defences-on profile.

    Parameters
    ----------
    straggler_factor:
        Flag an execution as a straggler once it has run longer than
        this multiple of its predicted time (None disables detection,
        and with it speculation).
    speculate:
        On straggler detection, launch a backup copy of the partition
        on an idle phone; first result wins, the loser is cancelled.
    dispatch_timeout_factor:
        Abort any copy/execute operation that exceeds this multiple of
        its *expected* duration (server-side belief), then retry with
        backoff (None disables timeouts).
    max_retries:
        Retry budget per partition across timeouts, crashes, and
        verification mismatches; exhausting it sends the partition to
        the failed-task list for next-round rescheduling.
    retry_backoff_ms / backoff_multiplier:
        First retry waits ``retry_backoff_ms``; each further retry
        multiplies the wait by ``backoff_multiplier``.
    verify_results:
        Re-execute every completed partition on a second phone and
        compare payloads before crediting the result; mismatches
        quarantine the partition (both copies discarded, retried).
    """

    straggler_factor: float | None = None
    speculate: bool = False
    dispatch_timeout_factor: float | None = None
    max_retries: int = 0
    retry_backoff_ms: float = 1_000.0
    backoff_multiplier: float = 2.0
    verify_results: bool = False

    def __post_init__(self) -> None:
        if self.straggler_factor is not None and self.straggler_factor <= 1.0:
            raise ValueError(
                f"straggler_factor must be > 1, got {self.straggler_factor!r}"
            )
        if (
            self.dispatch_timeout_factor is not None
            and self.dispatch_timeout_factor <= 1.0
        ):
            raise ValueError(
                "dispatch_timeout_factor must be > 1, got "
                f"{self.dispatch_timeout_factor!r}"
            )
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries!r}")
        if self.retry_backoff_ms < 0:
            raise ValueError(
                f"retry_backoff_ms must be >= 0, got {self.retry_backoff_ms!r}"
            )
        if self.backoff_multiplier < 1.0:
            raise ValueError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier!r}"
            )
        if self.speculate and self.straggler_factor is None:
            raise ValueError(
                "speculation needs straggler detection: set straggler_factor"
            )

    @classmethod
    def hardened(cls, *, verify_results: bool = False) -> "ResiliencePolicy":
        """The recommended defensive profile.

        Straggler detection at 2x prediction with speculation, dispatch
        timeouts at 8x expectation, three retries with exponential
        backoff.  Verification stays opt-in — it doubles execution work.
        """
        return cls(
            straggler_factor=2.0,
            speculate=True,
            dispatch_timeout_factor=8.0,
            max_retries=3,
            retry_backoff_ms=1_000.0,
            backoff_multiplier=2.0,
            verify_results=verify_results,
        )

    @property
    def active(self) -> bool:
        """Whether any defence beyond the paper's baseline is enabled."""
        return (
            self.straggler_factor is not None
            or self.dispatch_timeout_factor is not None
            or self.max_retries > 0
            or self.verify_results
        )


class ChaosMonkey:
    """Samples seeded chaos plans from per-fault-class rates.

    Rates are expressed per phone over the whole target window, so the
    expected number of faults scales with fleet size but not with how
    the window is subdivided.  Sampling draws from a caller-supplied
    ``random.Random``, making a single integer seed reproduce the whole
    plan.

    Parameters
    ----------
    flap_probability:
        Chance a phone flaps (one fail/rejoin cycle, possibly several).
    max_flap_cycles:
        Upper bound on fail/rejoin cycles for a flapping phone.
    straggler_probability / straggler_factor_range:
        Chance a phone becomes a mid-run straggler, and the uniform
        range its slowdown factor is drawn from.
    bandwidth_probability / bandwidth_factor_range:
        Same, for link degradation.
    crash_rate / corruption_rate:
        Expected number of task crashes / corrupted results per phone
        over the window (each draw is Bernoulli per unit).
    online_fraction:
        Share of sampled unplugs that are clean (online) failures.
    """

    def __init__(
        self,
        *,
        flap_probability: float = 0.0,
        max_flap_cycles: int = 2,
        flap_down_range_ms: tuple[float, float] = (60_000.0, 300_000.0),
        flap_up_range_ms: tuple[float, float] = (60_000.0, 300_000.0),
        straggler_probability: float = 0.0,
        straggler_factor_range: tuple[float, float] = (2.0, 8.0),
        bandwidth_probability: float = 0.0,
        bandwidth_factor_range: tuple[float, float] = (2.0, 10.0),
        crash_rate: float = 0.0,
        corruption_rate: float = 0.0,
        online_fraction: float = 0.9,
    ) -> None:
        for name, p in (
            ("flap_probability", flap_probability),
            ("straggler_probability", straggler_probability),
            ("bandwidth_probability", bandwidth_probability),
            ("online_fraction", online_fraction),
        ):
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must lie in [0, 1], got {p!r}")
        if max_flap_cycles < 1:
            raise ValueError(
                f"max_flap_cycles must be >= 1, got {max_flap_cycles!r}"
            )
        if crash_rate < 0 or corruption_rate < 0:
            raise ValueError("crash_rate and corruption_rate must be >= 0")
        for name, (low, high) in (
            ("flap_down_range_ms", flap_down_range_ms),
            ("flap_up_range_ms", flap_up_range_ms),
            ("straggler_factor_range", straggler_factor_range),
            ("bandwidth_factor_range", bandwidth_factor_range),
        ):
            if not 0.0 < low <= high:
                raise ValueError(
                    f"{name} must satisfy 0 < low <= high, got {(low, high)!r}"
                )
        self._flap_probability = flap_probability
        self._max_flap_cycles = max_flap_cycles
        self._flap_down = flap_down_range_ms
        self._flap_up = flap_up_range_ms
        self._straggler_probability = straggler_probability
        self._straggler_factors = straggler_factor_range
        self._bandwidth_probability = bandwidth_probability
        self._bandwidth_factors = bandwidth_factor_range
        self._crash_rate = crash_rate
        self._corruption_rate = corruption_rate
        self._online_fraction = online_fraction

    def sample_plan(
        self,
        phone_ids: Sequence[str],
        *,
        duration_ms: float,
        rng: random.Random,
    ) -> ChaosPlan:
        """Sample one night's chaos over ``duration_ms`` for the fleet."""
        if duration_ms <= 0:
            raise ValueError(f"duration_ms must be > 0, got {duration_ms!r}")
        failures: list[PlannedFailure] = []
        slowdowns: list[CpuSlowdown] = []
        bandwidth: list[BandwidthDegradation] = []
        crashes: list[TaskCrash] = []
        corruptions: list[ResultCorruption] = []
        for phone_id in phone_ids:
            if rng.random() < self._flap_probability:
                cycles = rng.randint(1, self._max_flap_cycles)
                time_ms = rng.uniform(0.0, duration_ms * 0.5)
                for _ in range(cycles):
                    down = rng.uniform(*self._flap_down)
                    up = rng.uniform(*self._flap_up)
                    failures.append(
                        PlannedFailure(
                            phone_id=phone_id,
                            time_ms=time_ms,
                            online=rng.random() < self._online_fraction,
                            rejoin_after_ms=down,
                        )
                    )
                    time_ms += down + up
            if rng.random() < self._straggler_probability:
                start = rng.uniform(0.0, duration_ms * 0.5)
                slowdowns.append(
                    CpuSlowdown(
                        phone_id=phone_id,
                        start_ms=start,
                        factor=rng.uniform(*self._straggler_factors),
                        duration_ms=rng.uniform(
                            duration_ms * 0.1, duration_ms * 0.5
                        ),
                    )
                )
            if rng.random() < self._bandwidth_probability:
                start = rng.uniform(0.0, duration_ms * 0.5)
                bandwidth.append(
                    BandwidthDegradation(
                        phone_id=phone_id,
                        start_ms=start,
                        factor=rng.uniform(*self._bandwidth_factors),
                        duration_ms=rng.uniform(
                            duration_ms * 0.1, duration_ms * 0.5
                        ),
                    )
                )
            for _ in range(self._poisson_like(self._crash_rate, rng)):
                crashes.append(
                    TaskCrash(
                        phone_id=phone_id,
                        time_ms=rng.uniform(0.0, duration_ms),
                    )
                )
            for _ in range(self._poisson_like(self._corruption_rate, rng)):
                corruptions.append(
                    ResultCorruption(
                        phone_id=phone_id,
                        time_ms=rng.uniform(0.0, duration_ms),
                    )
                )
        return ChaosPlan(
            failures=failures,
            slowdowns=slowdowns,
            bandwidth=bandwidth,
            crashes=crashes,
            corruptions=corruptions,
        )

    @staticmethod
    def _poisson_like(rate: float, rng: random.Random) -> int:
        """Integer draw with mean ``rate`` (whole part + Bernoulli tail)."""
        count = int(rate)
        if rng.random() < rate - count:
            count += 1
        return count
