"""Failure injection for simulated CWC runs.

The paper's Figure 12c experiment unplugs three phones at random
instants mid-run.  :class:`FailurePlan` expresses that and more: an
ordered stream of (phone, time, kind) triples the simulated server does
not know about in advance.  A phone may appear several times — fail,
rejoin, and fail again — which is how real overnight fleets *flap*
(:func:`FailurePlan.flapping` builds exactly that pattern).
:class:`RandomUnplugModel` generates plans from per-hour unplug
likelihoods — the bridge from the Section 3 charging-behaviour study
(Figure 3) to the scheduler evaluation.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

__all__ = ["PlannedFailure", "FailurePlan", "RandomUnplugModel"]

MS_PER_HOUR = 3_600_000.0


@dataclass(frozen=True, slots=True)
class PlannedFailure:
    """One injected failure.

    ``online`` selects the failure class: an online failure is a clean
    unplug (the phone reports its state before suspending); an offline
    failure is silent (connectivity lost — the server learns of it only
    through missed keep-alives).

    ``rejoin_after_ms`` models the paper's re-entry case: "failed
    phones may re-enter the system after a short period of
    unavailability (e.g., the user plugs her phone to the charger
    after a few minutes)".  The phone becomes available again that long
    after the failure and can receive work at the next scheduling
    instant; ``None`` means it stays gone for the rest of the run.
    """

    phone_id: str
    time_ms: float
    online: bool = True
    rejoin_after_ms: float | None = None

    def __post_init__(self) -> None:
        if not math.isfinite(self.time_ms) or self.time_ms < 0:
            raise ValueError(f"time_ms must be finite and >= 0, got {self.time_ms!r}")
        if self.rejoin_after_ms is not None and (
            not math.isfinite(self.rejoin_after_ms) or self.rejoin_after_ms <= 0
        ):
            raise ValueError(
                f"rejoin_after_ms must be finite and > 0, got {self.rejoin_after_ms!r}"
            )


class FailurePlan:
    """An immutable stream of planned failures, queryable per phone.

    A phone may fail more than once — each later failure must come with
    an earlier failure that rejoins, or it can never fire (the phone is
    already gone).  Plans built the old way, with one terminal failure
    per phone, behave exactly as before.
    """

    def __init__(self, failures: Iterable[PlannedFailure] = ()) -> None:
        self._failures = tuple(sorted(failures, key=lambda f: (f.time_ms, f.phone_id)))
        last_seen: dict[str, PlannedFailure] = {}
        for failure in self._failures:
            previous = last_seen.get(failure.phone_id)
            if previous is not None:
                if previous.rejoin_after_ms is None:
                    raise ValueError(
                        f"phone {failure.phone_id!r} has a failure at "
                        f"{failure.time_ms} after a terminal failure at "
                        f"{previous.time_ms} (no rejoin)"
                    )
                if failure.time_ms <= previous.time_ms + previous.rejoin_after_ms:
                    raise ValueError(
                        f"phone {failure.phone_id!r} fails again at "
                        f"{failure.time_ms} at or before rejoining from its "
                        f"failure at {previous.time_ms}"
                    )
            last_seen[failure.phone_id] = failure

    @classmethod
    def none(cls) -> "FailurePlan":
        return cls(())

    @classmethod
    def flapping(
        cls,
        phone_id: str,
        *,
        first_ms: float,
        down_ms: float,
        up_ms: float,
        cycles: int,
        online: bool = True,
        final_rejoin: bool = True,
    ) -> "FailurePlan":
        """A phone that repeatedly drops and returns.

        Starting at ``first_ms`` the phone fails for ``down_ms``, comes
        back for ``up_ms``, and repeats for ``cycles`` rounds.  With
        ``final_rejoin`` false the last failure is terminal.
        """
        if cycles < 1:
            raise ValueError(f"cycles must be >= 1, got {cycles!r}")
        if down_ms <= 0 or up_ms <= 0:
            raise ValueError("down_ms and up_ms must be > 0")
        failures = []
        time_ms = first_ms
        for cycle in range(cycles):
            last = cycle == cycles - 1
            rejoin = None if (last and not final_rejoin) else down_ms
            failures.append(
                PlannedFailure(
                    phone_id=phone_id,
                    time_ms=time_ms,
                    online=online,
                    rejoin_after_ms=rejoin,
                )
            )
            time_ms += down_ms + up_ms
        return cls(failures)

    def merged(self, other: "FailurePlan") -> "FailurePlan":
        """Combine two plans into one (validated) stream."""
        return FailurePlan(tuple(self) + tuple(other))

    def __len__(self) -> int:
        return len(self._failures)

    def __iter__(self):
        return iter(self._failures)

    def for_phone(self, phone_id: str) -> PlannedFailure | None:
        """The phone's *first* planned failure (legacy single-failure API)."""
        for failure in self._failures:
            if failure.phone_id == phone_id:
                return failure
        return None

    def all_for_phone(self, phone_id: str) -> tuple[PlannedFailure, ...]:
        """Every planned failure for one phone, in time order."""
        return tuple(f for f in self._failures if f.phone_id == phone_id)

    @property
    def phone_ids(self) -> frozenset[str]:
        return frozenset(f.phone_id for f in self._failures)


class RandomUnplugModel:
    """Samples failure plans from hourly unplug likelihoods.

    Parameters
    ----------
    hourly_unplug_probability:
        24 values; entry ``h`` is the probability that a plugged phone
        is unplugged at some point during local hour ``h``.  The
        Section 3 study (Figure 3) measures exactly this shape — low
        (< 30 % cumulative) between midnight and 8 AM, high during the
        day.
    online_fraction:
        Probability that a sampled failure is an online (clean-unplug)
        failure rather than a silent offline one.  The paper's study
        found phones rarely shut down while charging (≈3 % of logs), so
        the default is heavily biased to online failures.
    rejoin_probability / rejoin_minutes:
        The paper's re-entry case: with this probability an unplugged
        phone is plugged back in after a uniform delay in the given
        range ("the user plugs her phone to the charger after a few
        minutes").
    """

    def __init__(
        self,
        hourly_unplug_probability: Sequence[float],
        *,
        online_fraction: float = 0.9,
        rejoin_probability: float = 0.0,
        rejoin_minutes: tuple[float, float] = (5.0, 30.0),
    ) -> None:
        probs = tuple(float(p) for p in hourly_unplug_probability)
        if len(probs) != 24:
            raise ValueError(f"need 24 hourly probabilities, got {len(probs)}")
        if any(not 0.0 <= p <= 1.0 for p in probs):
            raise ValueError("probabilities must lie in [0, 1]")
        if not 0.0 <= online_fraction <= 1.0:
            raise ValueError("online_fraction must lie in [0, 1]")
        if not 0.0 <= rejoin_probability <= 1.0:
            raise ValueError("rejoin_probability must lie in [0, 1]")
        low, high = rejoin_minutes
        if not 0.0 < low <= high:
            raise ValueError(
                f"rejoin_minutes must satisfy 0 < low <= high, got {rejoin_minutes!r}"
            )
        self._probs = probs
        self._online_fraction = online_fraction
        self._rejoin_probability = rejoin_probability
        self._rejoin_minutes = (low, high)

    def sample_plan(
        self,
        phone_ids: Iterable[str],
        *,
        start_hour: float,
        duration_hours: float,
        rng: random.Random,
    ) -> FailurePlan:
        """Sample at most one failure per phone over a time window.

        ``start_hour`` is the local wall-clock hour at simulation time
        zero; the window covers ``duration_hours`` from there.  A phone
        fails during hour-slice ``h`` with the configured probability,
        at a uniform instant within the slice.
        """
        if duration_hours <= 0:
            raise ValueError("duration_hours must be > 0")
        failures = []
        for phone_id in phone_ids:
            elapsed = 0.0
            while elapsed < duration_hours:
                slice_hours = min(1.0, duration_hours - elapsed)
                hour = int(start_hour + elapsed) % 24
                if rng.random() < self._probs[hour] * slice_hours:
                    offset_ms = (elapsed + rng.random() * slice_hours) * MS_PER_HOUR
                    rejoin_ms = None
                    if rng.random() < self._rejoin_probability:
                        low, high = self._rejoin_minutes
                        rejoin_ms = rng.uniform(low, high) * 60_000.0
                    failures.append(
                        PlannedFailure(
                            phone_id=phone_id,
                            time_ms=offset_ms,
                            online=rng.random() < self._online_fraction,
                            rejoin_after_ms=rejoin_ms,
                        )
                    )
                    break
                elapsed += slice_hours
        return FailurePlan(failures)
