"""Run metrics: utilisation and efficiency statistics from traces.

The paper reads its Figure 12 timelines qualitatively ("the load is
well balanced for most of the phones"); this module computes the
quantitative versions a systems evaluation wants:

* per-phone **busy fraction** (work time / makespan) and **copy
  overhead** (fraction of busy time spent receiving data — the
  vertical black stripes);
* fleet-wide **parallel efficiency** (aggregate busy time over
  ``n_phones × makespan`` — 1.0 means perfect balance);
* **load-balance spread** (the earliest-to-latest finish gap the paper
  quotes as ≈20 % of the makespan).

Chaos-injected runs (:mod:`repro.sim.chaos`) additionally get a
:class:`ResilienceReport`: per-class injected-fault counts against what
the server detected, retried, speculated, and quarantined, plus the
wasted-work and makespan-inflation cost of surviving the faults.  The
report serialises deterministically (:meth:`ResilienceReport.to_json`
is byte-stable for a fixed trace), so two runs with the same chaos seed
produce identical JSON — the regression anchor for seeded determinism.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from .trace import SpanKind, TimelineTrace

__all__ = [
    "PhoneUtilisation",
    "RunMetrics",
    "ResilienceReport",
    "compute_run_metrics",
    "compute_resilience_report",
]


@dataclass(frozen=True)
class PhoneUtilisation:
    """One phone's share of the run."""

    phone_id: str
    busy_ms: float
    copy_ms: float
    execute_ms: float
    finish_ms: float
    partitions: int

    @property
    def copy_fraction(self) -> float:
        """Share of this phone's busy time spent on transfers."""
        return self.copy_ms / self.busy_ms if self.busy_ms else 0.0


@dataclass(frozen=True)
class RunMetrics:
    """Fleet-wide statistics of one run."""

    makespan_ms: float
    phones: tuple[PhoneUtilisation, ...]

    @property
    def active_phone_count(self) -> int:
        return sum(1 for phone in self.phones if phone.busy_ms > 0)

    @property
    def parallel_efficiency(self) -> float:
        """Aggregate busy time over (active phones x makespan).

        1.0 = every active phone worked wall-to-wall; low values mean
        idling at the tail (imbalance) or between pipeline stages.
        """
        if self.makespan_ms <= 0 or self.active_phone_count == 0:
            return 0.0
        busy = sum(phone.busy_ms for phone in self.phones)
        return busy / (self.active_phone_count * self.makespan_ms)

    @property
    def finish_spread_fraction(self) -> float:
        """(last finish - first finish) / makespan over active phones."""
        finishes = [p.finish_ms for p in self.phones if p.busy_ms > 0]
        if len(finishes) < 2 or self.makespan_ms <= 0:
            return 0.0
        return (max(finishes) - min(finishes)) / self.makespan_ms

    @property
    def mean_copy_fraction(self) -> float:
        active = [p for p in self.phones if p.busy_ms > 0]
        if not active:
            return 0.0
        return sum(p.copy_fraction for p in active) / len(active)

    def phone(self, phone_id: str) -> PhoneUtilisation:
        for utilisation in self.phones:
            if utilisation.phone_id == phone_id:
                return utilisation
        raise KeyError(f"no utilisation for phone {phone_id!r}")


@dataclass(frozen=True)
class ResilienceReport:
    """What chaos did to a run, and what the server did about it.

    ``faults_injected`` counts ground-truth injections per chaos kind
    ("unplug", "cpu_slowdown", "bandwidth_degraded", "task_crash",
    "corrupt_result").  The remaining counters come from the server's
    own resilience events and failure records, so injected-vs-detected
    gaps are visible (e.g. a crash that hit an idle phone, a corruption
    that was never executed).
    """

    faults_injected: dict[str, int]
    failures_detected: int
    stragglers_detected: int
    timeouts: int
    retries: int
    gave_up: int
    speculations_launched: int
    speculations_won: int
    verifications_launched: int
    verify_mismatches: int
    quarantined: int
    rejoins: int
    completed_partitions: int
    unfinished_jobs: int
    wasted_work_ms: float
    total_work_ms: float
    makespan_ms: float
    baseline_makespan_ms: float | None = None
    #: Proactive replicas a scheduling policy launched at round start
    #: (distinct from reactive straggler speculation above).
    replications_launched: int = 0
    replications_won: int = 0

    @property
    def total_faults_injected(self) -> int:
        """Ground-truth fault count across every chaos class."""
        return sum(self.faults_injected.values())

    @property
    def wasted_fraction(self) -> float:
        """Share of all phone-time that produced no credited result."""
        if self.total_work_ms <= 0:
            return 0.0
        return self.wasted_work_ms / self.total_work_ms

    @property
    def makespan_inflation(self) -> float:
        """Makespan relative to the fault-free baseline (1.0 = no cost).

        Returns 0.0 when no baseline was supplied.
        """
        if not self.baseline_makespan_ms:
            return 0.0
        return self.makespan_ms / self.baseline_makespan_ms

    def to_dict(self) -> dict:
        """JSON-safe representation with deterministic ordering."""
        return {
            "faults_injected": {
                kind: self.faults_injected[kind]
                for kind in sorted(self.faults_injected)
            },
            "total_faults_injected": self.total_faults_injected,
            "failures_detected": self.failures_detected,
            "stragglers_detected": self.stragglers_detected,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "gave_up": self.gave_up,
            "speculations_launched": self.speculations_launched,
            "speculations_won": self.speculations_won,
            "replications_launched": self.replications_launched,
            "replications_won": self.replications_won,
            "verifications_launched": self.verifications_launched,
            "verify_mismatches": self.verify_mismatches,
            "quarantined": self.quarantined,
            "rejoins": self.rejoins,
            "completed_partitions": self.completed_partitions,
            "unfinished_jobs": self.unfinished_jobs,
            "wasted_work_ms": round(self.wasted_work_ms, 6),
            "wasted_fraction": round(self.wasted_fraction, 9),
            "total_work_ms": round(self.total_work_ms, 6),
            "makespan_ms": round(self.makespan_ms, 6),
            "baseline_makespan_ms": (
                None
                if self.baseline_makespan_ms is None
                else round(self.baseline_makespan_ms, 6)
            ),
            "makespan_inflation": round(self.makespan_inflation, 9),
        }

    def to_json(self, *, indent: int | None = None) -> str:
        """Deterministic JSON: same trace in, byte-identical string out."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def summary_lines(self) -> list[str]:
        """Human-readable report (what the CLI prints)."""
        lines = ["resilience report:"]
        injected = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(self.faults_injected.items())
        )
        lines.append(
            f"  faults injected     : {self.total_faults_injected}"
            + (f" ({injected})" if injected else "")
        )
        lines.append(f"  failures detected   : {self.failures_detected}")
        lines.append(f"  stragglers detected : {self.stragglers_detected}")
        lines.append(
            f"  timeouts / retries  : {self.timeouts} / {self.retries}"
            f" (gave up {self.gave_up})"
        )
        lines.append(
            f"  speculation         : {self.speculations_launched} launched, "
            f"{self.speculations_won} won"
        )
        if self.replications_launched or self.replications_won:
            lines.append(
                f"  replication         : {self.replications_launched} "
                f"launched, {self.replications_won} won"
            )
        lines.append(
            f"  verification        : {self.verifications_launched} launched, "
            f"{self.verify_mismatches} mismatches, "
            f"{self.quarantined} quarantined"
        )
        lines.append(f"  rejoins             : {self.rejoins}")
        lines.append(
            f"  wasted work         : {self.wasted_work_ms:.0f} ms "
            f"({self.wasted_fraction:.1%} of {self.total_work_ms:.0f} ms)"
        )
        if self.baseline_makespan_ms:
            lines.append(
                f"  makespan inflation  : {self.makespan_inflation:.3f}x "
                f"({self.makespan_ms:.0f} ms vs "
                f"{self.baseline_makespan_ms:.0f} ms fault-free)"
            )
        return lines


def compute_resilience_report(
    result,
    *,
    baseline_makespan_ms: float | None = None,
) -> ResilienceReport:
    """Distil a run's chaos/resilience story from its trace.

    ``result`` is a :class:`~repro.sim.server.RunResult`;
    ``baseline_makespan_ms`` (optional) is the measured makespan of the
    same workload run fault-free, enabling the inflation metric.
    """
    trace: TimelineTrace = result.trace
    injected: dict[str, int] = {}
    for record in trace.chaos:
        injected[record.kind] = injected.get(record.kind, 0) + 1

    def count(kind: str) -> int:
        return len(trace.resilience_events_of(kind))

    total_work = sum(span.duration_ms for span in trace.spans)
    return ResilienceReport(
        faults_injected=injected,
        failures_detected=len(trace.failures),
        stragglers_detected=count("straggler_detected"),
        timeouts=count("timeout"),
        retries=count("retry"),
        gave_up=count("gave_up"),
        speculations_launched=count("speculation_launched"),
        speculations_won=count("speculation_won"),
        replications_launched=count("replication_launched"),
        replications_won=count("replication_won"),
        verifications_launched=count("verify_launched"),
        verify_mismatches=count("verify_mismatch"),
        quarantined=count("quarantined"),
        rejoins=count("rejoin"),
        completed_partitions=len(trace.completions),
        unfinished_jobs=len(result.unfinished_jobs),
        wasted_work_ms=trace.wasted_work_ms(),
        total_work_ms=total_work,
        makespan_ms=trace.makespan_ms(),
        baseline_makespan_ms=baseline_makespan_ms,
    )


def compute_run_metrics(trace: TimelineTrace) -> RunMetrics:
    """Summarise a timeline trace into fleet utilisation metrics."""
    makespan = trace.makespan_ms()
    utilisations = []
    for phone_id in trace.phone_ids():
        spans = trace.spans_for(phone_id)
        copy_ms = sum(
            s.duration_ms for s in spans if s.kind is SpanKind.COPY
        )
        execute_ms = sum(
            s.duration_ms for s in spans if s.kind is SpanKind.EXECUTE
        )
        utilisations.append(
            PhoneUtilisation(
                phone_id=phone_id,
                busy_ms=copy_ms + execute_ms,
                copy_ms=copy_ms,
                execute_ms=execute_ms,
                finish_ms=trace.finish_time_ms(phone_id),
                partitions=sum(
                    1 for s in spans if s.kind is SpanKind.EXECUTE
                ),
            )
        )
    return RunMetrics(makespan_ms=makespan, phones=tuple(utilisations))
