"""Run metrics: utilisation and efficiency statistics from traces.

The paper reads its Figure 12 timelines qualitatively ("the load is
well balanced for most of the phones"); this module computes the
quantitative versions a systems evaluation wants:

* per-phone **busy fraction** (work time / makespan) and **copy
  overhead** (fraction of busy time spent receiving data — the
  vertical black stripes);
* fleet-wide **parallel efficiency** (aggregate busy time over
  ``n_phones × makespan`` — 1.0 means perfect balance);
* **load-balance spread** (the earliest-to-latest finish gap the paper
  quotes as ≈20 % of the makespan).
"""

from __future__ import annotations

from dataclasses import dataclass

from .trace import SpanKind, TimelineTrace

__all__ = ["PhoneUtilisation", "RunMetrics", "compute_run_metrics"]


@dataclass(frozen=True)
class PhoneUtilisation:
    """One phone's share of the run."""

    phone_id: str
    busy_ms: float
    copy_ms: float
    execute_ms: float
    finish_ms: float
    partitions: int

    @property
    def copy_fraction(self) -> float:
        """Share of this phone's busy time spent on transfers."""
        return self.copy_ms / self.busy_ms if self.busy_ms else 0.0


@dataclass(frozen=True)
class RunMetrics:
    """Fleet-wide statistics of one run."""

    makespan_ms: float
    phones: tuple[PhoneUtilisation, ...]

    @property
    def active_phone_count(self) -> int:
        return sum(1 for phone in self.phones if phone.busy_ms > 0)

    @property
    def parallel_efficiency(self) -> float:
        """Aggregate busy time over (active phones x makespan).

        1.0 = every active phone worked wall-to-wall; low values mean
        idling at the tail (imbalance) or between pipeline stages.
        """
        if self.makespan_ms <= 0 or self.active_phone_count == 0:
            return 0.0
        busy = sum(phone.busy_ms for phone in self.phones)
        return busy / (self.active_phone_count * self.makespan_ms)

    @property
    def finish_spread_fraction(self) -> float:
        """(last finish - first finish) / makespan over active phones."""
        finishes = [p.finish_ms for p in self.phones if p.busy_ms > 0]
        if len(finishes) < 2 or self.makespan_ms <= 0:
            return 0.0
        return (max(finishes) - min(finishes)) / self.makespan_ms

    @property
    def mean_copy_fraction(self) -> float:
        active = [p for p in self.phones if p.busy_ms > 0]
        if not active:
            return 0.0
        return sum(p.copy_fraction for p in active) / len(active)

    def phone(self, phone_id: str) -> PhoneUtilisation:
        for utilisation in self.phones:
            if utilisation.phone_id == phone_id:
                return utilisation
        raise KeyError(f"no utilisation for phone {phone_id!r}")


def compute_run_metrics(trace: TimelineTrace) -> RunMetrics:
    """Summarise a timeline trace into fleet utilisation metrics."""
    makespan = trace.makespan_ms()
    utilisations = []
    for phone_id in trace.phone_ids():
        spans = trace.spans_for(phone_id)
        copy_ms = sum(
            s.duration_ms for s in spans if s.kind is SpanKind.COPY
        )
        execute_ms = sum(
            s.duration_ms for s in spans if s.kind is SpanKind.EXECUTE
        )
        utilisations.append(
            PhoneUtilisation(
                phone_id=phone_id,
                busy_ms=copy_ms + execute_ms,
                copy_ms=copy_ms,
                execute_ms=execute_ms,
                finish_ms=trace.finish_time_ms(phone_id),
                partitions=sum(
                    1 for s in spans if s.kind is SpanKind.EXECUTE
                ),
            )
        )
    return RunMetrics(makespan_ms=makespan, phones=tuple(utilisations))
