"""Timeline traces: the simulator's equivalent of Figure 12's plots.

A :class:`TimelineTrace` records everything that happened during a run:

* :class:`Span` — an interval during which a phone was copying an
  executable/input partition from the server (the "vertical black
  stripes" in Fig. 12a) or locally executing a task (the white regions);
* :class:`FailureRecord` — a phone failing (unplug or connectivity
  loss) and, for offline failures, when the server *detected* it;
* :class:`CompletionRecord` — a partition's partial result reaching
  the server;
* :class:`ChaosRecord` — a fault the chaos subsystem injected (ground
  truth the server never sees directly);
* :class:`ResilienceEvent` — the server's defensive actions: straggler
  detections, timeouts, retries, speculative backups, verification
  verdicts, quarantines, and phone rejoins.

The helpers at the bottom compute the quantities the paper reports:
measured makespan, per-phone finish times, and rescheduling overhead.
The chaos/resilience streams feed
:func:`repro.sim.metrics.compute_resilience_report`.

Recording discipline: every ``add_*`` method accepts an optional
``at_ms`` — the simulation instant the record *arrived* at the trace.
When supplied (the :class:`~repro.sim.server.CentralServer` always
supplies its event-loop clock), arrival times must be non-decreasing;
a violation raises :class:`TraceOrderError` immediately instead of
silently producing an out-of-order JSONL export downstream.  Note the
arrival instant can differ from the record's own timestamps: a
silently failed phone's truncated span is recorded at keep-alive
*detection* time with an ``end_ms`` back at the true failure instant.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

__all__ = [
    "SpanKind",
    "Span",
    "FailureRecord",
    "CompletionRecord",
    "ChaosRecord",
    "ResilienceEvent",
    "TimelineTrace",
    "TraceOrderError",
]


class TraceOrderError(ValueError):
    """A trace record arrived earlier in sim time than its predecessor."""


class SpanKind(enum.Enum):
    """What a phone was doing during a span."""

    COPY = "copy"          # server -> phone transfer of executable + input
    EXECUTE = "execute"    # local task execution on the phone


@dataclass(frozen=True, slots=True)
class Span:
    """One copy or execute interval on one phone's timeline."""

    phone_id: str
    job_id: str
    kind: SpanKind
    start_ms: float
    end_ms: float
    input_kb: float
    #: True when this span executes work re-scheduled after a failure
    #: (the shaded executions in Fig. 12c).
    rescheduled: bool = False
    #: True when the span was cut short by a failure.
    interrupted: bool = False
    #: True when this span is redundant by design — a speculative backup
    #: of a straggling task, or a duplicate execution for verification.
    speculative: bool = False

    def __post_init__(self) -> None:
        if not math.isfinite(self.start_ms) or not math.isfinite(self.end_ms):
            raise ValueError("span times must be finite")
        if self.end_ms < self.start_ms:
            raise ValueError(
                f"span ends before it starts: [{self.start_ms}, {self.end_ms}]"
            )

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass(frozen=True, slots=True)
class FailureRecord:
    """A phone failure as the *server* eventually sees it."""

    phone_id: str
    failed_at_ms: float
    detected_at_ms: float
    online: bool
    job_id: str | None = None
    processed_kb: float = 0.0


@dataclass(frozen=True, slots=True)
class CompletionRecord:
    """A partition's result arriving at the server."""

    phone_id: str
    job_id: str
    time_ms: float
    input_kb: float
    local_execution_ms: float
    rescheduled: bool = False


@dataclass(frozen=True, slots=True)
class ChaosRecord:
    """One fault the chaos subsystem injected into a run.

    ``kind`` names the fault class (``"unplug"``, ``"cpu_slowdown"``,
    ``"bandwidth_degraded"``, ``"task_crash"``, ``"corrupt_result"``);
    ``detail`` carries a short human-readable description.  These are
    ground truth — the server only ever observes their *symptoms*.
    """

    kind: str
    phone_id: str
    time_ms: float
    detail: str = ""


@dataclass(frozen=True, slots=True)
class ResilienceEvent:
    """One defensive action or observation by the central server.

    ``kind`` is one of the server's event names: e.g.
    ``"straggler_detected"``, ``"timeout"``, ``"retry"``, ``"gave_up"``,
    ``"speculation_launched"``, ``"speculation_won"``, ``"primary_won"``,
    ``"verify_launched"``, ``"verify_ok"``, ``"verify_mismatch"``,
    ``"verify_abandoned"``, ``"verify_skipped"``, ``"quarantined"``,
    ``"rejoin"``.
    """

    kind: str
    phone_id: str
    time_ms: float
    job_id: str | None = None
    detail: str = ""


@dataclass
class TimelineTrace:
    """Everything observed during one simulated CWC run."""

    spans: list[Span] = field(default_factory=list)
    failures: list[FailureRecord] = field(default_factory=list)
    completions: list[CompletionRecord] = field(default_factory=list)
    chaos: list[ChaosRecord] = field(default_factory=list)
    resilience_events: list[ResilienceEvent] = field(default_factory=list)
    #: Arrival instant of the most recent record whose ``at_ms`` was
    #: supplied; the monotonicity watermark.
    last_recorded_ms: float = field(default=float("-inf"), repr=False)

    # -- recording ---------------------------------------------------------

    def _check_order(self, what: str, at_ms: float | None) -> None:
        if at_ms is None:
            return
        if not math.isfinite(at_ms):
            raise TraceOrderError(
                f"{what} recorded at non-finite sim time {at_ms!r}"
            )
        if at_ms < self.last_recorded_ms:
            raise TraceOrderError(
                f"{what} recorded at sim time {at_ms} ms, but a record "
                f"already arrived at {self.last_recorded_ms} ms; trace "
                "records must arrive with non-decreasing sim time "
                "(did an event fire with a stale clock?)"
            )
        self.last_recorded_ms = at_ms

    def add_span(self, span: Span, *, at_ms: float | None = None) -> None:
        self._check_order(f"span for phone {span.phone_id!r}", at_ms)
        self.spans.append(span)

    def add_failure(
        self, record: FailureRecord, *, at_ms: float | None = None
    ) -> None:
        self._check_order(
            f"failure of phone {record.phone_id!r}",
            record.detected_at_ms if at_ms is None else at_ms,
        )
        self.failures.append(record)

    def add_completion(
        self, record: CompletionRecord, *, at_ms: float | None = None
    ) -> None:
        self._check_order(
            f"completion of job {record.job_id!r}",
            record.time_ms if at_ms is None else at_ms,
        )
        self.completions.append(record)

    def add_chaos(
        self, record: ChaosRecord, *, at_ms: float | None = None
    ) -> None:
        # Chaos records are ground truth registered at injection-plan
        # time, possibly long before the fault fires; their fault
        # timestamps are not arrival instants, so only an explicit
        # ``at_ms`` is order-checked.
        self._check_order(f"chaos {record.kind!r}", at_ms)
        self.chaos.append(record)

    def add_resilience_event(
        self, event: ResilienceEvent, *, at_ms: float | None = None
    ) -> None:
        self._check_order(
            f"resilience event {event.kind!r}",
            event.time_ms if at_ms is None else at_ms,
        )
        self.resilience_events.append(event)

    # -- queries -----------------------------------------------------------

    def phone_ids(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.phone_id, None)
        return tuple(seen)

    def spans_for(self, phone_id: str) -> tuple[Span, ...]:
        return tuple(s for s in self.spans if s.phone_id == phone_id)

    def finish_time_ms(self, phone_id: str) -> float:
        """When this phone's last span ended (0 if it never worked)."""
        return max((s.end_ms for s in self.spans_for(phone_id)), default=0.0)

    def makespan_ms(self) -> float:
        """Measured makespan: when the last phone finished."""
        return max((s.end_ms for s in self.spans), default=0.0)

    def original_makespan_ms(self) -> float:
        """Makespan of the *original* (non-rescheduled) work only."""
        return max(
            (s.end_ms for s in self.spans if not s.rescheduled), default=0.0
        )

    def reschedule_overhead_ms(self) -> float:
        """Extra time past the original makespan spent on re-scheduled work.

        The paper reports 113 s of overhead after the original makespan
        in the Fig. 12c failure run.
        """
        rescheduled_end = max(
            (s.end_ms for s in self.spans if s.rescheduled), default=0.0
        )
        return max(0.0, rescheduled_end - self.original_makespan_ms())

    def busy_ms(self, phone_id: str) -> float:
        return sum(s.duration_ms for s in self.spans_for(phone_id))

    def copy_ms(self, phone_id: str) -> float:
        return sum(
            s.duration_ms
            for s in self.spans_for(phone_id)
            if s.kind is SpanKind.COPY
        )

    def completed_kb(self, job_id: str) -> float:
        return sum(c.input_kb for c in self.completions if c.job_id == job_id)

    def completed_job_ids(self) -> frozenset[str]:
        return frozenset(c.job_id for c in self.completions)

    def resilience_events_of(self, kind: str) -> tuple[ResilienceEvent, ...]:
        """All resilience events of one kind, in recording order."""
        return tuple(e for e in self.resilience_events if e.kind == kind)

    def chaos_of(self, kind: str) -> tuple[ChaosRecord, ...]:
        """All injected faults of one kind, in recording order."""
        return tuple(c for c in self.chaos if c.kind == kind)

    def wasted_work_ms(self) -> float:
        """Time spent on work that produced no credited result.

        Interrupted spans (failures, timeouts, cancelled speculation
        losers) plus completed redundant spans — verification duplicates
        and speculative copies/executions — except the execution that
        actually won the race and was credited as the completion.
        """
        credited = {
            (c.phone_id, c.job_id, c.time_ms) for c in self.completions
        }
        wasted = sum(s.duration_ms for s in self.spans if s.interrupted)
        wasted += sum(
            s.duration_ms
            for s in self.spans
            if s.speculative
            and not s.interrupted
            and (s.phone_id, s.job_id, s.end_ms) not in credited
        )
        return wasted

    def rejoin_times_for(self, phone_id: str) -> tuple[float, ...]:
        """Instants at which this phone re-entered the fleet."""
        return tuple(
            e.time_ms
            for e in self.resilience_events
            if e.kind == "rejoin" and e.phone_id == phone_id
        )

    # -- serialisation -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe canonical form of every record stream.

        Every field is deterministic simulation output (no wall-clock
        values), so two byte-identical runs serialise to byte-identical
        dicts — the form the durability layer digests to prove
        crash-restore equivalence.
        """
        return {
            "spans": [
                {
                    "phone_id": s.phone_id,
                    "job_id": s.job_id,
                    "kind": s.kind.value,
                    "start_ms": s.start_ms,
                    "end_ms": s.end_ms,
                    "input_kb": s.input_kb,
                    "rescheduled": s.rescheduled,
                    "interrupted": s.interrupted,
                    "speculative": s.speculative,
                }
                for s in self.spans
            ],
            "failures": [
                {
                    "phone_id": f.phone_id,
                    "failed_at_ms": f.failed_at_ms,
                    "detected_at_ms": f.detected_at_ms,
                    "online": f.online,
                    "job_id": f.job_id,
                    "processed_kb": f.processed_kb,
                }
                for f in self.failures
            ],
            "completions": [
                {
                    "phone_id": c.phone_id,
                    "job_id": c.job_id,
                    "time_ms": c.time_ms,
                    "input_kb": c.input_kb,
                    "local_execution_ms": c.local_execution_ms,
                    "rescheduled": c.rescheduled,
                }
                for c in self.completions
            ],
            "chaos": [
                {
                    "kind": c.kind,
                    "phone_id": c.phone_id,
                    "time_ms": c.time_ms,
                    "detail": c.detail,
                }
                for c in self.chaos
            ],
            "resilience_events": [
                {
                    "kind": e.kind,
                    "phone_id": e.phone_id,
                    "time_ms": e.time_ms,
                    "job_id": e.job_id,
                    "detail": e.detail,
                }
                for e in self.resilience_events
            ],
        }
