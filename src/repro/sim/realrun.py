"""Execute a schedule for real: actual task code over actual data.

The event-driven :class:`~repro.sim.server.CentralServer` reproduces
*timing* (copy/execute/report cycles under the cost model); this module
reproduces *semantics*: it takes a :class:`~repro.core.schedule.Schedule`,
cuts the real input files into the partitions the scheduler decided,
runs each partition through its phone's sandbox (the reflection-loaded
executable), optionally interrupts executions mid-partition and
migrates the JavaGO-style checkpoint to another phone, and performs the
server-side logical aggregation.

Together the two runners cover the paper's full claim: the schedule is
fast (timing simulator) *and* the distributed computation returns
exactly the single-machine answer (this module — see
:func:`direct_results` for the reference computation).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

from ..core.schedule import Schedule
from ..runtime.executable import Finished, Suspended
from ..runtime.registry import TaskRegistry
from ..runtime.sandbox import PhoneSandbox
from ..workloads.datagen import split_text_by_kb

__all__ = ["Migration", "RealRunResult", "RealExecutionRunner", "direct_results"]


@dataclass(frozen=True)
class Migration:
    """One checkpointed partition moved between phones."""

    job_id: str
    from_phone: str
    to_phone: str
    items_processed_before: int


@dataclass
class RealRunResult:
    """Outcome of executing a schedule over real inputs."""

    results: dict[str, Any]
    partitions_per_phone: dict[str, int] = field(default_factory=dict)
    migrations: list[Migration] = field(default_factory=list)

    def result(self, job_id: str) -> Any:
        return self.results[job_id]


class RealExecutionRunner:
    """Runs schedules through per-phone sandboxes.

    Parameters
    ----------
    registry:
        Task registry shared by all phones (each phone gets its own
        :class:`~repro.runtime.sandbox.PhoneSandbox` over it, mirroring
        the identical APK the server ships everywhere).
    phone_ids:
        The fleet.  Phones not named by the schedule stay idle.
    """

    def __init__(self, registry: TaskRegistry, phone_ids) -> None:
        self._registry = registry
        self._sandboxes = {
            phone_id: PhoneSandbox(registry) for phone_id in phone_ids
        }
        if not self._sandboxes:
            raise ValueError("need at least one phone")

    @property
    def phone_ids(self) -> tuple[str, ...]:
        return tuple(self._sandboxes)

    def run(
        self,
        schedule: Schedule,
        inputs: Mapping[str, str],
        *,
        interrupt_after_items: Mapping[str, int] | None = None,
    ) -> RealRunResult:
        """Execute every partition and aggregate per job.

        ``inputs`` maps job ids to their raw (line-oriented) input
        content.  ``interrupt_after_items`` optionally interrupts the
        *first* partition of the named jobs after N items; the
        suspended state migrates to another phone and resumes there —
        the unplug-and-migrate path, executed for real.
        """
        interrupt_after_items = dict(interrupt_after_items or {})
        partials: dict[str, list[Any]] = {}
        counts = {phone_id: 0 for phone_id in self._sandboxes}
        migrations: list[Migration] = []

        by_job: dict[str, list] = {}
        for assignment in schedule:
            by_job.setdefault(assignment.job_id, []).append(assignment)

        for job_id, assignments in by_job.items():
            if job_id not in inputs:
                raise KeyError(f"no input content for job {job_id!r}")
            partitions = split_text_by_kb(
                inputs[job_id], [a.input_kb for a in assignments]
            )
            for index, (assignment, partition) in enumerate(
                zip(assignments, partitions)
            ):
                if assignment.phone_id not in self._sandboxes:
                    raise KeyError(
                        f"schedule names unknown phone {assignment.phone_id!r}"
                    )
                sandbox = self._sandboxes[assignment.phone_id]
                task = self._registry.get(assignment.task)
                items = list(task.items_from_text(partition))
                counts[assignment.phone_id] += 1

                cut = interrupt_after_items.pop(job_id, None) if index == 0 else None
                if cut is not None:
                    outcome = sandbox.execute(
                        assignment.task, items, max_items=cut
                    )
                    if isinstance(outcome, Suspended):
                        target = self._migration_target(assignment.phone_id)
                        migrations.append(
                            Migration(
                                job_id=job_id,
                                from_phone=assignment.phone_id,
                                to_phone=target,
                                items_processed_before=outcome.position,
                            )
                        )
                        counts[target] += 1
                        outcome = self._sandboxes[target].execute(
                            assignment.task, items, resume_from=outcome
                        )
                else:
                    outcome = sandbox.execute(assignment.task, items)

                assert isinstance(outcome, Finished)
                partials.setdefault(job_id, []).append(outcome.result)

        results = {
            job_id: self._registry.get(by_job[job_id][0].task).aggregate(parts)
            for job_id, parts in partials.items()
        }
        return RealRunResult(
            results=results,
            partitions_per_phone=counts,
            migrations=migrations,
        )

    def _migration_target(self, failed_phone: str) -> str:
        """Pick any other phone to resume on (least loaded by id order)."""
        for phone_id in self._sandboxes:
            if phone_id != failed_phone:
                return phone_id
        raise RuntimeError("no phone available to migrate to")


def direct_results(
    registry: TaskRegistry, jobs: Mapping[str, tuple[str, str]]
) -> dict[str, Any]:
    """Single-machine reference: run each job's input whole.

    ``jobs`` maps job id to ``(task_name, input_text)``.  Used to verify
    that the distributed execution is semantically exact.
    """
    sandbox = PhoneSandbox(registry)
    reference: dict[str, Any] = {}
    for job_id, (task_name, text) in jobs.items():
        outcome = sandbox.execute_text(task_name, text)
        assert isinstance(outcome, Finished)
        reference[job_id] = outcome.result
    return reference
