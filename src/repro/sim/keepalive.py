"""Keep-alive based offline-failure detection (Section 6).

The prototype keeps a persistent TCP connection per phone and layers
application keep-alive messages on top: the server probes every 30
seconds and marks a phone failed after 3 consecutive unanswered probes.
:class:`KeepAliveMonitor` reproduces this on the event loop: per phone
it schedules probes, counts misses against a liveness predicate, and
fires a detection callback when the miss budget is exhausted.
"""

from __future__ import annotations

from collections.abc import Callable

from .engine import EventLoop, EventToken

__all__ = ["KeepAliveMonitor", "DEFAULT_PERIOD_MS", "DEFAULT_TOLERATED_MISSES"]

#: The prototype's keep-alive period (30 s).
DEFAULT_PERIOD_MS = 30_000.0

#: Number of consecutive unanswered probes before a phone is marked failed.
DEFAULT_TOLERATED_MISSES = 3


class KeepAliveMonitor:
    """Probes one phone periodically; detects silent failures.

    Parameters
    ----------
    loop:
        The event loop to schedule probes on.
    phone_id:
        Which phone this monitor watches.
    is_responsive:
        Called at each probe instant; True means the phone answered.
    on_detect:
        Called once, with the detection time, when ``tolerated_misses``
        consecutive probes go unanswered.
    """

    def __init__(
        self,
        loop: EventLoop,
        phone_id: str,
        *,
        is_responsive: Callable[[], bool],
        on_detect: Callable[[float], None],
        period_ms: float = DEFAULT_PERIOD_MS,
        tolerated_misses: int = DEFAULT_TOLERATED_MISSES,
    ) -> None:
        if period_ms <= 0:
            raise ValueError(f"period_ms must be > 0, got {period_ms!r}")
        if tolerated_misses < 1:
            raise ValueError(
                f"tolerated_misses must be >= 1, got {tolerated_misses!r}"
            )
        self._loop = loop
        self._phone_id = phone_id
        self._is_responsive = is_responsive
        self._on_detect = on_detect
        self._period_ms = period_ms
        self._tolerated_misses = tolerated_misses
        self._misses = 0
        self._stopped = False
        self._token: EventToken | None = None

    @property
    def phone_id(self) -> str:
        return self._phone_id

    @property
    def consecutive_misses(self) -> int:
        return self._misses

    def start(self) -> None:
        """Schedule the first probe one period from now."""
        if self._stopped:
            raise RuntimeError(
                "monitor was stopped and cannot restart; call reset() first"
            )
        self._schedule_next()

    def stop(self) -> None:
        """Stop probing (phone finished its work or failure was handled)."""
        self._stopped = True
        if self._token is not None:
            self._token.cancel()
            self._token = None

    def reset(self) -> None:
        """Return a stopped (or mid-miss-count) monitor to its fresh state.

        A rejoined phone reuses its monitor: ``reset()`` then
        ``start()`` begins a clean probe cycle with a zero miss count.
        Any pending probe is cancelled first so a reset-while-running
        monitor does not double-probe.
        """
        if self._token is not None:
            self._token.cancel()
            self._token = None
        self._stopped = False
        self._misses = 0

    def worst_case_detection_ms(self) -> float:
        """Upper bound on detection latency after a silent failure."""
        return self._period_ms * (self._tolerated_misses + 1)

    def state(self) -> dict:
        """JSON-safe snapshot of the monitor's dynamic state.

        Captures the miss count, stop flag, and next probe instant —
        what the durability layer folds into the server state digest so
        a replayed restore proves its probe cycle matches the original.
        """
        return {
            "phone_id": self._phone_id,
            "misses": self._misses,
            "stopped": self._stopped,
            "next_probe_ms": (
                None
                if self._token is None or self._token.cancelled
                else self._token.time_ms
            ),
        }

    def _schedule_next(self) -> None:
        self._token = self._loop.schedule_after(self._period_ms, self._probe)

    def _probe(self) -> None:
        if self._stopped:
            return
        if self._is_responsive():
            self._misses = 0
            self._schedule_next()
            return
        self._misses += 1
        if self._misses >= self._tolerated_misses:
            self._stopped = True
            self._on_detect(self._loop.now_ms)
            return
        self._schedule_next()
