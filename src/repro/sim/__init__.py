"""Discrete-event simulation substrate for CWC.

This package replaces the paper's physical testbed: an event loop
(:class:`EventLoop`), ground-truth phone runtimes
(:class:`FleetGroundTruth`, :class:`PhoneRuntime`), keep-alive failure
detection (:class:`KeepAliveMonitor`), failure injection
(:class:`FailurePlan`, :class:`RandomUnplugModel`), composable chaos
injection (:class:`ChaosPlan`, :class:`ChaosMonkey`), the resilience
policy knobs (:class:`ResiliencePolicy`), and the central server
orchestration (:class:`CentralServer`) that dispatches schedules,
collects completions, refines predictions, migrates failed work, and —
when hardened — detects stragglers, speculates, retries timeouts, and
verifies results.
"""

from .campaign import (
    CAMPAIGN_SNAPSHOT_KIND,
    CampaignResult,
    ContinuousCampaign,
    ContinuousCampaignResult,
    ContinuousNightRecord,
    NightRecord,
    OvernightCampaign,
    capacity_planning_report,
    merge_campaign_metrics,
)
from .churn import ChurnEvent, FleetChurnModel, unplug_profile_from_logs
from .chaos import (
    BandwidthDegradation,
    ChaosMonkey,
    ChaosPlan,
    CpuSlowdown,
    ResiliencePolicy,
    ResultCorruption,
    TaskCrash,
)
from .engine import EventLoop, EventToken, SimulationError
from .entities import FleetGroundTruth, PhoneRuntime, PhoneState
from .failures import FailurePlan, PlannedFailure, RandomUnplugModel
from .keepalive import (
    DEFAULT_PERIOD_MS,
    DEFAULT_TOLERATED_MISSES,
    KeepAliveMonitor,
)
from .metrics import (
    PhoneUtilisation,
    ResilienceReport,
    RunMetrics,
    compute_resilience_report,
    compute_run_metrics,
)
from .realrun import (
    Migration,
    RealExecutionRunner,
    RealRunResult,
    direct_results,
)
from .server import CentralServer, RoundRecord, RunResult
from .validation import TraceInvariantError, check_run_invariants
from .trace import (
    ChaosRecord,
    CompletionRecord,
    FailureRecord,
    ResilienceEvent,
    Span,
    SpanKind,
    TimelineTrace,
    TraceOrderError,
)

__all__ = [
    "DEFAULT_PERIOD_MS",
    "DEFAULT_TOLERATED_MISSES",
    "BandwidthDegradation",
    "CAMPAIGN_SNAPSHOT_KIND",
    "CampaignResult",
    "ChurnEvent",
    "ContinuousCampaign",
    "ContinuousCampaignResult",
    "ContinuousNightRecord",
    "FleetChurnModel",
    "capacity_planning_report",
    "unplug_profile_from_logs",
    "merge_campaign_metrics",
    "CentralServer",
    "ChaosMonkey",
    "ChaosPlan",
    "ChaosRecord",
    "CompletionRecord",
    "CpuSlowdown",
    "EventLoop",
    "EventToken",
    "FailurePlan",
    "FailureRecord",
    "FleetGroundTruth",
    "KeepAliveMonitor",
    "Migration",
    "PhoneUtilisation",
    "ResilienceEvent",
    "ResiliencePolicy",
    "ResilienceReport",
    "ResultCorruption",
    "RunMetrics",
    "compute_resilience_report",
    "compute_run_metrics",
    "RealExecutionRunner",
    "RealRunResult",
    "direct_results",
    "PhoneRuntime",
    "PhoneState",
    "PlannedFailure",
    "RandomUnplugModel",
    "RoundRecord",
    "NightRecord",
    "OvernightCampaign",
    "RunResult",
    "SimulationError",
    "Span",
    "SpanKind",
    "TaskCrash",
    "TimelineTrace",
    "TraceOrderError",
    "TraceInvariantError",
    "check_run_invariants",
]
