"""Discrete-event simulation substrate for CWC.

This package replaces the paper's physical testbed: an event loop
(:class:`EventLoop`), ground-truth phone runtimes
(:class:`FleetGroundTruth`, :class:`PhoneRuntime`), keep-alive failure
detection (:class:`KeepAliveMonitor`), failure injection
(:class:`FailurePlan`, :class:`RandomUnplugModel`), and the central
server orchestration (:class:`CentralServer`) that dispatches schedules,
collects completions, refines predictions, and migrates failed work.
"""

from .campaign import CampaignResult, NightRecord, OvernightCampaign
from .engine import EventLoop, EventToken, SimulationError
from .entities import FleetGroundTruth, PhoneRuntime, PhoneState
from .failures import FailurePlan, PlannedFailure, RandomUnplugModel
from .keepalive import (
    DEFAULT_PERIOD_MS,
    DEFAULT_TOLERATED_MISSES,
    KeepAliveMonitor,
)
from .metrics import PhoneUtilisation, RunMetrics, compute_run_metrics
from .realrun import (
    Migration,
    RealExecutionRunner,
    RealRunResult,
    direct_results,
)
from .server import CentralServer, RoundRecord, RunResult
from .validation import TraceInvariantError, check_run_invariants
from .trace import (
    CompletionRecord,
    FailureRecord,
    Span,
    SpanKind,
    TimelineTrace,
)

__all__ = [
    "DEFAULT_PERIOD_MS",
    "DEFAULT_TOLERATED_MISSES",
    "CampaignResult",
    "CentralServer",
    "CompletionRecord",
    "EventLoop",
    "EventToken",
    "FailurePlan",
    "FailureRecord",
    "FleetGroundTruth",
    "KeepAliveMonitor",
    "Migration",
    "PhoneUtilisation",
    "RunMetrics",
    "compute_run_metrics",
    "RealExecutionRunner",
    "RealRunResult",
    "direct_results",
    "PhoneRuntime",
    "PhoneState",
    "PlannedFailure",
    "RandomUnplugModel",
    "RoundRecord",
    "NightRecord",
    "OvernightCampaign",
    "RunResult",
    "SimulationError",
    "Span",
    "SpanKind",
    "TimelineTrace",
    "TraceInvariantError",
    "check_run_invariants",
]
