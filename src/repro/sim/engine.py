"""A small discrete-event engine driving all CWC simulations.

The engine is a classic calendar queue: events are ``(time, seq)``
ordered callbacks on a binary heap.  Everything in :mod:`repro.sim` —
copy pipelines, task execution, keep-alive probes, unplug events —
is expressed as events on one :class:`EventLoop`.

The loop is deterministic: ties in time are broken by scheduling order,
so two runs with the same inputs produce identical traces.
"""

from __future__ import annotations

import heapq
import itertools
import math
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["EventLoop", "EventToken", "SimulationError"]


class SimulationError(Exception):
    """Raised for invalid uses of the event loop (e.g. scheduling in the past)."""


@dataclass(order=True)
class _Entry:
    time_ms: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventToken:
    """Handle returned by ``schedule_*``; lets the holder cancel the event."""

    __slots__ = ("_entry",)

    def __init__(self, entry: _Entry) -> None:
        self._entry = entry

    @property
    def time_ms(self) -> float:
        return self._entry.time_ms

    @property
    def cancelled(self) -> bool:
        return self._entry.cancelled

    def cancel(self) -> None:
        self._entry.cancelled = True


class EventLoop:
    """Deterministic discrete-event scheduler.

    Examples
    --------
    >>> loop = EventLoop()
    >>> fired = []
    >>> _ = loop.schedule_after(10.0, lambda: fired.append(loop.now_ms))
    >>> loop.run()
    >>> fired
    [10.0]
    """

    def __init__(self, *, start_ms: float = 0.0, telemetry=None) -> None:
        self._now = start_ms
        self._heap: list[_Entry] = []
        self._seq = itertools.count()
        self._running = False
        #: Optional repro.obs Telemetry facade.  The hot dispatch loop
        #: never touches it — run() counts locally and flushes the
        #: totals to the registry once per run() call.
        self._telemetry = telemetry

    @property
    def now_ms(self) -> float:
        """Current simulation time in milliseconds."""
        return self._now

    def schedule_at(self, time_ms: float, action: Callable[[], None]) -> EventToken:
        """Schedule ``action`` to fire at absolute time ``time_ms``."""
        if not math.isfinite(time_ms):
            raise SimulationError(f"event time must be finite, got {time_ms!r}")
        if time_ms < self._now:
            raise SimulationError(
                f"cannot schedule in the past: {time_ms} < now {self._now}"
            )
        entry = _Entry(time_ms=time_ms, seq=next(self._seq), action=action)
        heapq.heappush(self._heap, entry)
        return EventToken(entry)

    def schedule_after(self, delay_ms: float, action: Callable[[], None]) -> EventToken:
        """Schedule ``action`` to fire ``delay_ms`` from now."""
        if delay_ms < 0:
            raise SimulationError(f"delay must be >= 0, got {delay_ms!r}")
        return self.schedule_at(self._now + delay_ms, action)

    def run(self, until_ms: float | None = None) -> None:
        """Dispatch events in time order.

        Stops when the queue is empty, or once the next event lies past
        ``until_ms`` (the clock is then advanced exactly to ``until_ms``).
        Re-entrant calls are rejected — an event's action must not call
        :meth:`run`.
        """
        if self._running:
            raise SimulationError("event loop is already running")
        self._running = True
        dispatched = 0
        cancelled = 0
        try:
            while self._heap:
                entry = self._heap[0]
                if until_ms is not None and entry.time_ms > until_ms:
                    self._now = max(self._now, until_ms)
                    return
                heapq.heappop(self._heap)
                if entry.cancelled:
                    cancelled += 1
                    continue
                self._now = entry.time_ms
                dispatched += 1
                entry.action()
            if until_ms is not None:
                self._now = max(self._now, until_ms)
        finally:
            self._running = False
            tel = self._telemetry
            if tel is not None and tel.enabled:
                tel.inc("engine_events_dispatched_total", float(dispatched))
                tel.inc("engine_events_cancelled_total", float(cancelled))

    def pending_events(self) -> int:
        """Number of not-yet-fired, not-cancelled events."""
        return sum(1 for entry in self._heap if not entry.cancelled)

    def pending_signature(self) -> tuple[tuple[float, int], ...]:
        """The live heap as sorted ``(time_ms, seq)`` pairs.

        Actions are closures and cannot serialise, but their timing
        skeleton can: two runs whose loops hold the same signature at
        the same instant will dispatch the remaining events in the same
        order.  The durability layer folds this into its state digest
        to verify replay-based restores against their snapshots.
        """
        return tuple(
            sorted(
                (entry.time_ms, entry.seq)
                for entry in self._heap
                if not entry.cancelled
            )
        )
