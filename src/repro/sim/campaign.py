"""Multi-night campaigns: CWC as an ongoing service.

The paper evaluates single runs; an enterprise would operate CWC every
night — re-measuring bandwidth before scheduling (Section 3.1's
periodic measurement), carrying the runtime predictor's learned
estimates forward (Section 4.1), sampling that night's unplug failures
from the charging-behaviour profiles (Figure 3), and rolling any work
that could not finish into the next night's queue.

:class:`OvernightCampaign` packages that loop.  It is the substrate for
longitudinal questions the paper only gestures at: how fast prediction
error decays across nights, how much nightly capacity failures cost,
and whether a backlog ever builds up.

Within one campaign the nights are strictly sequential (the predictor's
learning and the backlog flow forward), but *across* campaigns — seed
sweeps, sensitivity studies, fleet-scale benchmarks — every run is
independent.  :func:`run_campaign_sweep` and the generic
:func:`parallel_map` fan those independent runs out over worker
processes, falling back to in-process execution whenever a process pool
is unavailable (restricted sandboxes, unpicklable factories); the
results are identical either way, parallelism is purely a wall-clock
optimisation.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from ..core.model import Job
from ..core.prediction import RuntimePredictor
from ..netmodel.measurement import measure_fleet
from ..obs.registry import MetricsRegistry
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from .entities import FleetGroundTruth
from .failures import FailurePlan, RandomUnplugModel
from .server import CentralServer

__all__ = [
    "NightRecord",
    "CampaignResult",
    "OvernightCampaign",
    "merge_campaign_metrics",
    "parallel_map",
    "run_campaign_sweep",
]


@dataclass(frozen=True)
class NightRecord:
    """Summary of one simulated night."""

    night_index: int
    jobs_submitted: int
    jobs_carried_over: int
    predicted_makespan_ms: float
    measured_makespan_ms: float
    failures: int
    reschedule_overhead_ms: float
    unfinished: int

    @property
    def prediction_error(self) -> float:
        """Relative |predicted - measured| for the night's first round."""
        if self.measured_makespan_ms == 0:
            return 0.0
        return (
            abs(self.predicted_makespan_ms - self.measured_makespan_ms)
            / self.measured_makespan_ms
        )


@dataclass
class CampaignResult:
    nights: list[NightRecord]
    final_backlog: tuple[Job, ...]
    #: Merged metrics-registry snapshot across every night's telemetry
    #: (:meth:`~repro.obs.registry.MetricsRegistry.to_dict` form — a
    #: plain dict so results pickle cleanly through worker pools).
    #: None when the campaign ran without telemetry.
    metrics: dict | None = None

    @property
    def total_failures(self) -> int:
        return sum(night.failures for night in self.nights)

    def prediction_errors(self) -> list[float]:
        return [night.prediction_error for night in self.nights]


class OvernightCampaign:
    """Runs CWC night after night over the same fleet.

    Parameters
    ----------
    phones / links:
        The fleet and its wireless links (bandwidth is re-measured
        before every night's scheduling).
    truth:
        Ground-truth execution rates — fixed across nights; this is
        what the persistent predictor converges to.
    predictor:
        Carried across nights; its learned (phone, task) estimates are
        the campaign's memory.
    scheduler:
        Any :class:`~repro.core.greedy.Scheduler`.  A
        :class:`~repro.core.greedy.CwcScheduler` may select its packing
        backend via ``kernel=`` ('auto'/'python'/'numpy' — schedules
        are byte-identical either way) and remains picklable, so
        kernel-configured campaigns still fan out across worker
        processes in :func:`run_campaign_sweep`.
    unplug_model:
        Samples each night's failure plan (None = failure-free nights).
    window_start_hour / window_hours:
        The nightly charging window in local time.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` facade for the
        whole campaign.  Each night runs under its own child facade
        (the sim clock restarts at zero every night, so nights cannot
        share one event bus); after the night its registry is merged
        into the campaign facade's registry and a ``night_end`` summary
        event is emitted on the campaign bus at the night's wall
        position (``night_index × 24 h``).
    """

    def __init__(
        self,
        phones,
        links,
        truth: FleetGroundTruth,
        predictor: RuntimePredictor,
        scheduler,
        *,
        unplug_model: RandomUnplugModel | None = None,
        measurement_scheduler=None,
        window_start_hour: float = 0.0,
        window_hours: float = 6.0,
        seed: int = 0,
        telemetry: Telemetry | None = None,
    ) -> None:
        if window_hours <= 0:
            raise ValueError("window_hours must be > 0")
        self._phones = tuple(phones)
        self._links = dict(links)
        self._truth = truth
        self._predictor = predictor
        self._scheduler = scheduler
        self._unplug_model = unplug_model
        #: Optional adaptive re-measurement policy
        #: (:class:`~repro.netmodel.scheduler.MeasurementScheduler`);
        #: None re-measures every link every night.
        self._measurement_scheduler = measurement_scheduler
        self._start_hour = window_start_hour
        self._window_hours = window_hours
        self._rng = random.Random(seed)
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY

    def run(self, nightly_jobs: Sequence[Sequence[Job]]) -> CampaignResult:
        """Simulate one night per entry of ``nightly_jobs``.

        Work unfinished at the end of a night (all assigned phones
        failed, or the round cap was hit) joins the next night's queue;
        whatever remains after the last night is the final backlog.
        """
        if not nightly_jobs:
            raise ValueError("need at least one night of jobs")
        records: list[NightRecord] = []
        backlog: tuple[Job, ...] = ()

        for night_index, new_jobs in enumerate(nightly_jobs):
            jobs = backlog + tuple(new_jobs)
            if not jobs:
                records.append(
                    NightRecord(
                        night_index=night_index,
                        jobs_submitted=0,
                        jobs_carried_over=len(backlog),
                        predicted_makespan_ms=0.0,
                        measured_makespan_ms=0.0,
                        failures=0,
                        reschedule_overhead_ms=0.0,
                        unfinished=0,
                    )
                )
                backlog = ()
                continue

            if self._measurement_scheduler is not None:
                now_ms = night_index * 24.0 * 3_600_000.0
                b = self._measurement_scheduler.measure_due(
                    self._links, now_ms
                )
            else:
                b = measure_fleet(self._links)
            plan = FailurePlan.none()
            if self._unplug_model is not None:
                plan = self._unplug_model.sample_plan(
                    [phone.phone_id for phone in self._phones],
                    start_hour=self._start_hour,
                    duration_hours=self._window_hours,
                    rng=self._rng,
                )
            night_tel: Telemetry | None = None
            if self._tel.enabled:
                night_tel = Telemetry.create(
                    run_id=f"{self._tel.run_id}-night{night_index}"
                )
            server = CentralServer(
                self._phones,
                self._truth,
                self._predictor,
                self._scheduler,
                b,
                failure_plan=plan,
                telemetry=night_tel,
            )
            result = server.run(jobs)
            backlog = result.unfinished_jobs
            record = NightRecord(
                night_index=night_index,
                jobs_submitted=len(new_jobs),
                jobs_carried_over=len(jobs) - len(new_jobs),
                predicted_makespan_ms=result.predicted_makespan_ms,
                measured_makespan_ms=result.measured_makespan_ms,
                failures=len(result.trace.failures),
                reschedule_overhead_ms=result.reschedule_overhead_ms,
                unfinished=len(result.unfinished_jobs),
            )
            records.append(record)
            if night_tel is not None:
                self._merge_night(night_index, night_tel, record)

        metrics = (
            self._tel.registry.to_dict() if self._tel.enabled else None
        )
        return CampaignResult(
            nights=records, final_backlog=backlog, metrics=metrics
        )

    def _merge_night(
        self, night_index: int, night_tel: Telemetry, record: NightRecord
    ) -> None:
        """Fold one night's telemetry into the campaign facade."""
        tel = self._tel
        assert tel.registry is not None and night_tel.registry is not None
        tel.registry.merge(night_tel.registry)
        tel.inc("campaign_nights_total")
        tel.event(
            "campaign",
            "night_end",
            sim_time_ms=night_index * 24.0 * 3_600_000.0,
            night_index=night_index,
            jobs_submitted=record.jobs_submitted,
            jobs_carried_over=record.jobs_carried_over,
            measured_makespan_ms=record.measured_makespan_ms,
            predicted_makespan_ms=record.predicted_makespan_ms,
            failures=record.failures,
            unfinished=record.unfinished,
            events=len(night_tel.bus.events)
            if night_tel.bus is not None
            else 0,
        )


def merge_campaign_metrics(
    results: Sequence[CampaignResult],
) -> MetricsRegistry:
    """Merge the metric snapshots of several campaigns into one registry.

    The per-worker merging step of a telemetry-enabled sweep: each
    worker process ships its campaign's counters home as a plain dict
    (:attr:`CampaignResult.metrics`); this folds them together with
    :meth:`~repro.obs.registry.MetricsRegistry.merge_dict` (counters
    and histograms add, gauges last-write-wins).  Campaigns without
    telemetry contribute nothing.
    """
    merged = MetricsRegistry()
    for result in results:
        if result.metrics:
            merged.merge_dict(result.metrics)
    return merged


def parallel_map(
    fn: Callable,
    inputs: Sequence,
    *,
    max_workers: int | None = None,
    parallel: bool = True,
):
    """Apply ``fn`` to every input, across worker processes when possible.

    ``fn`` must be a module-level (picklable) callable and each call
    must be independent of the others — exactly the shape of a seed
    sweep or a fleet-size sweep.  Results come back in input order.

    Process pools are an optimisation, never a requirement: if the pool
    cannot be created (sandboxes without POSIX semaphores), a worker
    dies, or ``fn``/its arguments refuse to pickle, the remaining work
    runs serially in-process.  Callers therefore get identical results
    on any platform, just with different wall-clock times.
    """
    inputs = list(inputs)
    if not parallel or len(inputs) <= 1:
        return [fn(arg) for arg in inputs]
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(fn, arg) for arg in inputs]
            return [future.result() for future in futures]
    except Exception:
        # Pool creation, pickling, or a worker failed; the computation
        # itself may still be fine — retry serially from scratch.
        return [fn(arg) for arg in inputs]


def _run_sweep_entry(entry):
    factory, seed, nightly_jobs = entry
    return seed, factory(seed).run(nightly_jobs)


def run_campaign_sweep(
    campaign_factory: Callable[[int], OvernightCampaign],
    nightly_jobs: Sequence[Sequence[Job]],
    seeds: Sequence[int],
    *,
    max_workers: int | None = None,
    parallel: bool = True,
) -> dict[int, CampaignResult]:
    """Run one independent campaign per seed, in parallel when possible.

    ``campaign_factory(seed)`` must build a *fresh* campaign — its own
    predictor, ground truth, and scheduler — so runs share no mutable
    state and the sweep is embarrassingly parallel.  The factory must be
    a module-level callable for the process-pool path to engage;
    anything else silently degrades to the serial path.

    Returns ``{seed: CampaignResult}``; identical regardless of whether
    worker processes were actually used.
    """
    entries = [(campaign_factory, seed, nightly_jobs) for seed in seeds]
    results = parallel_map(
        _run_sweep_entry, entries, max_workers=max_workers, parallel=parallel
    )
    return dict(results)
