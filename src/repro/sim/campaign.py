"""Multi-night campaigns: CWC as an ongoing service.

The paper evaluates single runs; an enterprise would operate CWC every
night — re-measuring bandwidth before scheduling (Section 3.1's
periodic measurement), carrying the runtime predictor's learned
estimates forward (Section 4.1), sampling that night's unplug failures
from the charging-behaviour profiles (Figure 3), and rolling any work
that could not finish into the next night's queue.

:class:`OvernightCampaign` packages that loop.  It is the substrate for
longitudinal questions the paper only gestures at: how fast prediction
error decays across nights, how much nightly capacity failures cost,
and whether a backlog ever builds up.

Within one campaign the nights are strictly sequential (the predictor's
learning and the backlog flow forward), but *across* campaigns — seed
sweeps, sensitivity studies, fleet-scale benchmarks — every run is
independent.  :func:`run_campaign_sweep` and the generic
:func:`parallel_map` fan those independent runs out over worker
processes, falling back to in-process execution whenever a process pool
is unavailable (restricted sandboxes, unpicklable factories); the
results are identical either way, parallelism is purely a wall-clock
optimisation.
"""

from __future__ import annotations

import dataclasses
import random
from collections.abc import Callable, Sequence
from dataclasses import dataclass
from pathlib import Path

from ..core.model import Job, PhoneSpec
from ..core.prediction import RuntimePredictor
from ..core.serialize import (
    job_from_dict,
    job_to_dict,
    phone_from_dict,
    phone_to_dict,
)
from ..durability.snapshot import (
    SnapshotStore,
    rng_state_from_json,
    rng_state_to_json,
    stable_seed,
)
from ..netmodel.links import WirelessLink
from ..netmodel.measurement import measure_fleet
from ..obs.registry import MetricsRegistry
from ..obs.telemetry import NULL_TELEMETRY, Telemetry
from ..workloads.arrivals import PoissonArrivalStream
from .churn import FleetChurnModel
from .entities import FleetGroundTruth
from .failures import FailurePlan, RandomUnplugModel
from .server import CentralServer

__all__ = [
    "CAMPAIGN_SNAPSHOT_KIND",
    "NightRecord",
    "CampaignResult",
    "ContinuousCampaign",
    "ContinuousCampaignResult",
    "ContinuousNightRecord",
    "OvernightCampaign",
    "capacity_planning_report",
    "merge_campaign_metrics",
    "parallel_map",
    "run_campaign_sweep",
]

MS_PER_DAY = 24.0 * 3_600_000.0

#: Snapshot kind for night-boundary campaign checkpoints.
CAMPAIGN_SNAPSHOT_KIND = "campaign-night"


@dataclass(frozen=True)
class NightRecord:
    """Summary of one simulated night."""

    night_index: int
    jobs_submitted: int
    jobs_carried_over: int
    predicted_makespan_ms: float
    measured_makespan_ms: float
    failures: int
    reschedule_overhead_ms: float
    unfinished: int

    @property
    def prediction_error(self) -> float:
        """Relative |predicted - measured| for the night's first round."""
        if self.measured_makespan_ms == 0:
            return 0.0
        return (
            abs(self.predicted_makespan_ms - self.measured_makespan_ms)
            / self.measured_makespan_ms
        )


@dataclass
class CampaignResult:
    nights: list[NightRecord]
    final_backlog: tuple[Job, ...]
    #: Merged metrics-registry snapshot across every night's telemetry
    #: (:meth:`~repro.obs.registry.MetricsRegistry.to_dict` form — a
    #: plain dict so results pickle cleanly through worker pools).
    #: None when the campaign ran without telemetry.
    metrics: dict | None = None

    @property
    def total_failures(self) -> int:
        return sum(night.failures for night in self.nights)

    def prediction_errors(self) -> list[float]:
        return [night.prediction_error for night in self.nights]


class OvernightCampaign:
    """Runs CWC night after night over the same fleet.

    Parameters
    ----------
    phones / links:
        The fleet and its wireless links (bandwidth is re-measured
        before every night's scheduling).
    truth:
        Ground-truth execution rates — fixed across nights; this is
        what the persistent predictor converges to.
    predictor:
        Carried across nights; its learned (phone, task) estimates are
        the campaign's memory.
    scheduler:
        Any :class:`~repro.core.greedy.Scheduler`.  A
        :class:`~repro.core.greedy.CwcScheduler` may select its packing
        backend via ``kernel=`` ('auto'/'python'/'numpy' — schedules
        are byte-identical either way) and remains picklable, so
        kernel-configured campaigns still fan out across worker
        processes in :func:`run_campaign_sweep`.
    unplug_model:
        Samples each night's failure plan (None = failure-free nights).
    window_start_hour / window_hours:
        The nightly charging window in local time.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` facade for the
        whole campaign.  Each night runs under its own child facade
        (the sim clock restarts at zero every night, so nights cannot
        share one event bus); after the night its registry is merged
        into the campaign facade's registry and a ``night_end`` summary
        event is emitted on the campaign bus at the night's wall
        position (``night_index × 24 h``).
    """

    def __init__(
        self,
        phones,
        links,
        truth: FleetGroundTruth,
        predictor: RuntimePredictor,
        scheduler,
        *,
        unplug_model: RandomUnplugModel | None = None,
        measurement_scheduler=None,
        window_start_hour: float = 0.0,
        window_hours: float = 6.0,
        seed: int = 0,
        telemetry: Telemetry | None = None,
    ) -> None:
        if window_hours <= 0:
            raise ValueError("window_hours must be > 0")
        self._phones = tuple(phones)
        self._links = dict(links)
        self._truth = truth
        self._predictor = predictor
        self._scheduler = scheduler
        self._unplug_model = unplug_model
        #: Optional adaptive re-measurement policy
        #: (:class:`~repro.netmodel.scheduler.MeasurementScheduler`);
        #: None re-measures every link every night.
        self._measurement_scheduler = measurement_scheduler
        self._start_hour = window_start_hour
        self._window_hours = window_hours
        self._rng = random.Random(seed)
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY

    def run(self, nightly_jobs: Sequence[Sequence[Job]]) -> CampaignResult:
        """Simulate one night per entry of ``nightly_jobs``.

        Work unfinished at the end of a night (all assigned phones
        failed, or the round cap was hit) joins the next night's queue;
        whatever remains after the last night is the final backlog.
        """
        if not nightly_jobs:
            raise ValueError("need at least one night of jobs")
        records: list[NightRecord] = []
        backlog: tuple[Job, ...] = ()

        for night_index, new_jobs in enumerate(nightly_jobs):
            jobs = backlog + tuple(new_jobs)
            if not jobs:
                records.append(
                    NightRecord(
                        night_index=night_index,
                        jobs_submitted=0,
                        jobs_carried_over=len(backlog),
                        predicted_makespan_ms=0.0,
                        measured_makespan_ms=0.0,
                        failures=0,
                        reschedule_overhead_ms=0.0,
                        unfinished=0,
                    )
                )
                backlog = ()
                continue

            if self._measurement_scheduler is not None:
                now_ms = night_index * 24.0 * 3_600_000.0
                b = self._measurement_scheduler.measure_due(
                    self._links, now_ms
                )
            else:
                b = measure_fleet(self._links)
            plan = FailurePlan.none()
            if self._unplug_model is not None:
                plan = self._unplug_model.sample_plan(
                    [phone.phone_id for phone in self._phones],
                    start_hour=self._start_hour,
                    duration_hours=self._window_hours,
                    rng=self._rng,
                )
            night_tel: Telemetry | None = None
            tracer = self._tel.tracer if self._tel.enabled else None
            if self._tel.enabled:
                # The night's tracer mirrors the campaign's arming: its
                # spans are adopted under the campaign-side night span
                # below, so one flight recorder covers every night.
                night_tel = Telemetry.create(
                    run_id=f"{self._tel.run_id}-night{night_index}",
                    tracing=tracer is not None,
                )
            server = CentralServer(
                self._phones,
                self._truth,
                self._predictor,
                self._scheduler,
                b,
                failure_plan=plan,
                telemetry=night_tel,
            )
            if tracer is not None:
                assert night_tel is not None and night_tel.tracer is not None
                with tracer.span(
                    "night",
                    category="campaign",
                    night_index=night_index,
                    jobs=len(jobs),
                ) as night_span:
                    result = server.run(jobs)
                    tracer.adopt(
                        night_tel.tracer.drain_dicts(), parent=night_span
                    )
            else:
                result = server.run(jobs)
            backlog = result.unfinished_jobs
            record = NightRecord(
                night_index=night_index,
                jobs_submitted=len(new_jobs),
                jobs_carried_over=len(jobs) - len(new_jobs),
                predicted_makespan_ms=result.predicted_makespan_ms,
                measured_makespan_ms=result.measured_makespan_ms,
                failures=len(result.trace.failures),
                reschedule_overhead_ms=result.reschedule_overhead_ms,
                unfinished=len(result.unfinished_jobs),
            )
            records.append(record)
            if night_tel is not None:
                self._merge_night(night_index, night_tel, record)

        metrics = (
            self._tel.registry.to_dict() if self._tel.enabled else None
        )
        return CampaignResult(
            nights=records, final_backlog=backlog, metrics=metrics
        )

    def _merge_night(
        self, night_index: int, night_tel: Telemetry, record: NightRecord
    ) -> None:
        """Fold one night's telemetry into the campaign facade."""
        tel = self._tel
        assert tel.registry is not None and night_tel.registry is not None
        tel.registry.merge(night_tel.registry)
        tel.inc("campaign_nights_total")
        tel.event(
            "campaign",
            "night_end",
            sim_time_ms=night_index * 24.0 * 3_600_000.0,
            night_index=night_index,
            jobs_submitted=record.jobs_submitted,
            jobs_carried_over=record.jobs_carried_over,
            measured_makespan_ms=record.measured_makespan_ms,
            predicted_makespan_ms=record.predicted_makespan_ms,
            failures=record.failures,
            unfinished=record.unfinished,
            events=len(night_tel.bus.events)
            if night_tel.bus is not None
            else 0,
        )


@dataclass(frozen=True)
class ContinuousNightRecord:
    """Summary of one night of continuous operation."""

    night_index: int
    fleet_size: int
    joined: int
    departed: int
    jobs_submitted: int
    jobs_carried_over: int
    arrivals_in_window: int
    arrivals_deferred: int
    #: Jobs that entered the night's server and finished (job-level).
    jobs_completed: int
    #: Partition-completion records in the night's trace.
    completions: int
    failures: int
    predicted_makespan_ms: float
    measured_makespan_ms: float
    unfinished: int
    idle: bool = False

    @property
    def prediction_error(self) -> float:
        if self.measured_makespan_ms == 0:
            return 0.0
        return (
            abs(self.predicted_makespan_ms - self.measured_makespan_ms)
            / self.measured_makespan_ms
        )

    def to_dict(self) -> dict:
        return {
            "night_index": self.night_index,
            "fleet_size": self.fleet_size,
            "joined": self.joined,
            "departed": self.departed,
            "jobs_submitted": self.jobs_submitted,
            "jobs_carried_over": self.jobs_carried_over,
            "arrivals_in_window": self.arrivals_in_window,
            "arrivals_deferred": self.arrivals_deferred,
            "jobs_completed": self.jobs_completed,
            "completions": self.completions,
            "failures": self.failures,
            "predicted_makespan_ms": self.predicted_makespan_ms,
            "measured_makespan_ms": self.measured_makespan_ms,
            "unfinished": self.unfinished,
            "idle": self.idle,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ContinuousNightRecord":
        return cls(**{f.name: data[f.name] for f in dataclasses.fields(cls)})


@dataclass
class ContinuousCampaignResult:
    """Outcome of a (possibly resumed) continuous campaign."""

    nights: list[ContinuousNightRecord]
    final_backlog: tuple[Job, ...]
    #: Arrivals stamped past the last simulated window, still queued.
    pending_arrivals: int = 0
    #: Night index the run resumed from, None for a fresh run.
    resumed_from_night: int | None = None
    checkpoints: int = 0

    @property
    def total_submitted(self) -> int:
        return sum(n.jobs_submitted for n in self.nights)

    @property
    def total_jobs_completed(self) -> int:
        return sum(n.jobs_completed for n in self.nights)

    @property
    def total_completions(self) -> int:
        return sum(n.completions for n in self.nights)

    @property
    def total_failures(self) -> int:
        return sum(n.failures for n in self.nights)

    @property
    def peak_carryover(self) -> int:
        return max((n.jobs_carried_over for n in self.nights), default=0)

    def to_dict(self) -> dict:
        return {
            "nights": [n.to_dict() for n in self.nights],
            "final_backlog": [job.job_id for job in self.final_backlog],
            "pending_arrivals": self.pending_arrivals,
            "resumed_from_night": self.resumed_from_night,
            "checkpoints": self.checkpoints,
            "total_submitted": self.total_submitted,
            "total_jobs_completed": self.total_jobs_completed,
            "total_completions": self.total_completions,
            "total_failures": self.total_failures,
        }


def capacity_planning_report(
    result: ContinuousCampaignResult, *, window_hours: float
) -> dict:
    """Can this fleet absorb this workload night after night?

    Per night: window utilisation (makespan over the charging window)
    and the backlog flow.  Aggregate: throughput, mean utilisation, and
    a ``keeps_up`` verdict — the backlog must not grow across the
    campaign (the enterprise question: do we have enough phones, or do
    jobs pile up faster than charging windows retire them?).
    """
    if window_hours <= 0:
        raise ValueError("window_hours must be > 0")
    window_ms = window_hours * 3_600_000.0
    rows = []
    for night in result.nights:
        rows.append(
            {
                "night": night.night_index,
                "fleet_size": night.fleet_size,
                "joined": night.joined,
                "departed": night.departed,
                "submitted": night.jobs_submitted,
                "carried_over": night.jobs_carried_over,
                "jobs_completed": night.jobs_completed,
                "failures": night.failures,
                "unfinished": night.unfinished,
                "makespan_h": round(night.measured_makespan_ms / 3_600_000.0, 3),
                "window_utilization": round(
                    night.measured_makespan_ms / window_ms, 4
                ),
            }
        )
    active = [n for n in result.nights if not n.idle]
    mean_util = (
        sum(r["window_utilization"] for r in rows) / len(rows) if rows else 0.0
    )
    backlog_trend = (
        result.nights[-1].unfinished - result.nights[0].unfinished
        if result.nights
        else 0
    )
    return {
        "nights": len(result.nights),
        "active_nights": len(active),
        "window_hours": window_hours,
        "rows": rows,
        "total_submitted": result.total_submitted,
        "total_jobs_completed": result.total_jobs_completed,
        "total_failures": result.total_failures,
        "final_backlog": len(result.final_backlog),
        "pending_arrivals": result.pending_arrivals,
        "peak_carryover": result.peak_carryover,
        "mean_window_utilization": round(mean_util, 4),
        "throughput_jobs_per_night": round(
            result.total_jobs_completed / len(result.nights), 3
        )
        if result.nights
        else 0.0,
        "backlog_trend": backlog_trend,
        "keeps_up": len(result.final_backlog) == 0 or backlog_trend <= 0,
    }


class ContinuousCampaign:
    """True multi-night continuous operation with durable state.

    Where :class:`OvernightCampaign` replays a fixed job list over a
    fixed fleet, this models the *service*: jobs arrive from a single
    Poisson stream chained across nights
    (:class:`~repro.workloads.arrivals.PoissonArrivalStream`), the
    fleet churns between nights (enrollments, departures, habit drift —
    :class:`~repro.sim.churn.FleetChurnModel`), bandwidth is re-derived
    per night from per-(phone, night) link seeds, and after every night
    the full campaign state — backlog, deferred arrivals, predictor
    memory, scheduler warm cache, churned fleet, drifted unplug
    profile, every RNG position — is checkpointed to a
    :class:`~repro.durability.snapshot.SnapshotStore`.

    ``run(nights, resume=True)`` restores the latest checkpoint and
    continues; because every random draw flows through checkpointed
    state, a killed-and-resumed campaign produces *exactly* the night
    records the uninterrupted one would have, and no backlog or
    deferred arrival is ever lost across the boundary.

    Everything a night consumes is derived from ``seed`` plus
    checkpointed state, so the campaign needs no live objects in its
    constructor — which is also what makes it resumable from a fresh
    process.
    """

    def __init__(
        self,
        *,
        seed: int = 2012,
        jobs_per_night: int = 12,
        arrival_rate_per_hour: float = 40.0,
        window_start_hour: float = 22.0,
        window_hours: float = 6.0,
        churn: FleetChurnModel | None = None,
        hourly_unplug: Sequence[float] | None = None,
        online_fraction: float = 0.9,
        rejoin_probability: float = 0.35,
        kernel: str = "auto",
        probe_workers: int | None = None,
        batch_width: int | str = "auto",
        shared_mem: bool | str = "auto",
        warm_start: bool = True,
        pods: int | str | None = None,
        pod_assign: str = "greedy",
        pod_workers: int | str | None = "auto",
        policy: str = "cwc-greedy",
        deviation_sigma: float = 0.03,
        max_rounds_per_night: int = 40,
        checkpoint_dir: str | Path | None = None,
        keep_snapshots: int | None = 14,
        telemetry: Telemetry | None = None,
    ) -> None:
        if jobs_per_night < 0:
            raise ValueError("jobs_per_night must be >= 0")
        if window_hours <= 0:
            raise ValueError("window_hours must be > 0")
        if window_hours > 24:
            raise ValueError("window_hours must be <= 24 (one night per day)")
        # Lazy: ``core.greedy`` itself imports the obs facade, whose
        # package import reaches back into ``sim.campaign`` — a
        # module-level import here would be circular.
        from ..core.greedy import CwcScheduler
        from ..core.sharding import ShardedScheduler
        from ..workloads.mixes import (
            evaluation_workload,
            paper_task_profiles,
        )

        self._seed = seed
        self._jobs_per_night = jobs_per_night
        self._rate = arrival_rate_per_hour
        self._start_hour = window_start_hour
        self._window_hours = window_hours
        self._churn = churn
        self._online_fraction = online_fraction
        self._rejoin_probability = rejoin_probability
        self._max_rounds = max_rounds_per_night
        self._keep_snapshots = keep_snapshots
        if hourly_unplug is None:
            # Figure 3's shape: quiet during the charging night, busy
            # during the day.
            hourly_unplug = [
                0.03 if h in (22, 23, 0, 1, 2, 3, 4) else 0.12
                for h in range(24)
            ]
        self._hourly0 = [float(p) for p in hourly_unplug]
        if len(self._hourly0) != 24:
            raise ValueError(
                f"hourly_unplug needs 24 entries, got {len(self._hourly0)}"
            )

        profiles = paper_task_profiles()
        self._truth = FleetGroundTruth(
            profiles, deviation_sigma=deviation_sigma, seed=seed
        )
        self._predictor = RuntimePredictor(profiles)
        if pods is None:
            if policy == "cwc-greedy":
                self._scheduler = CwcScheduler(
                    kernel=kernel,
                    probe_workers=probe_workers,
                    batch_width=batch_width,
                    shared_mem=shared_mem,
                    warm_start=warm_start,
                )
            else:
                from ..core.policies import make_policy

                self._scheduler = make_policy(
                    policy,
                    kernel=kernel,
                    probe_workers=probe_workers,
                    batch_width=batch_width,
                    shared_mem=shared_mem,
                    warm_start=warm_start,
                )
        elif policy != "cwc-greedy":
            raise ValueError(
                f"sharded campaigns (pods={pods!r}) only run the default "
                f"'cwc-greedy' policy, got {policy!r}"
            )
        else:
            # Sharded nights: the parallelism budget goes to pods, so
            # the per-pod searches probe serially.
            self._scheduler = ShardedScheduler(
                pods=pods,
                pod_assign=pod_assign,
                pod_workers=pod_workers,
                kernel=kernel,
                shared_mem=shared_mem,
                warm_start=warm_start,
            )
        # A dozen deterministic job prototypes (cycled with fresh ids);
        # 4 of each task keeps the paper's 3-task mix.
        self._templates = evaluation_workload(seed=seed, instances_per_task=4)
        self._store = (
            SnapshotStore(checkpoint_dir) if checkpoint_dir is not None else None
        )
        #: Campaign-scope facade.  When its tracer is armed, every
        #: night's server runs under a per-night child facade whose
        #: spans are adopted back under a campaign-side ``night`` span
        #: — telemetry never touches the checkpointed state, so traced
        #: and untraced campaigns stay byte-identical.
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY
        self._reset_state()

    @property
    def window_hours(self) -> float:
        """Length of the nightly charging window, in hours."""
        return self._window_hours

    # -- durable state -----------------------------------------------------

    def _reset_state(self) -> None:
        from ..workloads.mixes import paper_testbed

        self._fleet: tuple[PhoneSpec, ...] = paper_testbed(
            seed=self._seed
        ).phones
        self._backlog: tuple[Job, ...] = ()
        self._deferred: list[tuple[float, Job]] = []
        self._probs = list(self._hourly0)
        self._rng = random.Random(stable_seed(self._seed, "campaign"))
        self._stream = PoissonArrivalStream(
            rate_per_hour=self._rate,
            rng=random.Random(stable_seed(self._seed, "arrivals")),
            start_ms=0.0,
        )
        self._job_counter = 0
        self._next_night = 0
        self._records: list[ContinuousNightRecord] = []

    def _capture_state(self) -> dict:
        scheduler_state = None
        warm = getattr(self._scheduler, "warm_state", None)
        if callable(warm):
            scheduler_state = warm()
        return {
            "next_night": self._next_night,
            "job_counter": self._job_counter,
            "fleet": [phone_to_dict(p) for p in self._fleet],
            "backlog": [job_to_dict(j) for j in self._backlog],
            "deferred": [
                [time_ms, job_to_dict(job)] for time_ms, job in self._deferred
            ],
            "hourly_unplug": list(self._probs),
            "rng_state": rng_state_to_json(self._rng.getstate()),
            "stream": self._stream.state(),
            "predictor_learned": [
                [phone_id, task, value]
                for (phone_id, task), value in sorted(
                    self._predictor.learned_pairs().items()
                )
            ],
            "scheduler": scheduler_state,
            "records": [record.to_dict() for record in self._records],
        }

    def _restore_state(self, state: dict) -> None:
        self._next_night = int(state["next_night"])
        self._job_counter = int(state["job_counter"])
        self._fleet = tuple(phone_from_dict(p) for p in state["fleet"])
        self._backlog = tuple(job_from_dict(j) for j in state["backlog"])
        self._deferred = [
            (float(time_ms), job_from_dict(job))
            for time_ms, job in state["deferred"]
        ]
        self._probs = [float(p) for p in state["hourly_unplug"]]
        self._rng = random.Random()
        self._rng.setstate(rng_state_from_json(state["rng_state"]))
        self._stream = PoissonArrivalStream.from_state(state["stream"])
        self._predictor.load_learned(
            {
                (phone_id, task): value
                for phone_id, task, value in state["predictor_learned"]
            }
        )
        if state.get("scheduler") is not None:
            restore = getattr(self._scheduler, "restore_warm_state", None)
            if callable(restore):
                restore(state["scheduler"])
        self._records = [
            ContinuousNightRecord.from_dict(r) for r in state["records"]
        ]

    # -- one night ---------------------------------------------------------

    def _run_night(self, night_index: int) -> ContinuousNightRecord:
        joined = departed = 0
        if night_index > 0 and self._churn is not None:
            event = self._churn.apply(
                self._fleet, night_index=night_index, rng=self._rng
            )
            self._fleet = event.phones
            joined, departed = len(event.joined), len(event.departed)
            self._probs = self._churn.drift_hourly_probabilities(
                self._probs, rng=self._rng
            )

        night_start = night_index * MS_PER_DAY
        window_end = night_start + self._window_hours * 3_600_000.0

        new_jobs: list[Job] = []
        for _ in range(self._jobs_per_night):
            template = self._templates[
                self._job_counter % len(self._templates)
            ]
            new_jobs.append(
                dataclasses.replace(
                    template,
                    job_id=(
                        f"n{night_index:03d}-{template.task}"
                        f"-{self._job_counter:05d}"
                    ),
                )
            )
            self._job_counter += 1

        # Chain the arrival process: fast-forward through the idle day,
        # then stamp this night's jobs as a continuation of the stream.
        if self._stream.last_ms < night_start:
            self._stream.advance_to(night_start)
        stamped = self._stream.take(new_jobs) if new_jobs else []

        matured = [job for t, job in self._deferred if t <= night_start]
        in_window = [
            (t, job)
            for t, job in self._deferred
            if night_start < t < window_end
        ]
        later = [(t, job) for t, job in self._deferred if t >= window_end]
        for t, job in stamped:
            if t < window_end:
                in_window.append((t, job))
            else:
                later.append((t, job))
        in_window.sort(key=lambda pair: pair[0])
        self._deferred = sorted(later, key=lambda pair: pair[0])

        carried = len(self._backlog) + len(matured)
        arrivals_rel = [
            (t - night_start, job) for t, job in in_window
        ]
        initial = self._backlog + tuple(matured)
        if not initial and arrivals_rel:
            # CentralServer.run needs a non-empty initial batch: the
            # night effectively starts when its first job arrives.
            _, first_job = arrivals_rel.pop(0)
            initial = (first_job,)

        if not initial:
            record = ContinuousNightRecord(
                night_index=night_index,
                fleet_size=len(self._fleet),
                joined=joined,
                departed=departed,
                jobs_submitted=len(new_jobs),
                jobs_carried_over=carried,
                arrivals_in_window=0,
                arrivals_deferred=len(self._deferred),
                jobs_completed=0,
                completions=0,
                failures=0,
                predicted_makespan_ms=0.0,
                measured_makespan_ms=0.0,
                unfinished=0,
                idle=True,
            )
            self._backlog = ()
            return record

        # Links are re-derived per (phone, night): charging phones are
        # static but nightly conditions are not, and a resumed campaign
        # rebuilds exactly these links from the same stable seeds.
        links = {
            phone.phone_id: WirelessLink.for_technology(
                phone.network,
                interference_factor=0.85,
                seed=stable_seed(self._seed, phone.phone_id, night_index),
            )
            for phone in self._fleet
        }
        b = measure_fleet(links)
        model = RandomUnplugModel(
            self._probs,
            online_fraction=self._online_fraction,
            rejoin_probability=self._rejoin_probability,
        )
        plan = model.sample_plan(
            [phone.phone_id for phone in self._fleet],
            start_hour=self._start_hour,
            duration_hours=self._window_hours,
            rng=self._rng,
        )
        tracer = self._tel.tracer if self._tel.enabled else None
        night_tel: Telemetry | None = None
        if tracer is not None:
            night_tel = Telemetry.create(
                run_id=f"{self._tel.run_id}-night{night_index}",
                tracing=True,
            )
        server = CentralServer(
            self._fleet,
            self._truth,
            self._predictor,
            self._scheduler,
            b,
            failure_plan=plan,
            max_rounds=self._max_rounds,
            telemetry=night_tel,
        )
        if tracer is not None:
            assert night_tel is not None and night_tel.tracer is not None
            with tracer.span(
                "night",
                category="campaign",
                night_index=night_index,
                fleet=len(self._fleet),
                jobs=len(initial) + len(arrivals_rel),
            ) as night_span:
                result = server.run(initial, arrivals=arrivals_rel)
                tracer.adopt(
                    night_tel.tracer.drain_dicts(), parent=night_span
                )
        else:
            result = server.run(initial, arrivals=arrivals_rel)
        self._backlog = result.unfinished_jobs
        return ContinuousNightRecord(
            night_index=night_index,
            fleet_size=len(self._fleet),
            joined=joined,
            departed=departed,
            jobs_submitted=len(new_jobs),
            jobs_carried_over=carried,
            arrivals_in_window=len(arrivals_rel),
            arrivals_deferred=len(self._deferred),
            jobs_completed=(
                len(initial) + len(arrivals_rel) - len(result.unfinished_jobs)
            ),
            completions=len(result.trace.completions),
            failures=len(result.trace.failures),
            predicted_makespan_ms=result.predicted_makespan_ms,
            measured_makespan_ms=result.measured_makespan_ms,
            unfinished=len(result.unfinished_jobs),
        )

    # -- the campaign loop -------------------------------------------------

    def run(
        self,
        nights: int,
        *,
        resume: bool = False,
        on_night: Callable[["ContinuousCampaign", int, ContinuousNightRecord], None]
        | None = None,
    ) -> ContinuousCampaignResult:
        """Operate for ``nights`` nights, checkpointing each boundary.

        With ``resume`` (and a checkpoint directory holding a campaign
        snapshot), completed nights are skipped and the run continues
        from the restored state; a corrupted latest snapshot falls back
        to the previous good one.  ``on_night`` fires after each
        night's checkpoint is durable — raising from it models a crash
        between nights, which is exactly what the kill/restore drill
        does.
        """
        if nights < 1:
            raise ValueError(f"nights must be >= 1, got {nights!r}")
        resumed_from: int | None = None
        if resume and self._store is not None:
            snapshot = self._store.latest(kind=CAMPAIGN_SNAPSHOT_KIND)
            if snapshot is not None:
                self._restore_state(snapshot.state)
                resumed_from = self._next_night
        checkpoints = 0
        while self._next_night < nights:
            night_index = self._next_night
            record = self._run_night(night_index)
            self._records.append(record)
            self._next_night = night_index + 1
            if self._store is not None:
                self._store.save(
                    CAMPAIGN_SNAPSHOT_KIND, self._capture_state()
                )
                checkpoints += 1
                if self._keep_snapshots is not None:
                    self._store.prune(keep_last=self._keep_snapshots)
            if on_night is not None:
                on_night(self, night_index, record)
        return ContinuousCampaignResult(
            nights=list(self._records),
            final_backlog=self._backlog,
            pending_arrivals=len(self._deferred),
            resumed_from_night=resumed_from,
            checkpoints=checkpoints,
        )


def merge_campaign_metrics(
    results: Sequence[CampaignResult],
) -> MetricsRegistry:
    """Merge the metric snapshots of several campaigns into one registry.

    The per-worker merging step of a telemetry-enabled sweep: each
    worker process ships its campaign's counters home as a plain dict
    (:attr:`CampaignResult.metrics`); this folds them together with
    :meth:`~repro.obs.registry.MetricsRegistry.merge_dict` (counters
    and histograms add, gauges last-write-wins).  Campaigns without
    telemetry contribute nothing.
    """
    merged = MetricsRegistry()
    for result in results:
        if result.metrics:
            merged.merge_dict(result.metrics)
    return merged


def parallel_map(
    fn: Callable,
    inputs: Sequence,
    *,
    max_workers: int | None = None,
    parallel: bool = True,
):
    """Apply ``fn`` to every input, across worker processes when possible.

    ``fn`` must be a module-level (picklable) callable and each call
    must be independent of the others — exactly the shape of a seed
    sweep or a fleet-size sweep.  Results come back in input order.

    Process pools are an optimisation, never a requirement: if the pool
    cannot be created (sandboxes without POSIX semaphores), a worker
    dies, or ``fn``/its arguments refuse to pickle, the remaining work
    runs serially in-process.  Callers therefore get identical results
    on any platform, just with different wall-clock times.
    """
    inputs = list(inputs)
    if not parallel or len(inputs) <= 1:
        return [fn(arg) for arg in inputs]
    try:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(fn, arg) for arg in inputs]
            return [future.result() for future in futures]
    except Exception:
        # Pool creation, pickling, or a worker failed; the computation
        # itself may still be fine — retry serially from scratch.
        return [fn(arg) for arg in inputs]


def _run_sweep_entry(entry):
    factory, seed, nightly_jobs = entry
    return seed, factory(seed).run(nightly_jobs)


def run_campaign_sweep(
    campaign_factory: Callable[[int], OvernightCampaign],
    nightly_jobs: Sequence[Sequence[Job]],
    seeds: Sequence[int],
    *,
    max_workers: int | None = None,
    parallel: bool = True,
) -> dict[int, CampaignResult]:
    """Run one independent campaign per seed, in parallel when possible.

    ``campaign_factory(seed)`` must build a *fresh* campaign — its own
    predictor, ground truth, and scheduler — so runs share no mutable
    state and the sweep is embarrassingly parallel.  The factory must be
    a module-level callable for the process-pool path to engage;
    anything else silently degrades to the serial path.

    Returns ``{seed: CampaignResult}``; identical regardless of whether
    worker processes were actually used.
    """
    entries = [(campaign_factory, seed, nightly_jobs) for seed in seeds]
    results = parallel_map(
        _run_sweep_entry, entries, max_workers=max_workers, parallel=parallel
    )
    return dict(results)
