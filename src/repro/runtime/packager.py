"""Task packaging: the server-side half of the Section 4.2 flow chart.

On the paper's central server, developers' ``.java`` sources are
compiled to ``.class`` files, packaged into a ``.jar`` with the Android
tool chain, and shipped to phones together with the input data; the
phone's reflection loader then instantiates the task.  This module is
the Python analogue:

* :func:`package_task` turns a :class:`~repro.runtime.executable.TaskExecutable`
  class into a :class:`TaskPackage` — a shippable descriptor carrying
  the loader specifier, constructor arguments, and a *measured*
  executable size (the actual source size of the task's module, which
  is what ``E_j`` should be, rather than a guessed constant);
* :func:`install_package` is the phone-side step: resolve the
  specifier through a :class:`~repro.runtime.registry.TaskRegistry`
  (the reflection loader) and register the instantiated task.
"""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass, field
from typing import Any

from .executable import TaskExecutable
from .registry import TaskLoadError, TaskRegistry

__all__ = ["TaskPackage", "package_task", "install_package"]

#: Fixed per-package overhead in KB (manifest + loader glue — the
#: analogue of jar headers and the dex tables).
PACKAGE_OVERHEAD_KB = 2.0


@dataclass(frozen=True)
class TaskPackage:
    """A shippable task executable descriptor."""

    name: str
    specifier: str
    executable_kb: float
    args: tuple = ()
    kwargs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("package name must be non-empty")
        if ":" not in self.specifier:
            raise ValueError(
                f"specifier must be 'module:Class', got {self.specifier!r}"
            )
        if not math.isfinite(self.executable_kb) or self.executable_kb <= 0:
            raise ValueError(
                f"executable_kb must be finite and > 0, got {self.executable_kb!r}"
            )


def package_task(
    task_class: type[TaskExecutable], *args: Any, **kwargs: Any
) -> TaskPackage:
    """Package a task class for shipping.

    The executable size is measured from the class's defining module —
    the source that would be compiled and shipped — plus a fixed
    packaging overhead, giving a defensible ``E_j`` for the cost model.
    Constructor arguments are captured so the phone can instantiate the
    exact task variant (e.g. the word a counter searches for).
    """
    if not (isinstance(task_class, type) and issubclass(task_class, TaskExecutable)):
        raise TaskLoadError(f"{task_class!r} is not a TaskExecutable subclass")
    module = inspect.getmodule(task_class)
    if module is None or not getattr(module, "__name__", None):
        raise TaskLoadError(f"cannot locate defining module of {task_class!r}")
    try:
        source = inspect.getsource(module)
    except (OSError, TypeError) as exc:
        raise TaskLoadError(
            f"cannot read source of {module.__name__!r}: {exc}"
        ) from exc
    size_kb = len(source.encode("utf-8")) / 1024.0 + PACKAGE_OVERHEAD_KB

    # Instantiate once server-side to learn the registered name (and to
    # fail fast on bad constructor arguments before anything ships).
    prototype = task_class(*args, **kwargs)
    if not prototype.name:
        raise TaskLoadError(f"{task_class.__name__} declares no task name")

    return TaskPackage(
        name=prototype.name,
        specifier=f"{module.__name__}:{task_class.__name__}",
        executable_kb=size_kb,
        args=tuple(args),
        kwargs=dict(kwargs),
    )


def install_package(registry: TaskRegistry, package: TaskPackage) -> TaskExecutable:
    """Phone-side install: dynamic load + register (the reflection step)."""
    task = registry.load(package.specifier, *package.args, **package.kwargs)
    if task.name != package.name:
        raise TaskLoadError(
            f"package {package.name!r} loaded a task named {task.name!r}"
        )
    return task
