"""In-process task runner: the Android background service analogue.

On the phone, CWC runs as an Android service that loads shipped task
executables via reflection and executes them with no user interaction
(Section 4.2).  :class:`PhoneSandbox` is that service: it resolves a
task by name from a registry, feeds the input items through the task's
fold, and supports *suspension* — stop after any item and hand back a
:class:`~repro.runtime.executable.Suspended` snapshot, which is what
migrates to another phone on an unplug (Section 6's JavaGO port).
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from .executable import Finished, Suspended, TaskExecutable
from .registry import TaskRegistry

__all__ = ["PhoneSandbox"]


class PhoneSandbox:
    """Executes task programs the way a CWC phone would.

    Parameters
    ----------
    registry:
        Where task names resolve to executables (the reflection layer).
    """

    def __init__(self, registry: TaskRegistry) -> None:
        self._registry = registry

    def execute(
        self,
        task_name: str,
        items: Sequence[Any],
        *,
        resume_from: Suspended | None = None,
        max_items: int | None = None,
    ) -> Finished | Suspended:
        """Run (or resume) a task over ``items``.

        ``resume_from`` continues a previously suspended execution: the
        fold state is restored and items before its position are
        skipped.  ``max_items`` bounds how many items are processed in
        this call — reaching the bound before the input is exhausted
        yields a new :class:`Suspended` snapshot (this is how the
        simulation models an unplug mid-execution).
        """
        task = self._registry.get(task_name)
        if resume_from is not None:
            state = resume_from.state
            position = resume_from.position
            if not 0 <= position <= len(items):
                raise ValueError(
                    f"resume position {position} outside input of {len(items)} items"
                )
        else:
            state = task.initial_state()
            position = 0

        processed = 0
        while position < len(items):
            if max_items is not None and processed >= max_items:
                return Suspended(state=state, position=position)
            state = task.process_item(state, items[position])
            position += 1
            processed += 1

        return Finished(result=task.finalize(state), items_processed=processed)

    def execute_text(
        self,
        task_name: str,
        text: str,
        *,
        resume_from: Suspended | None = None,
        max_items: int | None = None,
    ) -> Finished | Suspended:
        """Convenience wrapper: split raw text into items first."""
        task = self._registry.get(task_name)
        items = list(task.items_from_text(text))
        return self.execute(
            task_name, items, resume_from=resume_from, max_items=max_items
        )

    def aggregate(self, task_name: str, partials: Sequence[Any]) -> Any:
        """Server-side logical aggregation of partition results."""
        return self._registry.get(task_name).aggregate(partials)

    @property
    def registry(self) -> TaskRegistry:
        return self._registry
