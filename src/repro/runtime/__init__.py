"""Automated task execution substrate: registry, executables, sandbox."""

from .executable import ExecutionOutcome, Finished, Suspended, TaskExecutable
from .packager import TaskPackage, install_package, package_task
from .registry import TaskLoadError, TaskRegistry
from .sandbox import PhoneSandbox

__all__ = [
    "ExecutionOutcome",
    "Finished",
    "PhoneSandbox",
    "Suspended",
    "TaskExecutable",
    "TaskLoadError",
    "TaskPackage",
    "install_package",
    "package_task",
    "TaskRegistry",
]
