"""Task executables: the programs CWC ships to phones (Section 4.2).

A CWC task is a program that performs a computation over an input file.
To support the paper's execution model the interface is *incremental*:

* the input is a sequence of **items** (lines of a text file, pixel
  rows of a photo);
* execution folds items into a **state** one at a time, so it can be
  suspended after any item — that suspended state is exactly what the
  JavaGO-style migration of Section 6 ships back to the server;
* breakable tasks additionally define how the server **aggregates**
  partial results from different phones (e.g. summing counts).

Concrete tasks live in :mod:`repro.workloads`; this module defines the
abstract contract plus :class:`ExecutionOutcome` values produced by the
sandbox runner.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Sequence
from dataclasses import dataclass
from typing import Any

__all__ = ["TaskExecutable", "Finished", "Suspended", "ExecutionOutcome"]


class TaskExecutable(abc.ABC):
    """Contract every CWC task program implements.

    Mirrors the paper's ``Task.java`` template (Figure 8): a task reads
    an input and processes it; CWC handles shipping, loading (via the
    registry, the reflection analogue), execution, suspension, and
    aggregation around it.
    """

    #: Registry name, e.g. ``"primes"``.  Must be unique.
    name: str = ""

    #: Declared size of the shipped executable in KB (``E_j``).
    executable_kb: float = 50.0

    #: Whether partial results from input partitions can be merged.
    #: Atomic tasks (e.g. photo blur) set this to False.
    breakable: bool = True

    @abc.abstractmethod
    def initial_state(self) -> Any:
        """Fresh fold state for a new (or resumed-empty) execution."""

    @abc.abstractmethod
    def process_item(self, state: Any, item: Any) -> Any:
        """Fold one input item into the state; return the new state."""

    @abc.abstractmethod
    def finalize(self, state: Any) -> Any:
        """Turn a fold state into this partition's result."""

    def aggregate(self, partials: Sequence[Any]) -> Any:
        """Merge partition results into the job's logical outcome.

        Default: only valid for a single partial (atomic tasks).
        Breakable tasks override this (e.g. summing counts).
        """
        if len(partials) != 1:
            raise ValueError(
                f"task {self.name!r} cannot aggregate {len(partials)} partials"
            )
        return partials[0]

    def items_from_text(self, text: str) -> Iterable[Any]:
        """Split raw input content into processable items.

        Default: one item per line, which matches the paper's
        file-of-lines inputs (integers for prime counting, text for
        word counting, pixel values for the blur pre-processing hack).
        """
        return text.splitlines()


@dataclass(frozen=True)
class Finished:
    """Execution ran to completion."""

    result: Any
    items_processed: int


@dataclass(frozen=True)
class Suspended:
    """Execution was interrupted; ``state`` is the migratable snapshot.

    ``position`` is the index of the next unprocessed item — resuming
    feeds items from there.  This pair is the JavaGO ``undock`` area.
    """

    state: Any
    position: int


ExecutionOutcome = Finished | Suspended
