"""Dynamic task loading: the Java Reflection analogue (Section 4.2).

On Android, CWC ships a ``.jar`` to the phone and loads it with
``DexClassLoader`` at runtime, so new task types run without user
interaction (Figure 9).  The Python analogue is a registry that can

* hold task classes registered programmatically, and
* *load* a class dynamically from a ``"module.path:ClassName"``
  specifier via :mod:`importlib` — the moral equivalent of
  ``classLoader.loadClass("Task")``.

Phones in the simulation resolve task names through a registry; the
examples exercise the dynamic-loading path end to end.
"""

from __future__ import annotations

import importlib

from .executable import TaskExecutable

__all__ = ["TaskRegistry", "TaskLoadError"]


class TaskLoadError(Exception):
    """A task specifier could not be resolved to a TaskExecutable."""


class TaskRegistry:
    """Maps task names to executable instances.

    Examples
    --------
    >>> registry = TaskRegistry()
    >>> registry.load("repro.workloads.primes:PrimeCountTask")  # doctest: +ELLIPSIS
    <repro.workloads.primes.PrimeCountTask object at ...>
    >>> registry.get("primes")  # doctest: +ELLIPSIS
    <repro.workloads.primes.PrimeCountTask object at ...>
    """

    def __init__(self) -> None:
        self._tasks: dict[str, TaskExecutable] = {}

    def register(self, task: TaskExecutable) -> TaskExecutable:
        """Register an instantiated task under its declared name."""
        if not task.name:
            raise TaskLoadError(f"task {task!r} declares no name")
        if task.name in self._tasks:
            raise TaskLoadError(f"task name {task.name!r} already registered")
        self._tasks[task.name] = task
        return task

    def load(self, specifier: str, *args, **kwargs) -> TaskExecutable:
        """Dynamically import, instantiate, and register a task class.

        ``specifier`` is ``"module.path:ClassName"``; extra arguments are
        passed to the constructor.  This is the reflection step: the
        "phone" needs no prior knowledge of the task, only its shipped
        name.
        """
        module_path, _, class_name = specifier.partition(":")
        if not module_path or not class_name:
            raise TaskLoadError(
                f"specifier must look like 'module.path:ClassName', got {specifier!r}"
            )
        try:
            module = importlib.import_module(module_path)
        except ImportError as exc:
            raise TaskLoadError(f"cannot import {module_path!r}: {exc}") from exc
        try:
            cls = getattr(module, class_name)
        except AttributeError:
            raise TaskLoadError(
                f"module {module_path!r} has no class {class_name!r}"
            ) from None
        if not (isinstance(cls, type) and issubclass(cls, TaskExecutable)):
            raise TaskLoadError(
                f"{specifier!r} is not a TaskExecutable subclass"
            )
        task = cls(*args, **kwargs)
        return self.register(task)

    def get(self, name: str) -> TaskExecutable:
        try:
            return self._tasks[name]
        except KeyError:
            raise TaskLoadError(f"no task registered under {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tasks

    def names(self) -> tuple[str, ...]:
        return tuple(self._tasks)
