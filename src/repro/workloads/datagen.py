"""Synthetic input generation for the three evaluation tasks.

The paper ships real files to phones; the reproduction generates
equivalent synthetic inputs — integer files for prime counting, text
files for word counting, pixel grids for blurring — with controllable
sizes so workload mixes can target specific ``L_j`` values in KB.
"""

from __future__ import annotations

import random

import numpy as np

__all__ = [
    "integer_file",
    "text_file",
    "pixel_grid",
    "text_size_kb",
    "split_text_by_kb",
]

_WORD_POOL = (
    "the quick brown fox jumps over lazy dog enterprise smartphone "
    "charging compute schedule partition makespan bandwidth server task "
    "night battery android data record sales store analysis log failure"
).split()


def text_size_kb(text: str) -> float:
    """Size of a text payload in the cost model's KB units."""
    return len(text.encode("utf-8")) / 1024.0


def integer_file(target_kb: float, rng: random.Random, *, max_value: int = 1_000_000) -> str:
    """A file of one random integer per line, close to ``target_kb``."""
    if target_kb <= 0:
        raise ValueError(f"target_kb must be > 0, got {target_kb!r}")
    target_bytes = int(target_kb * 1024)
    lines: list[str] = []
    size = 0
    while size < target_bytes:
        line = str(rng.randint(0, max_value))
        lines.append(line)
        size += len(line) + 1  # newline
    return "\n".join(lines)


def text_file(target_kb: float, rng: random.Random, *, words_per_line: int = 12) -> str:
    """A file of random prose lines, close to ``target_kb``."""
    if target_kb <= 0:
        raise ValueError(f"target_kb must be > 0, got {target_kb!r}")
    if words_per_line < 1:
        raise ValueError("words_per_line must be >= 1")
    target_bytes = int(target_kb * 1024)
    lines: list[str] = []
    size = 0
    while size < target_bytes:
        line = " ".join(rng.choice(_WORD_POOL) for _ in range(words_per_line))
        lines.append(line)
        size += len(line) + 1
    return "\n".join(lines)


def split_text_by_kb(text: str, sizes_kb: list[float]) -> list[str]:
    """Split a line-oriented input into partitions of roughly given sizes.

    This is the central server's partitioning step: the scheduler
    decides ``l_ij`` sizes in KB, and the server cuts the actual input
    file at line boundaries so each phone receives a self-contained
    partition.  Proportions are respected (the line granularity makes
    exact byte counts impossible); every line lands in exactly one
    partition, in order.
    """
    if not sizes_kb:
        raise ValueError("sizes_kb must be non-empty")
    if any(size <= 0 for size in sizes_kb):
        raise ValueError("partition sizes must be > 0")
    lines = text.splitlines()
    total_kb = sum(sizes_kb)
    total_bytes = len(text.encode("utf-8"))
    partitions: list[str] = []
    consumed = 0  # bytes already assigned
    index = 0
    for rank, size_kb in enumerate(sizes_kb):
        if rank == len(sizes_kb) - 1:
            chunk = lines[index:]
            index = len(lines)
        else:
            target = consumed + size_kb / total_kb * total_bytes
            chunk = []
            while index < len(lines) and consumed < target:
                line = lines[index]
                chunk.append(line)
                consumed += len(line.encode("utf-8")) + 1
                index += 1
        partitions.append("\n".join(chunk))
    return partitions


def pixel_grid(
    height: int, width: int, rng: random.Random, *, depth: int = 255
) -> np.ndarray:
    """A random grayscale photo of the given dimensions."""
    if height < 1 or width < 1:
        raise ValueError(f"dimensions must be >= 1, got {height}x{width}")
    if depth < 1:
        raise ValueError(f"depth must be >= 1, got {depth!r}")
    flat = [float(rng.randint(0, depth)) for _ in range(height * width)]
    return np.array(flat).reshape(height, width)
