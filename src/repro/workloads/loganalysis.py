"""The paper's third example application: overnight log analysis.

Section 3.2: "the IT department in an enterprise can gather machine
logs throughout the day and analyze them for certain types of failures
at night."  This task scans machine-log lines for failure signatures
and reports per-signature counts plus a bounded sample of matching
lines.  Unlike the counting tasks, its partial result is *structured*
(a dict), so its aggregation exercises the server-side merge path with
non-scalar partials.
"""

from __future__ import annotations

import random
import re
from collections.abc import Sequence
from dataclasses import dataclass, field

from ..runtime.executable import TaskExecutable

__all__ = ["LogAnalysisTask", "LogReport", "machine_log"]

#: Failure signatures the default analysis looks for.
DEFAULT_SIGNATURES = ("ERROR", "FATAL", "OOM", "TIMEOUT", "SEGFAULT")

_LEVELS = ("INFO", "INFO", "INFO", "DEBUG", "WARN") + DEFAULT_SIGNATURES
_COMPONENTS = ("db", "web", "auth", "cache", "queue", "batch")


@dataclass
class LogReport:
    """Structured partial/final result of a log analysis."""

    counts: dict[str, int] = field(default_factory=dict)
    samples: dict[str, list[str]] = field(default_factory=dict)
    lines_scanned: int = 0

    def merge(self, other: "LogReport", *, max_samples: int) -> "LogReport":
        merged = LogReport(
            counts=dict(self.counts),
            samples={sig: list(lines) for sig, lines in self.samples.items()},
            lines_scanned=self.lines_scanned + other.lines_scanned,
        )
        for signature, count in other.counts.items():
            merged.counts[signature] = merged.counts.get(signature, 0) + count
        for signature, lines in other.samples.items():
            bucket = merged.samples.setdefault(signature, [])
            bucket.extend(lines)
            del bucket[max_samples:]
        return merged


class LogAnalysisTask(TaskExecutable):
    """Count failure signatures in machine logs; keep example lines.

    Breakable: partitions of a log can be scanned independently and the
    per-signature counts summed (samples are capped per signature, so
    the merged report stays small no matter how large the input).
    """

    name = "loganalysis"
    executable_kb = 60.0
    breakable = True

    def __init__(
        self,
        signatures: Sequence[str] = DEFAULT_SIGNATURES,
        *,
        max_samples: int = 3,
    ) -> None:
        if not signatures:
            raise ValueError("need at least one failure signature")
        if max_samples < 0:
            raise ValueError(f"max_samples must be >= 0, got {max_samples!r}")
        self.signatures = tuple(signatures)
        self.max_samples = max_samples
        self._patterns = {
            signature: re.compile(r"\b" + re.escape(signature) + r"\b")
            for signature in self.signatures
        }

    def initial_state(self) -> LogReport:
        return LogReport()

    def process_item(self, state: LogReport, item: str) -> LogReport:
        state.lines_scanned += 1
        for signature, pattern in self._patterns.items():
            if pattern.search(item):
                state.counts[signature] = state.counts.get(signature, 0) + 1
                bucket = state.samples.setdefault(signature, [])
                if len(bucket) < self.max_samples:
                    bucket.append(item)
        return state

    def finalize(self, state: LogReport) -> LogReport:
        return state

    def aggregate(self, partials: Sequence[LogReport]) -> LogReport:
        merged = LogReport()
        for partial in partials:
            merged = merged.merge(partial, max_samples=self.max_samples)
        return merged


def machine_log(
    lines: int, rng: random.Random, *, failure_rate: float = 0.05
) -> str:
    """Generate a synthetic machine log with injected failures."""
    if lines < 1:
        raise ValueError(f"lines must be >= 1, got {lines!r}")
    if not 0.0 <= failure_rate <= 1.0:
        raise ValueError(f"failure_rate must lie in [0, 1], got {failure_rate!r}")
    out = []
    for index in range(lines):
        if rng.random() < failure_rate:
            level = rng.choice(DEFAULT_SIGNATURES)
        else:
            level = rng.choice(_LEVELS[:5])
        component = rng.choice(_COMPONENTS)
        out.append(
            f"2012-12-{rng.randint(1, 28):02d}T{rng.randint(0, 23):02d}:"
            f"{rng.randint(0, 59):02d} {component} {level} "
            f"event-{index:06d} code={rng.randint(100, 599)}"
        )
    return "\n".join(out)
