"""Task 1: count prime numbers in an input file (Section 6).

The paper's first evaluation task "involves counting the occurrences of
prime numbers in an input file".  The input is a text file with one
integer per line; partitions of the file can be counted independently
and the server sums the partial counts — the canonical *breakable*
task.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..runtime.executable import TaskExecutable

__all__ = ["PrimeCountTask", "is_prime"]


def is_prime(n: int) -> bool:
    """Deterministic trial-division primality test.

    Fast enough for the 32-bit integers the workload generator emits;
    chosen over probabilistic tests so results are exactly reproducible.
    """
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    divisor = 3
    while divisor * divisor <= n:
        if n % divisor == 0:
            return False
        divisor += 2
    return True


class PrimeCountTask(TaskExecutable):
    """Count how many lines of the input are prime integers.

    Non-integer lines are counted as non-prime rather than failing:
    a phone must never crash on malformed input mid-partition (the
    server would see it as a task failure and re-schedule needlessly).
    """

    name = "primes"
    executable_kb = 40.0
    breakable = True

    def initial_state(self) -> int:
        return 0

    def process_item(self, state: int, item: str) -> int:
        try:
            value = int(item.strip())
        except (ValueError, AttributeError):
            return state
        return state + (1 if is_prime(value) else 0)

    def finalize(self, state: int) -> int:
        return state

    def aggregate(self, partials: Sequence[int]) -> int:
        """The server simply sums the per-partition prime counts."""
        return sum(partials)
