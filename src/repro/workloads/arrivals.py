"""Job arrival processes — tasks entering the system mid-run.

Section 5's failure handling is built around scheduling *instants*:
failed tasks wait in ``F_A`` until the next instant, when they are
scheduled together with "new tasks [that] have entered the system".
The evaluation submits its 150 tasks up front, but a deployed CWC
server sees jobs trickle in overnight — log batches landing as
machines rotate their files, photos uploaded as shoots finish.

This module generates such arrival streams in the format
:meth:`repro.sim.server.CentralServer.run` accepts
(``[(time_ms, Job), ...]``).
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable, Sequence

from ..core.model import Job

__all__ = ["poisson_arrivals", "batched_arrivals"]


def poisson_arrivals(
    jobs: Sequence[Job],
    *,
    rate_per_hour: float,
    rng: random.Random,
    start_ms: float = 0.0,
) -> list[tuple[float, Job]]:
    """Assign Poisson-process arrival times to ``jobs``.

    Inter-arrival gaps are exponential with mean ``1 / rate_per_hour``;
    jobs keep their given order.  Returns ``(time_ms, job)`` pairs,
    sorted by time, ready for ``CentralServer.run(arrivals=...)``.
    """
    if rate_per_hour <= 0:
        raise ValueError(f"rate_per_hour must be > 0, got {rate_per_hour!r}")
    if start_ms < 0:
        raise ValueError(f"start_ms must be >= 0, got {start_ms!r}")
    mean_gap_ms = 3_600_000.0 / rate_per_hour
    now = start_ms
    arrivals = []
    for job in jobs:
        now += rng.expovariate(1.0 / mean_gap_ms) if mean_gap_ms > 0 else 0.0
        arrivals.append((now, job))
    return arrivals


def batched_arrivals(
    batches: Sequence[Sequence[Job]],
    *,
    interval_ms: float,
    start_ms: float = 0.0,
    jitter_ms: float = 0.0,
    rng: random.Random | None = None,
) -> list[tuple[float, Job]]:
    """Deliver ``batches[k]`` at ``start_ms + k * interval_ms``.

    Models periodic drops (hourly log rotation, end-of-shift uploads).
    ``jitter_ms`` adds uniform noise per batch; jobs within a batch
    arrive together.
    """
    if interval_ms <= 0:
        raise ValueError(f"interval_ms must be > 0, got {interval_ms!r}")
    if jitter_ms < 0:
        raise ValueError(f"jitter_ms must be >= 0, got {jitter_ms!r}")
    if jitter_ms > 0 and rng is None:
        raise ValueError("jitter_ms > 0 requires an rng")
    arrivals: list[tuple[float, Job]] = []
    for index, batch in enumerate(batches):
        time_ms = start_ms + index * interval_ms
        if jitter_ms > 0:
            assert rng is not None
            time_ms += rng.uniform(0.0, jitter_ms)
        for job in batch:
            arrivals.append((time_ms, job))
    arrivals.sort(key=lambda pair: pair[0])
    return arrivals
