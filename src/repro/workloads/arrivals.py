"""Job arrival processes — tasks entering the system mid-run.

Section 5's failure handling is built around scheduling *instants*:
failed tasks wait in ``F_A`` until the next instant, when they are
scheduled together with "new tasks [that] have entered the system".
The evaluation submits its 150 tasks up front, but a deployed CWC
server sees jobs trickle in overnight — log batches landing as
machines rotate their files, photos uploaded as shoots finish.

This module generates such arrival streams in the format
:meth:`repro.sim.server.CentralServer.run` accepts
(``[(time_ms, Job), ...]``).

Two forms exist:

* the original one-shot helpers :func:`poisson_arrivals` and
  :func:`batched_arrivals`, unchanged in behaviour (they consume the
  same RNG calls in the same order as they always did, so fuzz-scenario
  digests are stable);
* the resumable :class:`PoissonArrivalStream` and
  :class:`BatchedArrivalStream`, which carry their end state — last
  arrival time, batch index, RNG position — across :meth:`take` calls
  and across process restarts via ``state()``/``from_state()``.  Multi-
  night campaigns chain one stream across nights, so night ``k+1``'s
  arrivals continue the same stochastic process instead of restarting
  it, and a resumed campaign draws exactly the arrivals the original
  would have.  Chaining is validated: time never runs backwards.
"""

from __future__ import annotations

import random
from collections.abc import Sequence

from ..core.model import Job
from ..durability.snapshot import rng_state_from_json, rng_state_to_json

__all__ = [
    "PoissonArrivalStream",
    "BatchedArrivalStream",
    "poisson_arrivals",
    "batched_arrivals",
]


class PoissonArrivalStream:
    """A resumable Poisson arrival process.

    Each :meth:`take` call stamps the given jobs with exponential
    inter-arrival gaps *continuing from the previous call's last
    arrival* — the property the one-shot helper cannot provide, because
    it resets its clock to ``start_ms`` on every call (historically,
    chaining nights that way could emit a night-2 arrival *earlier*
    than night 1's last arrival).  :meth:`advance_to` fast-forwards the
    clock to a later origin (e.g. the next night's start) and rejects
    non-monotonic chaining.
    """

    def __init__(
        self,
        *,
        rate_per_hour: float,
        rng: random.Random,
        start_ms: float = 0.0,
    ) -> None:
        if rate_per_hour <= 0:
            raise ValueError(
                f"rate_per_hour must be > 0, got {rate_per_hour!r}"
            )
        if start_ms < 0:
            raise ValueError(f"start_ms must be >= 0, got {start_ms!r}")
        self._rate_per_hour = float(rate_per_hour)
        self._rng = rng
        self._last_ms = float(start_ms)
        self._emitted = 0

    @property
    def rate_per_hour(self) -> float:
        return self._rate_per_hour

    @property
    def last_ms(self) -> float:
        """The most recent arrival time (or the current origin)."""
        return self._last_ms

    @property
    def emitted(self) -> int:
        """Total jobs stamped so far, across all :meth:`take` calls."""
        return self._emitted

    def advance_to(self, start_ms: float) -> None:
        """Fast-forward the clock to a later origin (night boundary).

        Raises if ``start_ms`` lies before the last emitted arrival —
        continuing from there would make time run backwards across the
        chain, the exact bug the one-shot helpers allowed.
        """
        if start_ms < self._last_ms:
            raise ValueError(
                f"cannot advance to {start_ms!r}: stream already emitted "
                f"an arrival at {self._last_ms!r} (time must be monotonic "
                "across chained calls)"
            )
        self._last_ms = float(start_ms)

    def take(self, jobs: Sequence[Job]) -> list[tuple[float, Job]]:
        """Stamp ``jobs`` with the next arrivals of the process."""
        mean_gap_ms = 3_600_000.0 / self._rate_per_hour
        arrivals = []
        for job in jobs:
            self._last_ms += self._rng.expovariate(1.0 / mean_gap_ms)
            arrivals.append((self._last_ms, job))
        self._emitted += len(arrivals)
        return arrivals

    def state(self) -> dict:
        """JSON-safe end state: clock, counter, and RNG position."""
        return {
            "rate_per_hour": self._rate_per_hour,
            "last_ms": self._last_ms,
            "emitted": self._emitted,
            "rng_state": rng_state_to_json(self._rng.getstate()),
        }

    @classmethod
    def from_state(cls, data: dict) -> "PoissonArrivalStream":
        """Rebuild a stream mid-process; continues draw-for-draw."""
        rng = random.Random()
        rng.setstate(rng_state_from_json(data["rng_state"]))
        stream = cls(
            rate_per_hour=float(data["rate_per_hour"]),
            rng=rng,
            start_ms=0.0,
        )
        stream._last_ms = float(data["last_ms"])
        stream._emitted = int(data["emitted"])
        return stream


class BatchedArrivalStream:
    """A resumable periodic batch drop (log rotation, shift uploads).

    Batch ``k`` (counted across *all* :meth:`take` calls) lands at
    ``origin + k * interval_ms`` plus optional uniform jitter; the batch
    counter and RNG position survive ``state()``/``from_state()``.
    """

    def __init__(
        self,
        *,
        interval_ms: float,
        start_ms: float = 0.0,
        jitter_ms: float = 0.0,
        rng: random.Random | None = None,
    ) -> None:
        if interval_ms <= 0:
            raise ValueError(f"interval_ms must be > 0, got {interval_ms!r}")
        if start_ms < 0:
            raise ValueError(f"start_ms must be >= 0, got {start_ms!r}")
        if jitter_ms < 0:
            raise ValueError(f"jitter_ms must be >= 0, got {jitter_ms!r}")
        if jitter_ms > 0 and rng is None:
            raise ValueError("jitter_ms > 0 requires an rng")
        self._interval_ms = float(interval_ms)
        self._origin_ms = float(start_ms)
        self._jitter_ms = float(jitter_ms)
        self._rng = rng
        self._next_index = 0

    @property
    def next_index(self) -> int:
        return self._next_index

    @property
    def last_ms(self) -> float:
        """Nominal time of the most recent batch (origin before any)."""
        if self._next_index == 0:
            return self._origin_ms
        return self._origin_ms + (self._next_index - 1) * self._interval_ms

    def advance_to(self, start_ms: float) -> None:
        """Move the origin forward so the *next* batch lands there.

        Like :meth:`PoissonArrivalStream.advance_to`, rejects origins
        before the last emitted batch.
        """
        if start_ms < self.last_ms:
            raise ValueError(
                f"cannot advance to {start_ms!r}: stream already emitted "
                f"a batch at {self.last_ms!r} (time must be monotonic "
                "across chained calls)"
            )
        self._origin_ms = float(start_ms) - self._next_index * self._interval_ms

    def take(
        self, batches: Sequence[Sequence[Job]]
    ) -> list[tuple[float, Job]]:
        """Stamp ``batches`` with the next drop times of the sequence."""
        arrivals: list[tuple[float, Job]] = []
        for batch in batches:
            time_ms = self._origin_ms + self._next_index * self._interval_ms
            if self._jitter_ms > 0:
                assert self._rng is not None
                time_ms += self._rng.uniform(0.0, self._jitter_ms)
            self._next_index += 1
            for job in batch:
                arrivals.append((time_ms, job))
        arrivals.sort(key=lambda pair: pair[0])
        return arrivals

    def state(self) -> dict:
        """JSON-safe end state: origin, batch index, RNG position."""
        return {
            "interval_ms": self._interval_ms,
            "origin_ms": self._origin_ms,
            "jitter_ms": self._jitter_ms,
            "next_index": self._next_index,
            "rng_state": (
                None
                if self._rng is None
                else rng_state_to_json(self._rng.getstate())
            ),
        }

    @classmethod
    def from_state(cls, data: dict) -> "BatchedArrivalStream":
        rng = None
        if data.get("rng_state") is not None:
            rng = random.Random()
            rng.setstate(rng_state_from_json(data["rng_state"]))
        stream = cls(
            interval_ms=float(data["interval_ms"]),
            start_ms=0.0,
            jitter_ms=float(data["jitter_ms"]),
            rng=rng,
        )
        stream._origin_ms = float(data["origin_ms"])
        stream._next_index = int(data["next_index"])
        return stream


def poisson_arrivals(
    jobs: Sequence[Job],
    *,
    rate_per_hour: float,
    rng: random.Random,
    start_ms: float = 0.0,
) -> list[tuple[float, Job]]:
    """Assign Poisson-process arrival times to ``jobs``.

    Inter-arrival gaps are exponential with mean ``1 / rate_per_hour``;
    jobs keep their given order.  Returns ``(time_ms, job)`` pairs,
    sorted by time, ready for ``CentralServer.run(arrivals=...)``.

    One-shot: the clock resets to ``start_ms`` every call, so chained
    calls can emit non-monotonic times.  Use
    :class:`PoissonArrivalStream` when continuing a process across
    nights or restarts.
    """
    stream = PoissonArrivalStream(
        rate_per_hour=rate_per_hour, rng=rng, start_ms=start_ms
    )
    return stream.take(jobs)


def batched_arrivals(
    batches: Sequence[Sequence[Job]],
    *,
    interval_ms: float,
    start_ms: float = 0.0,
    jitter_ms: float = 0.0,
    rng: random.Random | None = None,
) -> list[tuple[float, Job]]:
    """Deliver ``batches[k]`` at ``start_ms + k * interval_ms``.

    Models periodic drops (hourly log rotation, end-of-shift uploads).
    ``jitter_ms`` adds uniform noise per batch; jobs within a batch
    arrive together.  One-shot; see :class:`BatchedArrivalStream` for
    the resumable form.
    """
    stream = BatchedArrivalStream(
        interval_ms=interval_ms,
        start_ms=start_ms,
        jitter_ms=jitter_ms,
        rng=rng,
    )
    return stream.take(batches)
