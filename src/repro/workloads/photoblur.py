"""Task 3: blur the pixels of a photo (Section 6) — the atomic task.

A box blur replaces each pixel with the mean of its neighbourhood, so
the result at every pixel depends on neighbouring pixels: the photo
*cannot* be partitioned and merged, making this the paper's canonical
atomic task.  Concurrency still comes from batching — 1000 photos can
be blurred on 1000 phones.

The paper also documents a porting wrinkle: Android's Dalvik VM lacks
``BufferedImage``, so the central server pre-processes each photo into
a text file with one pixel value per line, phones process the text, and
the server re-creates the photo from the returned pixels.  This module
implements that exact flow: :func:`grid_to_text` / :func:`text_to_grid`
are the server-side pre-/post-processing, and :class:`PhotoBlurTask`
consumes the line-per-pixel format.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..runtime.executable import TaskExecutable

__all__ = ["PhotoBlurTask", "box_blur", "grid_to_text", "text_to_grid"]


def box_blur(grid: np.ndarray, radius: int = 1) -> np.ndarray:
    """Mean filter with a ``(2*radius+1)``-square window, edge-clipped.

    Uses a summed-area table so cost is independent of the radius.
    Values are kept as floats; callers can round back to pixel depth.
    """
    if radius < 0:
        raise ValueError(f"radius must be >= 0, got {radius!r}")
    grid = np.asarray(grid, dtype=float)
    if grid.ndim != 2:
        raise ValueError(f"grid must be 2-D, got shape {grid.shape}")
    if radius == 0:
        return grid.copy()
    height, width = grid.shape
    # Summed-area table with a zero border row/column.
    sat = np.zeros((height + 1, width + 1))
    sat[1:, 1:] = grid.cumsum(axis=0).cumsum(axis=1)

    rows = np.arange(height)
    cols = np.arange(width)
    top = np.clip(rows - radius, 0, height)
    bottom = np.clip(rows + radius + 1, 0, height)
    left = np.clip(cols - radius, 0, width)
    right = np.clip(cols + radius + 1, 0, width)

    # Window sums via inclusion–exclusion on the SAT.
    t = top[:, None]
    b = bottom[:, None]
    l = left[None, :]
    r = right[None, :]
    window_sum = sat[b, r] - sat[t, r] - sat[b, l] + sat[t, l]
    window_area = (b - t) * (r - l)
    return window_sum / window_area


def grid_to_text(grid: np.ndarray) -> str:
    """Server-side pre-processing: one pixel value per line.

    The first line carries ``height width``; pixel values follow in
    row-major order (this is the format the paper adopted to work
    around Dalvik's missing image classes).
    """
    grid = np.asarray(grid)
    if grid.ndim != 2:
        raise ValueError(f"grid must be 2-D, got shape {grid.shape}")
    height, width = grid.shape
    lines = [f"{height} {width}"]
    lines.extend(repr(float(v)) for v in grid.reshape(-1))
    return "\n".join(lines)


def text_to_grid(text: str) -> np.ndarray:
    """Server-side post-processing: re-create the photo from pixels."""
    lines = text.splitlines()
    if not lines:
        raise ValueError("empty pixel text")
    try:
        height, width = (int(part) for part in lines[0].split())
    except ValueError:
        raise ValueError(f"malformed header line {lines[0]!r}") from None
    expected = height * width
    values = [float(line) for line in lines[1 : expected + 1]]
    if len(values) != expected:
        raise ValueError(
            f"expected {expected} pixel lines, got {len(values)}"
        )
    return np.array(values).reshape(height, width)


@dataclass
class _BlurState:
    header: tuple[int, int] | None
    pixels: list[float]


class PhotoBlurTask(TaskExecutable):
    """Blur one photo shipped in the line-per-pixel text format.

    The fold collects pixels (so executions can suspend and migrate
    mid-photo); the blur itself happens in :meth:`finalize` once all
    pixels are present — mirroring the data dependency that makes the
    task atomic in the first place.
    """

    name = "blur"
    executable_kb = 80.0
    breakable = False

    def __init__(self, radius: int = 1) -> None:
        if radius < 0:
            raise ValueError(f"radius must be >= 0, got {radius!r}")
        self.radius = radius

    def initial_state(self) -> _BlurState:
        return _BlurState(header=None, pixels=[])

    def process_item(self, state: _BlurState, item: str) -> _BlurState:
        if state.header is None:
            height, width = (int(part) for part in item.split())
            return _BlurState(header=(height, width), pixels=state.pixels)
        state.pixels.append(float(item))
        return state

    def finalize(self, state: _BlurState) -> str:
        if state.header is None:
            raise ValueError("no header line was processed")
        height, width = state.header
        grid = np.array(state.pixels).reshape(height, width)
        return grid_to_text(box_blur(grid, self.radius))
