"""The Figure 5 micro-benchmark task: find the largest integer in a file.

Section 3.1's bandwidth-variability experiment ships 600 files to six
equal-CPU phones; "each phone finds the largest integer in the file".
Maxima over partitions merge by taking the overall max, so the task is
breakable in general — the Figure 5 experiment simply treats each file
as one indivisible unit of work.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..runtime.executable import TaskExecutable

__all__ = ["MaxIntTask"]


class MaxIntTask(TaskExecutable):
    """Return the largest integer appearing in the input lines.

    Lines that do not parse as integers are skipped.  An input with no
    valid integers yields ``None`` (distinguishable from any real max).
    """

    name = "maxint"
    executable_kb = 5.0
    breakable = True

    def initial_state(self) -> int | None:
        return None

    def process_item(self, state: int | None, item: str) -> int | None:
        try:
            value = int(item.strip())
        except (ValueError, AttributeError):
            return state
        if state is None or value > state:
            return value
        return state

    def finalize(self, state: int | None) -> int | None:
        return state

    def aggregate(self, partials: Sequence[int | None]) -> int | None:
        """The max over partitions is the max of the partition maxima."""
        present = [p for p in partials if p is not None]
        return max(present) if present else None
