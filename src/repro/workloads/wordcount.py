"""Task 2: count occurrences of a word in an input file (Section 6).

The paper's second task counts "the number of occurrences of a word in
the input file" — the same MapReduce-flavoured example its task model
(Section 4) is introduced with.  Partitions are independent; the server
sums the counts.
"""

from __future__ import annotations

import re
from collections.abc import Sequence

from ..runtime.executable import TaskExecutable

__all__ = ["WordCountTask"]


class WordCountTask(TaskExecutable):
    """Count whole-word occurrences of ``word`` across the input lines.

    Matching is case-insensitive on word boundaries, so ``"the"`` does
    not match ``"there"`` — the count is the one a person would expect
    from the paper's description.
    """

    name = "wordcount"
    executable_kb = 30.0
    breakable = True

    def __init__(self, word: str = "the", name: str | None = None) -> None:
        if not word or not word.strip():
            raise ValueError("word must be a non-empty string")
        self.word = word
        if name is not None:
            # Several differently-parameterised counters can coexist in
            # one registry (e.g. one job per query term).
            self.name = name
        self._pattern = re.compile(
            r"\b" + re.escape(word) + r"\b", flags=re.IGNORECASE
        )

    def initial_state(self) -> int:
        return 0

    def process_item(self, state: int, item: str) -> int:
        return state + len(self._pattern.findall(item))

    def finalize(self, state: int) -> int:
        return state

    def aggregate(self, partials: Sequence[int]) -> int:
        """Sum the per-partition occurrence counts."""
        return sum(partials)
