"""Workload and fleet definitions matching the paper's evaluation.

Section 6's setup: 18 Android phones spread over three houses — two
houses with interference-prone 802.11g and one with clean 802.11a; per
house 2 phones on WiFi and 4 on cellular technologies from EDGE to 4G;
CPU clocks from 806 MHz (HTC G2, the reference) to 1.5 GHz.  The
evaluation workload is 50 prime-count jobs, 50 word-count jobs (both
breakable, varying input sizes), and 50 photo blurs (atomic).

This module builds that fleet and those workloads, plus the Figure 5
micro-benchmark workload (600 identical files on 6 equal-CPU phones).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.model import Job, JobKind, NetworkTechnology, PhoneSpec
from ..core.prediction import TaskProfile
from ..netmodel.links import WirelessLink

__all__ = [
    "REFERENCE_MHZ",
    "paper_base_times",
    "paper_task_profiles",
    "Testbed",
    "paper_testbed",
    "evaluation_workload",
    "fig5_workload",
    "fig5_testbed",
]

#: Clock speed of the slowest testbed phone (HTC G2), the profiling
#: reference for the CPU-scaling predictor (Section 4.1, Figure 6).
REFERENCE_MHZ = 806.0

#: Clock speeds present in the paper's testbed (806 MHz – 1.5 GHz),
#: cycled across the 18 phones.
_TESTBED_CLOCKS_MHZ = (806.0, 1000.0, 1200.0, 1200.0, 1400.0, 1500.0)

#: Cellular technology mix per house: "from the slowest EDGE to the
#: fastest 4G".
_CELLULAR_MIX = (
    NetworkTechnology.EDGE,
    NetworkTechnology.THREE_G,
    NetworkTechnology.THREE_G,
    NetworkTechnology.FOUR_G,
)


def paper_base_times() -> dict[str, float]:
    """Per-KB local execution times (ms) on the 806 MHz reference phone.

    These play the role of the paper's one-off task profiling run on
    the slowest phone (``T_s`` per task).  The ratios reflect the
    tasks' relative compute intensity: the blur touches every pixel in
    a neighbourhood; prime counting does trial division; word counting
    is a linear scan.
    """
    return {"primes": 60.0, "wordcount": 25.0, "blur": 90.0}


def paper_task_profiles() -> dict[str, TaskProfile]:
    """Ground-truth task profiles on the reference phone."""
    return {
        task: TaskProfile(task=task, base_ms_per_kb=ms, base_mhz=REFERENCE_MHZ)
        for task, ms in paper_base_times().items()
    }


@dataclass(frozen=True)
class Testbed:
    """A fleet plus its wireless links."""

    phones: tuple[PhoneSpec, ...]
    links: dict[str, WirelessLink]

    def phone(self, phone_id: str) -> PhoneSpec:
        for phone in self.phones:
            if phone.phone_id == phone_id:
                return phone
        raise KeyError(f"no phone {phone_id!r}")


def paper_testbed(*, seed: int = 2012, efficiency_spread: float = 0.15) -> Testbed:
    """Build the 18-phone, 3-house testbed of Section 6.

    ``efficiency_spread`` controls the hidden per-phone CPU efficiency
    factor (uniform in ``[1, 1 + spread]`` with a couple of outliers):
    Figure 6 shows some phones run faster than their clock speed
    predicts, and Fig. 12a attributes phones finishing early to exactly
    this mismatch.
    """
    rng = random.Random(seed)
    phones: list[PhoneSpec] = []
    links: dict[str, WirelessLink] = {}
    houses = (
        ("house-1", NetworkTechnology.WIFI_G, 0.75),  # interfering APs
        ("house-2", NetworkTechnology.WIFI_G, 0.85),  # interfering APs
        ("house-3", NetworkTechnology.WIFI_A, 1.0),   # clean 802.11a
    )
    index = 0
    for house, wifi_tech, interference in houses:
        technologies = (wifi_tech, wifi_tech) + _CELLULAR_MIX
        for tech in technologies:
            phone_id = f"phone-{index:02d}"
            clock = _TESTBED_CLOCKS_MHZ[index % len(_TESTBED_CLOCKS_MHZ)]
            efficiency = 1.0 + rng.random() * efficiency_spread
            # A few genuinely-faster-than-clock outliers (Fig. 6's
            # rightmost points).
            if rng.random() < 0.15:
                efficiency += 0.25
            phones.append(
                PhoneSpec(
                    phone_id=phone_id,
                    cpu_mhz=clock,
                    network=tech,
                    cpu_efficiency=efficiency,
                    location=house,
                    model_name=f"testbed-{int(clock)}mhz",
                )
            )
            wifi_factor = interference if tech is wifi_tech else 1.0
            links[phone_id] = WirelessLink.for_technology(
                tech,
                interference_factor=wifi_factor,
                seed=rng.randrange(2**31),
            )
            index += 1
    return Testbed(phones=tuple(phones), links=links)


def evaluation_workload(
    *,
    seed: int = 150,
    instances_per_task: int = 50,
    primes_kb_range: tuple[float, float] = (1_024.0, 4_096.0),
    wordcount_kb_range: tuple[float, float] = (1_024.0, 4_096.0),
    blur_kb_range: tuple[float, float] = (200.0, 2_000.0),
) -> tuple[Job, ...]:
    """The 150-task evaluation workload of Section 6.

    50 prime-count instances and 50 word-count instances with varying
    input sizes (breakable), and 50 variable-size photos to blur
    (atomic).
    """
    if instances_per_task < 1:
        raise ValueError("instances_per_task must be >= 1")
    rng = random.Random(seed)
    jobs: list[Job] = []
    base = paper_base_times()
    exe_sizes = {"primes": 40.0, "wordcount": 30.0, "blur": 80.0}
    for task, kind, (low, high) in (
        ("primes", JobKind.BREAKABLE, primes_kb_range),
        ("wordcount", JobKind.BREAKABLE, wordcount_kb_range),
        ("blur", JobKind.ATOMIC, blur_kb_range),
    ):
        if task not in base:
            raise ValueError(f"task {task!r} has no base profile")
        for i in range(instances_per_task):
            jobs.append(
                Job(
                    job_id=f"{task}-{i:03d}",
                    task=task,
                    kind=kind,
                    executable_kb=exe_sizes[task],
                    input_kb=rng.uniform(low, high),
                )
            )
    return tuple(jobs)


def fig5_workload(
    *, n_files: int = 600, file_kb: float = 100.0, task: str = "maxint"
) -> tuple[Job, ...]:
    """The Figure 5 micro-benchmark: 600 identical single-file tasks.

    Each file is processed independently ("each phone finds the largest
    integer in the file"), i.e. 600 atomic jobs of equal size.
    """
    if n_files < 1:
        raise ValueError("n_files must be >= 1")
    if file_kb <= 0:
        raise ValueError("file_kb must be > 0")
    return tuple(
        Job(
            job_id=f"file-{i:03d}",
            task=task,
            kind=JobKind.ATOMIC,
            executable_kb=5.0,
            input_kb=file_kb,
        )
        for i in range(n_files)
    )


def fig5_testbed(*, seed: int = 5) -> Testbed:
    """Six phones with identical CPUs but very different bandwidths.

    Matches the Figure 5 setup: same clock speed, wireless rates from
    fast WiFi down to slow cellular; the two slowest-link phones are
    the ones removed in the second half of the experiment.
    """
    rng = random.Random(seed)
    technologies = (
        NetworkTechnology.WIFI_A,
        NetworkTechnology.WIFI_G,
        NetworkTechnology.FOUR_G,
        NetworkTechnology.THREE_G,
        NetworkTechnology.THREE_G,
        NetworkTechnology.THREE_G,
    )
    interference = (1.0, 0.9, 1.0, 1.0, 0.75, 0.35)
    phones = tuple(
        PhoneSpec(
            phone_id=f"phone-{i}",
            cpu_mhz=1200.0,
            network=tech,
            location="lab",
            model_name="fig5-identical-cpu",
        )
        for i, tech in enumerate(technologies)
    )
    links = {
        phone.phone_id: WirelessLink.for_technology(
            phone.network,
            interference_factor=interference[i],
            seed=rng.randrange(2**31),
        )
        for i, phone in enumerate(phones)
    }
    return Testbed(phones=phones, links=links)
