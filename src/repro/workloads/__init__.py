"""The paper's evaluation tasks, input generators, and workload mixes."""

from .datagen import (
    integer_file,
    pixel_grid,
    split_text_by_kb,
    text_file,
    text_size_kb,
)
from .mixes import (
    REFERENCE_MHZ,
    Testbed,
    evaluation_workload,
    fig5_testbed,
    fig5_workload,
    paper_base_times,
    paper_task_profiles,
    paper_testbed,
)
from .arrivals import (
    BatchedArrivalStream,
    PoissonArrivalStream,
    batched_arrivals,
    poisson_arrivals,
)
from .loganalysis import LogAnalysisTask, LogReport, machine_log
from .maxint import MaxIntTask
from .photoblur import PhotoBlurTask, box_blur, grid_to_text, text_to_grid
from .primes import PrimeCountTask, is_prime
from .wordcount import WordCountTask

__all__ = [
    "REFERENCE_MHZ",
    "LogAnalysisTask",
    "LogReport",
    "MaxIntTask",
    "machine_log",
    "PhotoBlurTask",
    "PrimeCountTask",
    "Testbed",
    "WordCountTask",
    "BatchedArrivalStream",
    "PoissonArrivalStream",
    "batched_arrivals",
    "box_blur",
    "evaluation_workload",
    "fig5_testbed",
    "fig5_workload",
    "grid_to_text",
    "integer_file",
    "is_prime",
    "paper_base_times",
    "paper_task_profiles",
    "paper_testbed",
    "pixel_grid",
    "poisson_arrivals",
    "split_text_by_kb",
    "text_file",
    "text_size_kb",
    "text_to_grid",
]
