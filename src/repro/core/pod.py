"""Fleet pods: partitioning, sub-instances, and per-pod solves.

A *pod* is a disjoint group of phones that the sharded scheduler
(:mod:`repro.core.sharding`) solves independently with the existing
capacity-search machinery.  This module owns the mechanical pieces:

* :func:`resolve_pod_count` / :func:`partition_phones` — deterministic
  fleet partitioning (round-robin by phone position, so replicated
  testbed fleets spread their phone models evenly across pods);
* :func:`pod_instance` — slice a full :class:`~repro.core.instance.
  SchedulingInstance` down to one pod's (phones, jobs) rectangle, with
  the cost matrix sliced as a dense block instead of rebuilt entry by
  entry;
* :func:`pod_rate_tables` — the blocked one-pass sweep producing the
  per-(pod, job) aggregate tables the job splitter and the
  pod-aggregated LP consume;
* :func:`solve_pod` and the ``_pod_worker_*`` process-pool hooks — one
  pod's capacity search, returning a slim picklable
  :class:`PodSolveReport` whose assignments the parent reassembles
  into the global schedule.

Workers reuse the shared-memory cost-matrix plane of
:mod:`repro.core.shm` (the worker attaches the *full* matrix read-only
and slices its pod's rows per task), and each worker keeps one
long-lived :class:`~repro.core.capacity.CapacitySearch` so its
:class:`~repro.core.arraypool.ArrayPool` recycles packer buffers
across the pods it solves.  After every pod solve the pool must be
clean — :meth:`ArrayPool.leaked_buffers` is asserted zero, mirroring
:func:`repro.core.shm.leaked_segments`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..obs.tracing import Tracer, maybe_span
from .capacity import CapacitySearch, available_cpus
from .instance import SchedulingInstance, _DenseCostMap
from .schedule import Assignment, Schedule

__all__ = [
    "PodSolveReport",
    "PodSpec",
    "assemble_schedule",
    "default_pod_workers",
    "partition_phones",
    "pod_instance",
    "pod_rate_tables",
    "resolve_pod_count",
    "solve_pod",
]

#: ``pods='auto'`` never cuts the fleet into pods smaller than this —
#: below it the per-pod search overhead dominates any parallel win.
_MIN_POD_PHONES = 4


@dataclass(frozen=True)
class PodSpec:
    """One pod's slice of the fleet: phone and job *positions*.

    Positions index ``instance.phones`` / ``instance.jobs`` of the full
    instance, which keeps the spec a few integers regardless of fleet
    scale — the picklable unit of work shipped to pod workers.
    """

    index: int
    phone_positions: tuple[int, ...]
    job_positions: tuple[int, ...]


@dataclass(frozen=True)
class PodSolveReport:
    """Slim picklable outcome of one pod's capacity search.

    ``assignments`` is the pod schedule flattened to
    ``(phone_id, job_id, task, input_kb, whole)`` tuples in placement
    order; the parent rebuilds :class:`~repro.core.schedule.Assignment`
    records and concatenates pods in index order.  ``leaked_buffers``
    is the solving search's :meth:`~repro.core.arraypool.ArrayPool.
    leaked_buffers` *after* the solve — always 0 unless the recycling
    discipline regressed.
    """

    index: int
    assignments: tuple[tuple[str, str, str, float, bool], ...]
    capacity_ms: float
    max_height_ms: float
    lower_bound_ms: float
    packer_passes: int
    bisection_steps: int
    shortcircuit_skips: int
    assumed_feasible: int
    warm_start_used: bool
    speculative_packs: int
    kernel: str
    wall_ms: float
    leaked_buffers: int
    pool_hits: int
    pool_misses: int
    #: Worker-side trace spans (plain dicts) for pooled solves with
    #: tracing armed; the parent adopts them parent-linked.  Serial
    #: solves record straight into the caller's tracer and leave this
    #: empty.
    spans: tuple = ()

    def build_assignments(self) -> tuple[Assignment, ...]:
        """Rehydrate the flattened assignment tuples."""
        return tuple(
            Assignment(
                phone_id=phone_id,
                job_id=job_id,
                task=task,
                input_kb=input_kb,
                whole=whole,
            )
            for phone_id, job_id, task, input_kb, whole in self.assignments
        )


def resolve_pod_count(pods: int | str, n_phones: int) -> int:
    """Resolve a ``pods`` selector to a concrete pod count.

    ``'auto'`` targets one pod per available CPU (see
    :func:`~repro.core.capacity.available_cpus`, which honours the
    ``REPRO_CPUS`` override) without cutting pods smaller than
    ``_MIN_POD_PHONES`` phones; integers pass through.  The result is
    always clamped to ``[1, n_phones]``.
    """
    if n_phones < 1:
        raise ValueError("n_phones must be >= 1")
    if pods == "auto":
        want = min(available_cpus(), n_phones // _MIN_POD_PHONES)
    else:
        want = int(pods)
        if want < 1:
            raise ValueError(f"pods must be >= 1 or 'auto', got {pods!r}")
    return max(1, min(want, n_phones))


def partition_phones(
    n_phones: int, n_pods: int
) -> tuple[tuple[int, ...], ...]:
    """Deterministic round-robin phone partition: ``pos % n_pods``.

    Fleets built by replicating a base set of phone models (the paper
    testbed, the benches) list the replicas consecutively, so the
    round-robin deal gives every pod a near-identical model mix —
    which keeps per-pod capacities comparable without inspecting the
    cost matrix.
    """
    if not 1 <= n_pods <= n_phones:
        raise ValueError(
            f"n_pods must be in [1, {n_phones}], got {n_pods}"
        )
    return tuple(
        tuple(range(start, n_phones, n_pods)) for start in range(n_pods)
    )


def pod_instance(
    instance: SchedulingInstance,
    phone_positions: tuple[int, ...],
    job_positions: tuple[int, ...],
) -> SchedulingInstance:
    """The sub-instance spanning one pod's (phones, jobs) rectangle.

    The cost matrix is sliced as one dense block (``np.ix_``) into a
    fresh :class:`~repro.core.instance._DenseCostMap`, so the
    sub-instance costs one rectangle copy instead of a per-entry
    rebuild; validation in the sub-instance constructor is the cheap
    dense path.
    """
    phones = tuple(instance.phones[i] for i in phone_positions)
    jobs = tuple(instance.jobs[j] for j in job_positions)
    block = instance.c_matrix()[
        np.ix_(
            np.asarray(phone_positions, dtype=np.intp),
            np.asarray(job_positions, dtype=np.intp),
        )
    ]
    dense = _DenseCostMap(
        tuple(phone.phone_id for phone in phones),
        tuple(job.job_id for job in jobs),
        block,
    )
    b_table = {phone.phone_id: instance.b(phone.phone_id) for phone in phones}
    return SchedulingInstance(
        jobs=jobs, phones=phones, b_ms_per_kb=b_table, c_ms_per_kb=dense
    )


def pod_rate_tables(
    instance: SchedulingInstance,
    pods: tuple[tuple[int, ...], ...],
    *,
    block_rows: int = 128,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-pod aggregate tables in one blocked pass over the matrix.

    Returns ``(bmin, cmin, agg)``:

    * ``bmin[p]`` — cheapest executable-shipping rate in pod ``p``
      (``min_i b_i``);
    * ``cmin[p, j]`` — componentwise-best per-KB rate
      ``min_{i in pod} (b_i + c_ij)`` (the pod-LP's super-machine);
    * ``agg[p, j]`` — the pod's magical-bin aggregate rate
      ``sum_{i in pod} 1 / (b_i + c_ij)`` (non-positive rates
      contribute 0, matching :meth:`SchedulingInstance.
      capacity_bounds`), which prices a job's processing time inside
      the pod for the greedy splitter.

    The sweep walks the cost matrix in row blocks so no full
    ``phones x jobs`` temporary beyond one block is materialised —
    at 4000 x 20000 the full ``b_i + c_ij`` matrix alone is 640 MB.
    """
    c_mat = instance.c_matrix()
    b = instance.b_array()
    n_phones, n_jobs = c_mat.shape
    n_pods = len(pods)
    pod_of = np.empty(n_phones, dtype=np.intp)
    pod_of.fill(-1)
    for p, members in enumerate(pods):
        idx = np.asarray(members, dtype=np.intp)
        pod_of[idx] = p
    if (pod_of < 0).any():
        raise ValueError("pods must cover every phone position")
    bmin = np.full(n_pods, np.inf)
    for p, members in enumerate(pods):
        bmin[p] = b[np.asarray(members, dtype=np.intp)].min()
    cmin = np.full((n_pods, n_jobs), np.inf)
    agg = np.zeros((n_pods, n_jobs))
    for start in range(0, n_phones, block_rows):
        stop = min(n_phones, start + block_rows)
        rate = b[start:stop, None] + c_mat[start:stop]
        inv = np.zeros_like(rate)
        with np.errstate(over="ignore"):
            np.divide(1.0, rate, out=inv, where=rate > 0)
        for offset in range(stop - start):
            p = pod_of[start + offset]
            np.minimum(cmin[p], rate[offset], out=cmin[p])
            agg[p] += inv[offset]
    return bmin, cmin, agg


def solve_pod(
    instance: SchedulingInstance,
    spec: PodSpec,
    search: CapacitySearch,
    *,
    warm_hint_ms: float | None = None,
    tracer: Tracer | None = None,
) -> PodSolveReport:
    """Run one pod's capacity search and flatten the outcome.

    ``search`` is reused across calls (per worker process, or the
    sharded scheduler's serial solver) so its array pool recycles the
    packer's dense mirrors from pod to pod; the pool is asserted clean
    after every solve.

    ``tracer`` must be the tracer of the *search's own* telemetry
    facade (or None): the ``pod_solve`` span it opens is the stack
    parent the search's ``capacity_search`` span nests under.
    """
    started = time.perf_counter()
    with maybe_span(
        tracer,
        "pod_solve",
        category="pod",
        process=f"pods/pod-{spec.index}",
        pod=spec.index,
        phones=len(spec.phone_positions),
        jobs=len(spec.job_positions),
    ):
        sub = pod_instance(
            instance, spec.phone_positions, spec.job_positions
        )
        result = search.run(sub, warm_hint_ms=warm_hint_ms)
    wall_ms = (time.perf_counter() - started) * 1000.0
    leaked = search.array_pool.leaked_buffers()
    if leaked:
        raise RuntimeError(
            f"pod {spec.index}: {leaked} array-pool buffer(s) leaked "
            "after the capacity search released its packer"
        )
    pool_stats = search.array_pool.stats()
    return PodSolveReport(
        index=spec.index,
        assignments=tuple(
            (a.phone_id, a.job_id, a.task, a.input_kb, a.whole)
            for a in result.schedule
        ),
        capacity_ms=result.capacity_ms,
        max_height_ms=result.max_height_ms,
        lower_bound_ms=result.lower_bound_ms,
        packer_passes=result.packer_passes,
        bisection_steps=result.bisection_steps,
        shortcircuit_skips=result.shortcircuit_skips,
        assumed_feasible=result.assumed_feasible,
        warm_start_used=result.warm_start_used,
        speculative_packs=result.speculative_packs,
        kernel=result.kernel,
        wall_ms=wall_ms,
        leaked_buffers=leaked,
        pool_hits=pool_stats["hits"],
        pool_misses=pool_stats["misses"],
    )


def assemble_schedule(reports: list[PodSolveReport]) -> Schedule:
    """Concatenate pod schedules into the global one, pod-index order.

    Pods own disjoint phones, so the union is trivially a valid
    schedule whenever each pod schedule is; ordering by pod index
    (then each pod's own placement order) keeps the result
    deterministic across pool and serial execution.
    """
    assignments: list[Assignment] = []
    for report in sorted(reports, key=lambda r: r.index):
        assignments.extend(report.build_assignments())
    return Schedule(assignments)


# -- process-pool hooks ---------------------------------------------------
#
# The parent publishes the *full* instance once per round — through a
# shared-memory segment when available (see ``_shared_probe_payload``
# in :mod:`repro.core.capacity`) — and ships each pod as a few integer
# tuples.  Workers rebuild the instance against the mapped pages at
# init, then slice their pod's rectangle per task.

_POD_INSTANCE: SchedulingInstance | None = None
_POD_SEARCH: CapacitySearch | None = None
_POD_TRACER: Tracer | None = None


def _pod_worker_init(payload, search_kwargs: dict, trace_run_id=None) -> None:
    """Build the worker's instance view and long-lived search.

    ``trace_run_id`` (non-None iff the parent armed tracing) gives the
    worker its own telemetry facade with a tracer; each solve's spans
    ride back on :attr:`PodSolveReport.spans` for parent adoption.
    """
    global _POD_INSTANCE, _POD_SEARCH, _POD_TRACER
    from .capacity import _rebuild_probe_instance

    _POD_INSTANCE = _rebuild_probe_instance(payload)
    telemetry = None
    if trace_run_id is not None:
        from ..obs.telemetry import Telemetry

        telemetry = Telemetry.create(run_id=trace_run_id, tracing=True)
        _POD_TRACER = telemetry.tracer
    else:
        _POD_TRACER = None
    _POD_SEARCH = CapacitySearch(**search_kwargs, telemetry=telemetry)


def _pod_worker_solve(task) -> PodSolveReport:
    """One pod solve in a worker process."""
    import dataclasses

    index, phone_positions, job_positions, warm_hint_ms = task
    spec = PodSpec(
        index=index,
        phone_positions=tuple(phone_positions),
        job_positions=tuple(job_positions),
    )
    tracer = _POD_TRACER
    if tracer is not None:
        # Every span this solve records lands in the pod's trace lane.
        tracer.default_process = f"pods/pod-{index}"
    report = solve_pod(
        _POD_INSTANCE,
        spec,
        _POD_SEARCH,
        warm_hint_ms=warm_hint_ms,
        tracer=tracer,
    )
    if tracer is not None:
        report = dataclasses.replace(
            report, spans=tuple(tracer.drain_dicts())
        )
    return report


def default_pod_workers(n_pods: int) -> int:
    """Pool size for ``pod_workers='auto'``: one per pod, CPU-capped."""
    return max(1, min(available_cpus(), n_pods))
