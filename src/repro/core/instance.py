"""Scheduling instances: the (jobs, phones, b, c) bundle schedulers consume.

A :class:`SchedulingInstance` is an immutable snapshot of everything the
central server knows at a scheduling instant: the set of jobs awaiting
scheduling (new arrivals plus the failed-task list ``F_A``), the set of
plugged-in phones, the measured per-KB transfer time ``b_i`` for each
phone, and the predicted per-KB execution time ``c_ij`` for each
(phone, job) pair.  Every scheduler in :mod:`repro.core` — the greedy
CBP scheduler, the baselines, and the LP relaxation — takes one of these
as input, which keeps comparisons honest: they all see exactly the same
information.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from .model import Job, PhoneSpec, completion_time
from .prediction import RuntimePredictor

__all__ = ["SchedulingInstance"]


@dataclass(frozen=True)
class SchedulingInstance:
    """Immutable input to a scheduling round.

    Parameters
    ----------
    jobs:
        Jobs to schedule, in arrival order.
    phones:
        Phones currently available (plugged in).
    b_ms_per_kb:
        ``b_i`` per phone id — time to copy 1 KB from the server to the
        phone, from the most recent bandwidth measurement.
    c_ms_per_kb:
        ``c_ij`` per (phone id, job id) — predicted time to process 1 KB
        of the job's input on that phone.
    """

    jobs: tuple[Job, ...]
    phones: tuple[PhoneSpec, ...]
    b_ms_per_kb: Mapping[str, float]
    c_ms_per_kb: Mapping[tuple[str, str], float]

    def __post_init__(self) -> None:
        if not self.phones:
            raise ValueError("an instance needs at least one phone")
        if not self.jobs:
            raise ValueError("an instance needs at least one job")
        job_ids = [job.job_id for job in self.jobs]
        if len(set(job_ids)) != len(job_ids):
            raise ValueError("duplicate job ids in instance")
        phone_ids = [phone.phone_id for phone in self.phones]
        if len(set(phone_ids)) != len(phone_ids):
            raise ValueError("duplicate phone ids in instance")
        for phone in self.phones:
            b = self.b_ms_per_kb.get(phone.phone_id)
            if b is None:
                raise ValueError(f"missing b_i for phone {phone.phone_id!r}")
            if not math.isfinite(b) or b < 0:
                raise ValueError(f"b_i for {phone.phone_id!r} must be >= 0, got {b!r}")
            for job in self.jobs:
                c = self.c_ms_per_kb.get((phone.phone_id, job.job_id))
                if c is None:
                    raise ValueError(
                        f"missing c_ij for ({phone.phone_id!r}, {job.job_id!r})"
                    )
                if not math.isfinite(c) or c < 0:
                    raise ValueError(
                        f"c_ij for ({phone.phone_id!r}, {job.job_id!r}) "
                        f"must be >= 0, got {c!r}"
                    )

    @classmethod
    def build(
        cls,
        jobs: Iterable[Job],
        phones: Iterable[PhoneSpec],
        b_ms_per_kb: Mapping[str, float],
        predictor: RuntimePredictor,
    ) -> "SchedulingInstance":
        """Construct an instance using a predictor to fill the c table."""
        jobs = tuple(jobs)
        phones = tuple(phones)
        c = {
            (phone.phone_id, job.job_id): predictor.predict_ms_per_kb(phone, job.task)
            for phone in phones
            for job in jobs
        }
        return cls(
            jobs=jobs,
            phones=phones,
            b_ms_per_kb=dict(b_ms_per_kb),
            c_ms_per_kb=c,
        )

    # -- lookups ---------------------------------------------------------

    def job(self, job_id: str) -> Job:
        for job in self.jobs:
            if job.job_id == job_id:
                return job
        raise KeyError(f"no job {job_id!r} in instance")

    def phone(self, phone_id: str) -> PhoneSpec:
        for phone in self.phones:
            if phone.phone_id == phone_id:
                return phone
        raise KeyError(f"no phone {phone_id!r} in instance")

    def b(self, phone_id: str) -> float:
        return self.b_ms_per_kb[phone_id]

    def c(self, phone_id: str, job_id: str) -> float:
        return self.c_ms_per_kb[(phone_id, job_id)]

    def cost(self, phone_id: str, job_id: str, input_kb: float | None = None) -> float:
        """Equation (1) for a partition of ``job_id`` on ``phone_id``.

        ``input_kb`` defaults to the job's full input ``L_j``.
        """
        job = self.job(job_id)
        x = job.input_kb if input_kb is None else input_kb
        return completion_time(
            job.executable_kb, x, self.b(phone_id), self.c(phone_id, job_id)
        )

    def marginal_cost(self, phone_id: str, job_id: str, input_kb: float) -> float:
        """Per-partition cost *excluding* the executable shipping term.

        Useful when a phone already holds the executable for a job and
        receives an additional partition of the same job.
        """
        return input_kb * (self.b(phone_id) + self.c(phone_id, job_id))

    # -- derived quantities ----------------------------------------------

    def slowest_phone(self) -> PhoneSpec:
        """The reference phone ``s`` used to order items in Algorithm 1."""
        return min(self.phones, key=lambda p: (p.cpu_mhz, p.phone_id))

    def total_input_kb(self) -> float:
        return sum(job.input_kb for job in self.jobs)

    def atomic_jobs(self) -> tuple[Job, ...]:
        return tuple(job for job in self.jobs if job.is_atomic)

    def breakable_jobs(self) -> tuple[Job, ...]:
        return tuple(job for job in self.jobs if job.is_breakable)
