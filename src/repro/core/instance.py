"""Scheduling instances: the (jobs, phones, b, c) bundle schedulers consume.

A :class:`SchedulingInstance` is an immutable snapshot of everything the
central server knows at a scheduling instant: the set of jobs awaiting
scheduling (new arrivals plus the failed-task list ``F_A``), the set of
plugged-in phones, the measured per-KB transfer time ``b_i`` for each
phone, and the predicted per-KB execution time ``c_ij`` for each
(phone, job) pair.  Every scheduler in :mod:`repro.core` — the greedy
CBP scheduler, the baselines, and the LP relaxation — takes one of these
as input, which keeps comparisons honest: they all see exactly the same
information.

Hot-path layout
---------------
The paper argues "a rudimentary low cost PC will suffice" for the
central server; at fleet scale (thousands of phones, thousands of jobs)
that only holds if the per-(phone, job) cost reads the schedulers issue
millions of times per search are O(1) array reads rather than dict
chains.  The authoritative storage is a dense float64 ``c`` matrix
(phones × jobs): ``__post_init__`` validates the input tables and pins
the matrix once, and every derived view — the ``b_i + c_ij`` per-KB rate
matrix (Equation 1), its transpose, the row lists the scalar packer
reads, the capacity bracket — is computed lazily from it with exactly
the same floating-point operation order as the original dict-chain code.
Schedulers built on these caches therefore produce byte-identical
schedules (see ``tests/core/test_golden_schedule.py``); the matrix also
travels through :mod:`repro.core.shm` to probe workers without pickling
the cost table element by element.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

import numpy as np

from .model import Job, PhoneSpec, completion_time
from .prediction import RuntimePredictor

__all__ = ["SchedulingInstance"]


class _DenseCostMap(Mapping):
    """A ``(phone_id, job_id) -> c_ij`` mapping backed by a dense matrix.

    Built by :meth:`SchedulingInstance.build` instead of a plain dict so
    fleet-scale instances do not pay for millions of tuple-keyed dict
    entries; behaves exactly like the dict it replaces (``Mapping``
    supplies ``items``/``get``/``__eq__``, and ``__getitem__`` returns
    plain Python floats), and hands its matrix to the instance's dense
    caches without any per-element work.
    """

    __slots__ = ("_phone_ids", "_job_ids", "_mat", "_phone_pos", "_job_pos")

    def __init__(
        self,
        phone_ids: tuple[str, ...],
        job_ids: tuple[str, ...],
        rows,
    ) -> None:
        self._phone_ids = phone_ids
        self._job_ids = job_ids
        mat = np.asarray(rows, dtype=np.float64)
        if mat.ndim != 2 or mat.shape != (len(phone_ids), len(job_ids)):
            mat = mat.reshape((len(phone_ids), len(job_ids)))
        mat.setflags(write=False)
        self._mat = mat
        self._phone_pos = {pid: i for i, pid in enumerate(phone_ids)}
        self._job_pos = {jid: i for i, jid in enumerate(job_ids)}

    def __getitem__(self, key: tuple[str, str]) -> float:
        phone_id, job_id = key
        return float(self._mat[self._phone_pos[phone_id], self._job_pos[job_id]])

    def __iter__(self):
        for phone_id in self._phone_ids:
            for job_id in self._job_ids:
                yield (phone_id, job_id)

    def __len__(self) -> int:
        return len(self._phone_ids) * len(self._job_ids)

    def aligned_matrix(
        self, phone_ids: tuple[str, ...], job_ids: tuple[str, ...]
    ):
        """The dense float64 matrix, if it matches the id ordering."""
        if phone_ids == self._phone_ids and job_ids == self._job_ids:
            return self._mat
        return None

    def __getstate__(self):
        return {
            "phone_ids": self._phone_ids,
            "job_ids": self._job_ids,
            "mat": self._mat,
        }

    def __setstate__(self, state):
        self._phone_ids = state["phone_ids"]
        self._job_ids = state["job_ids"]
        mat = state["mat"]
        mat.setflags(write=False)
        self._mat = mat
        self._phone_pos = {pid: i for i, pid in enumerate(self._phone_ids)}
        self._job_pos = {jid: i for i, jid in enumerate(self._job_ids)}


class _LazyRowList:
    """Row-indexed view of a matrix that materializes rows on demand.

    ``rows[i]`` is ``matrix[i].tolist()``, converted on first access
    and cached — readers see plain Python floats, bit-identical to the
    matrix, without paying an up-front full-matrix conversion.
    """

    __slots__ = ("_mat", "_rows")

    def __init__(self, mat) -> None:
        self._mat = mat
        self._rows: list[list[float] | None] = [None] * mat.shape[0]

    def __len__(self) -> int:
        return len(self._rows)

    def __getitem__(self, i: int) -> list[float]:
        row = self._rows[i]
        if row is None:
            row = self._rows[i] = self._mat[i].tolist()
        return row

    def __iter__(self):
        return (self[i] for i in range(len(self._rows)))


@dataclass(frozen=True)
class SchedulingInstance:
    """Immutable input to a scheduling round.

    Parameters
    ----------
    jobs:
        Jobs to schedule, in arrival order.
    phones:
        Phones currently available (plugged in).
    b_ms_per_kb:
        ``b_i`` per phone id — time to copy 1 KB from the server to the
        phone, from the most recent bandwidth measurement.
    c_ms_per_kb:
        ``c_ij`` per (phone id, job id) — predicted time to process 1 KB
        of the job's input on that phone.
    """

    jobs: tuple[Job, ...]
    phones: tuple[PhoneSpec, ...]
    b_ms_per_kb: Mapping[str, float]
    c_ms_per_kb: Mapping[tuple[str, str], float]

    def __post_init__(self) -> None:
        if not self.phones:
            raise ValueError("an instance needs at least one phone")
        if not self.jobs:
            raise ValueError("an instance needs at least one job")
        job_ids = tuple(job.job_id for job in self.jobs)
        if len(set(job_ids)) != len(job_ids):
            raise ValueError("duplicate job ids in instance")
        phone_ids = tuple(phone.phone_id for phone in self.phones)
        if len(set(phone_ids)) != len(phone_ids):
            raise ValueError("duplicate phone ids in instance")

        b_vec, c_mat = self._validate_and_densify(phone_ids, job_ids)
        c_mat.setflags(write=False)

        # Dense hot-path caches (the dataclass is frozen, hence setattr).
        set_ = object.__setattr__
        set_(self, "_job_ids", job_ids)
        set_(self, "_phone_ids", phone_ids)
        set_(self, "_job_by_id", dict(zip(job_ids, self.jobs)))
        set_(self, "_phone_by_id", dict(zip(phone_ids, self.phones)))
        set_(self, "_job_pos", {jid: i for i, jid in enumerate(job_ids)})
        set_(self, "_phone_pos", {pid: i for i, pid in enumerate(phone_ids)})
        set_(self, "_b_vec", b_vec)
        set_(self, "_c_mat", c_mat)
        set_(self, "_bounds_cache", None)
        set_(self, "_slowest_cache", None)

    def _validate_and_densify(
        self, phone_ids: tuple[str, ...], job_ids: tuple[str, ...]
    ):
        """Check every b/c entry and return the dense ``(b, c)`` tables.

        Validation order matches the original implementation exactly
        (phone-major, ``b_i`` before that phone's ``c`` row) so the same
        malformed input raises the same error; the clean common case is
        one vectorized finite/non-negative sweep over the matrix.
        """
        dense = (
            self.c_ms_per_kb.aligned_matrix(phone_ids, job_ids)
            if isinstance(self.c_ms_per_kb, _DenseCostMap)
            else None
        )
        b_vec: list[float] = []
        if dense is not None:
            valid = np.isfinite(dense) & (dense >= 0.0)
            bad_row = (
                None
                if bool(valid.all())
                else int(np.flatnonzero(~valid.all(axis=1))[0])
            )
            for pos, phone in enumerate(self.phones):
                b = self.b_ms_per_kb.get(phone.phone_id)
                if b is None:
                    raise ValueError(
                        f"missing b_i for phone {phone.phone_id!r}"
                    )
                if not math.isfinite(b) or b < 0:
                    raise ValueError(
                        f"b_i for {phone.phone_id!r} must be >= 0, got {b!r}"
                    )
                b_vec.append(b)
                if bad_row is not None and pos == bad_row:
                    self._raise_bad_c(phone.phone_id, dense[pos].tolist())
            return b_vec, dense
        c_rows: list[list[float]] = []
        for phone in self.phones:
            b = self.b_ms_per_kb.get(phone.phone_id)
            if b is None:
                raise ValueError(f"missing b_i for phone {phone.phone_id!r}")
            if not math.isfinite(b) or b < 0:
                raise ValueError(f"b_i for {phone.phone_id!r} must be >= 0, got {b!r}")
            b_vec.append(b)
            row = []
            for job in self.jobs:
                c = self.c_ms_per_kb.get((phone.phone_id, job.job_id))
                if c is None:
                    raise ValueError(
                        f"missing c_ij for ({phone.phone_id!r}, {job.job_id!r})"
                    )
                if not math.isfinite(c) or c < 0:
                    raise ValueError(
                        f"c_ij for ({phone.phone_id!r}, {job.job_id!r}) "
                        f"must be >= 0, got {c!r}"
                    )
                row.append(c)
            c_rows.append(row)
        c_mat = np.asarray(c_rows, dtype=np.float64).reshape(
            (len(phone_ids), len(job_ids))
        )
        return b_vec, c_mat

    def _raise_bad_c(self, phone_id: str, row: list[float]) -> None:
        for job, c in zip(self.jobs, row):
            if not math.isfinite(c) or c < 0:
                raise ValueError(
                    f"c_ij for ({phone_id!r}, {job.job_id!r}) "
                    f"must be >= 0, got {c!r}"
                )
        raise AssertionError("row flagged invalid but no bad entry found")

    @classmethod
    def build(
        cls,
        jobs: Iterable[Job],
        phones: Iterable[PhoneSpec],
        b_ms_per_kb: Mapping[str, float],
        predictor: RuntimePredictor,
    ) -> "SchedulingInstance":
        """Construct an instance using a predictor to fill the c table.

        Predictions depend on (phone, task), not (phone, job), so the
        predictor is consulted once per (phone, task) pair and the value
        broadcast across that task's jobs with one vectorized gather per
        phone — at fleet scale this collapses millions of predictor
        calls (and millions of Python-loop iterations) into a few
        thousand.  The (phone, task) consultation order is the same
        first-occurrence order the original job-scan used, so stateful
        predictors see an identical call sequence.
        """
        jobs = tuple(jobs)
        phones = tuple(phones)
        task_pos: dict[str, int] = {}
        for job in jobs:
            if job.task not in task_pos:
                task_pos[job.task] = len(task_pos)
        tasks = list(task_pos)
        col_task = np.fromiter(
            (task_pos[job.task] for job in jobs),
            dtype=np.intp,
            count=len(jobs),
        )
        mat = np.empty((len(phones), len(jobs)), dtype=np.float64)
        for pos, phone in enumerate(phones):
            by_task = np.array(
                [predictor.predict_ms_per_kb(phone, task) for task in tasks],
                dtype=np.float64,
            )
            np.take(by_task, col_task, out=mat[pos])
        c = _DenseCostMap(
            tuple(phone.phone_id for phone in phones),
            tuple(job.job_id for job in jobs),
            mat,
        )
        return cls(
            jobs=jobs,
            phones=phones,
            b_ms_per_kb=dict(b_ms_per_kb),
            c_ms_per_kb=c,
        )

    # -- lookups ---------------------------------------------------------

    def job(self, job_id: str) -> Job:
        try:
            return self._job_by_id[job_id]
        except KeyError:
            raise KeyError(f"no job {job_id!r} in instance") from None

    def phone(self, phone_id: str) -> PhoneSpec:
        try:
            return self._phone_by_id[phone_id]
        except KeyError:
            raise KeyError(f"no phone {phone_id!r} in instance") from None

    def b(self, phone_id: str) -> float:
        return self._b_vec[self._phone_pos[phone_id]]

    def c(self, phone_id: str, job_id: str) -> float:
        return float(
            self._c_mat[self._phone_pos[phone_id], self._job_pos[job_id]]
        )

    def cost(self, phone_id: str, job_id: str, input_kb: float | None = None) -> float:
        """Equation (1) for a partition of ``job_id`` on ``phone_id``.

        ``input_kb`` defaults to the job's full input ``L_j``.
        """
        job = self.job(job_id)
        x = job.input_kb if input_kb is None else input_kb
        return completion_time(
            job.executable_kb, x, self.b(phone_id), self.c(phone_id, job_id)
        )

    def marginal_cost(self, phone_id: str, job_id: str, input_kb: float) -> float:
        """Per-partition cost *excluding* the executable shipping term.

        Useful when a phone already holds the executable for a job and
        receives an additional partition of the same job.
        """
        return input_kb * (self.b(phone_id) + self.c(phone_id, job_id))

    # -- hot-path accessors ----------------------------------------------
    #
    # Dense, position-indexed views for schedulers that convert ids to
    # positions once and then work on arrays.  Callers must treat the
    # returned lists and arrays as read-only.  Every list view is the
    # ``.tolist()`` of the authoritative float64 matrix, so list readers
    # and matrix readers see bit-identical values.

    def job_position(self, job_id: str) -> int:
        return self._job_pos[job_id]

    def phone_position(self, phone_id: str) -> int:
        return self._phone_pos[phone_id]

    def b_vector(self) -> list[float]:
        """``b_i`` by phone position, aligned with ``self.phones``."""
        return self._b_vec

    def b_array(self):
        """``b_i`` as a dense float64 ndarray, aligned with ``phones``."""
        cached = getattr(self, "_b_arr", None)
        if cached is None:
            cached = np.asarray(self._b_vec, dtype=np.float64)
            cached.setflags(write=False)
            object.__setattr__(self, "_b_arr", cached)
        return cached

    def c_matrix(self):
        """``c_ij`` as a dense float64 ndarray (phones × jobs)."""
        return self._c_mat

    def c_rows(self) -> list[list[float]]:
        """``c_ij`` rows by phone position, columns by job position."""
        cached = getattr(self, "_c_rows_cache", None)
        if cached is None:
            cached = self._c_mat.tolist()
            object.__setattr__(self, "_c_rows_cache", cached)
        return cached

    def c_row(self, phone_pos: int) -> list[float]:
        """One phone's ``c_ij`` row without materializing every row."""
        cached = getattr(self, "_c_rows_cache", None)
        if cached is not None:
            return cached[phone_pos]
        return self._c_mat[phone_pos].tolist()

    def per_kb_rows(self) -> "_LazyRowList":
        """``b_i + c_ij`` rows by phone position (Equation 1's rate).

        Returned as a lazily-materializing row list: converting the
        full matrix to Python lists costs ~150 ms at the paper's
        1000 × 5000 fleet scale, but the packers' scalar paths only
        touch the rows of phones they actually probe.  Each row is
        converted on first access and cached for the instance's life,
        so every reader still sees plain Python floats (bit-identical
        to the matrix values).
        """
        cached = getattr(self, "_per_kb_rows_cache", None)
        if cached is None:
            cached = _LazyRowList(self.per_kb_matrix())
            object.__setattr__(self, "_per_kb_rows_cache", cached)
        return cached

    def per_kb_matrix(self):
        """``b_i + c_ij`` as a dense float64 ndarray (phones × jobs).

        One elementwise float64 broadcast add over the c matrix — the
        same adds, in the same IEEE-754 arithmetic, as the original
        per-element ``b_i + c`` list comprehension, so matrix readers
        and row-list readers see bit-identical rates.  Callers must
        treat the array as read-only.
        """
        cached = getattr(self, "_per_kb_matrix", None)
        if cached is None:
            cached = self.b_array()[:, None] + self._c_mat
            cached.setflags(write=False)
            object.__setattr__(self, "_per_kb_matrix", cached)
        return cached

    def per_kb_matrix_t(self):
        """C-contiguous transpose of :meth:`per_kb_matrix` (jobs × phones).

        The vectorized packer scans job columns across phones; caching
        the transpose here means one 8·P·J-byte copy per instance
        instead of one per packer construction.
        """
        cached = getattr(self, "_per_kb_matrix_t", None)
        if cached is None:
            cached = np.ascontiguousarray(self.per_kb_matrix().T)
            cached.setflags(write=False)
            object.__setattr__(self, "_per_kb_matrix_t", cached)
        return cached

    def job_load_arrays(self):
        """``(executable_kb, input_kb)`` float64 arrays by job position."""
        cached = getattr(self, "_job_load_arrays", None)
        if cached is None:
            exe = np.asarray(
                [job.executable_kb for job in self.jobs], dtype=np.float64
            )
            load = np.asarray(
                [job.input_kb for job in self.jobs], dtype=np.float64
            )
            exe.setflags(write=False)
            load.setflags(write=False)
            cached = (exe, load)
            object.__setattr__(self, "_job_load_arrays", cached)
        return cached

    # -- derived quantities ----------------------------------------------

    def slowest_phone(self) -> PhoneSpec:
        """The reference phone ``s`` used to order items in Algorithm 1."""
        cached = self._slowest_cache
        if cached is None:
            cached = min(self.phones, key=lambda p: (p.cpu_mhz, p.phone_id))
            object.__setattr__(self, "_slowest_cache", cached)
        return cached

    def total_input_kb(self) -> float:
        return sum(job.input_kb for job in self.jobs)

    def atomic_jobs(self) -> tuple[Job, ...]:
        return tuple(job for job in self.jobs if job.is_atomic)

    def breakable_jobs(self) -> tuple[Job, ...]:
        return tuple(job for job in self.jobs if job.is_breakable)

    def capacity_bounds(self) -> tuple[float, float]:
        """The (lower, upper) capacity bracket for the binary search.

        Computed once per instance and cached; the arithmetic mirrors
        the original per-call implementation term for term so the
        bracket (and therefore every bisection midpoint) is identical.

        * **Upper bound** — all items stacked on the *worst* bin: the
          maximum over phones of the total Equation-1 cost of running
          every job whole on that phone.
        * **Lower bound** — the paper's "magical bin" with the fleet's
          aggregate processing and bandwidth capability and no
          executable-shipping cost.
        """
        cached = self._bounds_cache
        if cached is not None:
            return cached
        # Vectorized, but bit-identical to the original Python loops:
        # every term is the same elementwise float64 expression
        # (``per_kb`` entries ARE ``b_i + c_ij``), and ``np.cumsum``
        # accumulates sequentially, matching ``sum()``'s left-to-right
        # adds exactly.  Skipped terms (non-positive rates) become
        # ``+ 0.0``, which is exact on the positive partial sums
        # involved.
        #
        # The matrix is walked in row *blocks* so no full phones × jobs
        # temporary is ever materialised (three of them dominated this
        # function's time at fleet scale).  Per-row cumsums are
        # independent, so blocking the upper bound is trivially exact;
        # the per-job aggregate seeds each block's axis-0 cumsum with
        # the running total as row zero, which reproduces the global
        # sequential add order element for element.
        jobs = self.jobs
        pkb = self.per_kb_matrix()
        b = self.b_array()
        exe, load = self.job_load_arrays()
        n_phones, n_jobs = pkb.shape
        block = 128
        upper = -math.inf
        aggregate = np.zeros(n_jobs, dtype=np.float64)
        for s in range(0, n_phones, block):
            e = min(n_phones, s + block)
            pb = pkb[s:e]
            per_phone = exe[None, :] * b[s:e, None] + load[None, :] * pb
            blk_max = float(np.cumsum(per_phone, axis=1)[:, -1].max())
            if blk_max > upper:
                upper = blk_max
            rates = np.zeros((e - s + 1, n_jobs), dtype=np.float64)
            rates[0] = aggregate
            # Subnormal per-KB costs overflow the reciprocal to inf —
            # exactly what scalar Python's ``1.0 / pkb`` returns
            # (silently), and inf aggregates still yield the same 0.0
            # contribution below — so the warning carries no signal.
            with np.errstate(over="ignore"):
                np.divide(1.0, pb, out=rates[1:], where=pb > 0)
            aggregate = np.cumsum(rates, axis=0)[-1]
        if n_phones == 0:
            # Match the single-shot formulation's empty-reduction error.
            upper = float(np.empty((0,)).max())
        contrib = np.zeros(n_jobs, dtype=np.float64)
        np.divide(load, aggregate, out=contrib, where=aggregate > 0)
        lower = float(np.cumsum(contrib)[-1])
        # The bracket must be well-ordered even for degenerate instances.
        lower = min(lower, upper)
        bounds = (lower, upper)
        object.__setattr__(self, "_bounds_cache", bounds)
        return bounds
