"""Scheduling instances: the (jobs, phones, b, c) bundle schedulers consume.

A :class:`SchedulingInstance` is an immutable snapshot of everything the
central server knows at a scheduling instant: the set of jobs awaiting
scheduling (new arrivals plus the failed-task list ``F_A``), the set of
plugged-in phones, the measured per-KB transfer time ``b_i`` for each
phone, and the predicted per-KB execution time ``c_ij`` for each
(phone, job) pair.  Every scheduler in :mod:`repro.core` — the greedy
CBP scheduler, the baselines, and the LP relaxation — takes one of these
as input, which keeps comparisons honest: they all see exactly the same
information.

Hot-path layout
---------------
The paper argues "a rudimentary low cost PC will suffice" for the
central server; at fleet scale (thousands of phones, thousands of jobs)
that only holds if the per-(phone, job) cost reads the schedulers issue
millions of times per search are O(1) array reads rather than dict
chains.  ``__post_init__`` therefore builds, once per instance:

* id → position index maps and id → object maps for phones and jobs
  (so :meth:`job` / :meth:`phone` are dict hits, not linear scans);
* a dense ``b`` vector and dense per-phone ``c`` rows aligned with the
  phone/job tuples;
* a dense ``b_i + c_ij`` matrix (the packer's per-KB rate, Equation 1);
* a lazily computed, cached capacity bracket
  (:meth:`capacity_bounds`) so the binary search and its callers never
  recompute the O(P×J) bounds twice.

All derived values are produced with exactly the same floating-point
operation order as the original dict-chain code, so schedulers built on
these caches produce byte-identical schedules (see
``tests/core/test_golden_schedule.py``).
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from .model import Job, PhoneSpec, completion_time
from .prediction import RuntimePredictor

__all__ = ["SchedulingInstance"]


class _DenseCostMap(Mapping):
    """A ``(phone_id, job_id) -> c_ij`` mapping backed by dense rows.

    Built by :meth:`SchedulingInstance.build` instead of a plain dict so
    fleet-scale instances do not pay for millions of tuple-keyed dict
    entries; behaves exactly like the dict it replaces (``Mapping``
    supplies ``items``/``get``/``__eq__``), and hands its rows to the
    instance's dense caches without any per-element lookups.
    """

    __slots__ = ("_phone_ids", "_job_ids", "_rows", "_phone_pos", "_job_pos")

    def __init__(
        self,
        phone_ids: tuple[str, ...],
        job_ids: tuple[str, ...],
        rows: list[list[float]],
    ) -> None:
        self._phone_ids = phone_ids
        self._job_ids = job_ids
        self._rows = rows
        self._phone_pos = {pid: i for i, pid in enumerate(phone_ids)}
        self._job_pos = {jid: i for i, jid in enumerate(job_ids)}

    def __getitem__(self, key: tuple[str, str]) -> float:
        phone_id, job_id = key
        return self._rows[self._phone_pos[phone_id]][self._job_pos[job_id]]

    def __iter__(self):
        for phone_id in self._phone_ids:
            for job_id in self._job_ids:
                yield (phone_id, job_id)

    def __len__(self) -> int:
        return len(self._phone_ids) * len(self._job_ids)

    def aligned_rows(
        self, phone_ids: tuple[str, ...], job_ids: tuple[str, ...]
    ) -> list[list[float]] | None:
        """The dense rows, if they match the requested id ordering."""
        if phone_ids == self._phone_ids and job_ids == self._job_ids:
            return self._rows
        return None


@dataclass(frozen=True)
class SchedulingInstance:
    """Immutable input to a scheduling round.

    Parameters
    ----------
    jobs:
        Jobs to schedule, in arrival order.
    phones:
        Phones currently available (plugged in).
    b_ms_per_kb:
        ``b_i`` per phone id — time to copy 1 KB from the server to the
        phone, from the most recent bandwidth measurement.
    c_ms_per_kb:
        ``c_ij`` per (phone id, job id) — predicted time to process 1 KB
        of the job's input on that phone.
    """

    jobs: tuple[Job, ...]
    phones: tuple[PhoneSpec, ...]
    b_ms_per_kb: Mapping[str, float]
    c_ms_per_kb: Mapping[tuple[str, str], float]

    def __post_init__(self) -> None:
        if not self.phones:
            raise ValueError("an instance needs at least one phone")
        if not self.jobs:
            raise ValueError("an instance needs at least one job")
        job_ids = tuple(job.job_id for job in self.jobs)
        if len(set(job_ids)) != len(job_ids):
            raise ValueError("duplicate job ids in instance")
        phone_ids = tuple(phone.phone_id for phone in self.phones)
        if len(set(phone_ids)) != len(phone_ids):
            raise ValueError("duplicate phone ids in instance")

        b_vec, c_rows = self._validate_and_densify(phone_ids, job_ids)

        # Dense hot-path caches (the dataclass is frozen, hence setattr).
        set_ = object.__setattr__
        set_(self, "_job_ids", job_ids)
        set_(self, "_phone_ids", phone_ids)
        set_(self, "_job_by_id", dict(zip(job_ids, self.jobs)))
        set_(self, "_phone_by_id", dict(zip(phone_ids, self.phones)))
        set_(self, "_job_pos", {jid: i for i, jid in enumerate(job_ids)})
        set_(self, "_phone_pos", {pid: i for i, pid in enumerate(phone_ids)})
        set_(self, "_b_vec", b_vec)
        set_(self, "_c_rows", c_rows)
        set_(
            self,
            "_per_kb_rows",
            [[b_i + c for c in row] for b_i, row in zip(b_vec, c_rows)],
        )
        set_(self, "_bounds_cache", None)
        set_(self, "_slowest_cache", None)

    def _validate_and_densify(
        self, phone_ids: tuple[str, ...], job_ids: tuple[str, ...]
    ) -> tuple[list[float], list[list[float]]]:
        """Check every b/c entry and return dense copies of the tables.

        Validation order matches the original implementation exactly
        (phone-major, ``b_i`` before that phone's ``c`` row) so the same
        malformed input raises the same error.
        """
        b_vec: list[float] = []
        dense = (
            self.c_ms_per_kb.aligned_rows(phone_ids, job_ids)
            if isinstance(self.c_ms_per_kb, _DenseCostMap)
            else None
        )
        c_rows: list[list[float]] = []
        for pos, phone in enumerate(self.phones):
            b = self.b_ms_per_kb.get(phone.phone_id)
            if b is None:
                raise ValueError(f"missing b_i for phone {phone.phone_id!r}")
            if not math.isfinite(b) or b < 0:
                raise ValueError(f"b_i for {phone.phone_id!r} must be >= 0, got {b!r}")
            b_vec.append(b)
            if dense is not None:
                row = dense[pos]
                if not self._row_is_valid(row):
                    self._raise_bad_c(phone.phone_id, row)
            else:
                row = []
                for job in self.jobs:
                    c = self.c_ms_per_kb.get((phone.phone_id, job.job_id))
                    if c is None:
                        raise ValueError(
                            f"missing c_ij for ({phone.phone_id!r}, {job.job_id!r})"
                        )
                    if not math.isfinite(c) or c < 0:
                        raise ValueError(
                            f"c_ij for ({phone.phone_id!r}, {job.job_id!r}) "
                            f"must be >= 0, got {c!r}"
                        )
                    row.append(c)
            c_rows.append(row)
        return b_vec, c_rows

    @staticmethod
    def _row_is_valid(row: list[float]) -> bool:
        """Fast all-finite/non-negative check for one dense c row."""
        try:
            import numpy as np
        except ImportError:  # pragma: no cover - numpy is a dependency
            return all(math.isfinite(c) and c >= 0 for c in row)
        arr = np.asarray(row, dtype=np.float64)
        return bool(np.isfinite(arr).all() and (arr >= 0).all())

    def _raise_bad_c(self, phone_id: str, row: list[float]) -> None:
        for job, c in zip(self.jobs, row):
            if not math.isfinite(c) or c < 0:
                raise ValueError(
                    f"c_ij for ({phone_id!r}, {job.job_id!r}) "
                    f"must be >= 0, got {c!r}"
                )
        raise AssertionError("row flagged invalid but no bad entry found")

    @classmethod
    def build(
        cls,
        jobs: Iterable[Job],
        phones: Iterable[PhoneSpec],
        b_ms_per_kb: Mapping[str, float],
        predictor: RuntimePredictor,
    ) -> "SchedulingInstance":
        """Construct an instance using a predictor to fill the c table.

        Predictions depend on (phone, task), not (phone, job), so the
        predictor is consulted once per (phone, task) pair and the value
        reused across that task's jobs — at fleet scale this collapses
        millions of predictor calls into a few thousand.
        """
        jobs = tuple(jobs)
        phones = tuple(phones)
        rows: list[list[float]] = []
        for phone in phones:
            by_task: dict[str, float] = {}
            row = []
            for job in jobs:
                c = by_task.get(job.task)
                if c is None:
                    c = predictor.predict_ms_per_kb(phone, job.task)
                    by_task[job.task] = c
                row.append(c)
            rows.append(row)
        c = _DenseCostMap(
            tuple(phone.phone_id for phone in phones),
            tuple(job.job_id for job in jobs),
            rows,
        )
        return cls(
            jobs=jobs,
            phones=phones,
            b_ms_per_kb=dict(b_ms_per_kb),
            c_ms_per_kb=c,
        )

    # -- lookups ---------------------------------------------------------

    def job(self, job_id: str) -> Job:
        try:
            return self._job_by_id[job_id]
        except KeyError:
            raise KeyError(f"no job {job_id!r} in instance") from None

    def phone(self, phone_id: str) -> PhoneSpec:
        try:
            return self._phone_by_id[phone_id]
        except KeyError:
            raise KeyError(f"no phone {phone_id!r} in instance") from None

    def b(self, phone_id: str) -> float:
        return self._b_vec[self._phone_pos[phone_id]]

    def c(self, phone_id: str, job_id: str) -> float:
        return self._c_rows[self._phone_pos[phone_id]][self._job_pos[job_id]]

    def cost(self, phone_id: str, job_id: str, input_kb: float | None = None) -> float:
        """Equation (1) for a partition of ``job_id`` on ``phone_id``.

        ``input_kb`` defaults to the job's full input ``L_j``.
        """
        job = self.job(job_id)
        x = job.input_kb if input_kb is None else input_kb
        return completion_time(
            job.executable_kb, x, self.b(phone_id), self.c(phone_id, job_id)
        )

    def marginal_cost(self, phone_id: str, job_id: str, input_kb: float) -> float:
        """Per-partition cost *excluding* the executable shipping term.

        Useful when a phone already holds the executable for a job and
        receives an additional partition of the same job.
        """
        return input_kb * (self.b(phone_id) + self.c(phone_id, job_id))

    # -- hot-path accessors ----------------------------------------------
    #
    # Dense, position-indexed views for schedulers that convert ids to
    # positions once and then work on arrays.  Callers must treat the
    # returned lists as read-only.

    def job_position(self, job_id: str) -> int:
        return self._job_pos[job_id]

    def phone_position(self, phone_id: str) -> int:
        return self._phone_pos[phone_id]

    def b_vector(self) -> list[float]:
        """``b_i`` by phone position, aligned with ``self.phones``."""
        return self._b_vec

    def c_rows(self) -> list[list[float]]:
        """``c_ij`` rows by phone position, columns by job position."""
        return self._c_rows

    def per_kb_rows(self) -> list[list[float]]:
        """``b_i + c_ij`` rows by phone position (Equation 1's rate)."""
        return self._per_kb_rows

    def per_kb_matrix(self):
        """``b_i + c_ij`` as a dense float64 ndarray (phones × jobs).

        Built lazily from :meth:`per_kb_rows` — the entries are the very
        same floats, so kernels reading the matrix see bit-identical
        rates to kernels reading the row lists.  Callers must treat the
        array as read-only.
        """
        cached = getattr(self, "_per_kb_matrix", None)
        if cached is None:
            import numpy as np

            cached = np.asarray(self._per_kb_rows, dtype=np.float64)
            cached.setflags(write=False)
            object.__setattr__(self, "_per_kb_matrix", cached)
        return cached

    # -- derived quantities ----------------------------------------------

    def slowest_phone(self) -> PhoneSpec:
        """The reference phone ``s`` used to order items in Algorithm 1."""
        cached = self._slowest_cache
        if cached is None:
            cached = min(self.phones, key=lambda p: (p.cpu_mhz, p.phone_id))
            object.__setattr__(self, "_slowest_cache", cached)
        return cached

    def total_input_kb(self) -> float:
        return sum(job.input_kb for job in self.jobs)

    def atomic_jobs(self) -> tuple[Job, ...]:
        return tuple(job for job in self.jobs if job.is_atomic)

    def breakable_jobs(self) -> tuple[Job, ...]:
        return tuple(job for job in self.jobs if job.is_breakable)

    def capacity_bounds(self) -> tuple[float, float]:
        """The (lower, upper) capacity bracket for the binary search.

        Computed once per instance and cached; the arithmetic mirrors
        the original per-call implementation term for term so the
        bracket (and therefore every bisection midpoint) is identical.

        * **Upper bound** — all items stacked on the *worst* bin: the
          maximum over phones of the total Equation-1 cost of running
          every job whole on that phone.
        * **Lower bound** — the paper's "magical bin" with the fleet's
          aggregate processing and bandwidth capability and no
          executable-shipping cost.
        """
        cached = self._bounds_cache
        if cached is not None:
            return cached
        jobs = self.jobs
        if jobs and self.phones:
            # Vectorized, but bit-identical to the original Python
            # loops: every term is the same elementwise float64
            # expression (``per_kb`` entries ARE ``b_i + c_ij``), and
            # ``np.cumsum`` accumulates sequentially, matching
            # ``sum()``'s left-to-right adds exactly.  Skipped terms
            # (non-positive rates) become ``+ 0.0``, which is exact on
            # the positive partial sums involved.
            import numpy as np

            pkb = self.per_kb_matrix()
            b = np.asarray(self._b_vec, dtype=np.float64)
            exe = np.asarray(
                [job.executable_kb for job in jobs], dtype=np.float64
            )
            load = np.asarray(
                [job.input_kb for job in jobs], dtype=np.float64
            )
            per_phone = exe[None, :] * b[:, None] + load[None, :] * pkb
            upper = float(np.cumsum(per_phone, axis=1)[:, -1].max())
            rates = np.zeros_like(pkb)
            # Subnormal per-KB costs overflow the reciprocal to inf —
            # exactly what scalar Python's ``1.0 / pkb`` returns
            # (silently), and inf aggregates still yield the same 0.0
            # contribution below — so the warning carries no signal.
            with np.errstate(over="ignore"):
                np.divide(1.0, pkb, out=rates, where=pkb > 0)
            aggregate = np.cumsum(rates, axis=0)[-1, :]
            contrib = np.zeros(len(jobs), dtype=np.float64)
            np.divide(load, aggregate, out=contrib, where=aggregate > 0)
            lower = float(np.cumsum(contrib)[-1])
        else:
            b_vec = self._b_vec
            per_kb_rows = self._per_kb_rows
            upper = max(
                sum(
                    job.executable_kb * b_i + job.input_kb * (b_i + c_ij)
                    for job, c_ij in zip(jobs, row)
                )
                for b_i, row in zip(b_vec, self._c_rows)
            )
            lower = 0.0
            for j, job in enumerate(jobs):
                aggregate_rate = sum(
                    1.0 / row[j] for row in per_kb_rows if row[j] > 0
                )
                if aggregate_rate > 0:
                    lower += job.input_kb / aggregate_rate
        # The bracket must be well-ordered even for degenerate instances.
        lower = min(lower, upper)
        bounds = (lower, upper)
        object.__setattr__(self, "_bounds_cache", bounds)
        return bounds
