"""NumPy-vectorized backend for Algorithm 1 (the greedy CBP packer).

:class:`VectorGreedyPacker` produces schedules *byte-identical* to
:class:`~repro.core.packing.GreedyPacker` (and therefore to the frozen
reference in :mod:`repro.core._reference`) while replacing the packer's
per-placement Python scans with dense float64 array operations.  The
scalar backend stays the exact oracle; this module is pure mechanism.

Dense mirrors
-------------
The kernel mirrors the packer's authoritative Python structures in
preallocated arrays that are repaired in place on every placement:

* the sorted item order as an ``intp`` position array (``_order_buf``),
  shifted exactly as the list's ``insort`` moves the split remainder;
* the sorted bin list as parallel height / phone-position / opening-
  epoch arrays (``_bh_buf`` / ``_bpos_buf`` / ``_bep_buf``);
* per-job remaining sizes, failure-mark epochs, and a dense
  ``phones × jobs`` shipped-executable mask;
* static per-instance matrices: the Equation-1 ``b_i + c_ij`` per-KB
  rates (:meth:`SchedulingInstance.per_kb_matrix`), executable sizes,
  atomicity flags, and optional per-phone RAM caps.

Scan strategy
-------------
Each scan (Line 4 of Algorithm 1: first unmarked item that fits in an
opened bin) runs in two stages:

* **scalar head** — the first few walked items are probed with the
  inherited scalar ``_fit_kb`` loop, bin by bin with the scalar walk's
  early cutoff.  Scans on feasible packs almost always place one of
  these items, and a handful of ~1 µs scalar probes beats any array
  call overhead;
* **vectorized tail** — if the head fails, the remaining walked items
  are processed in geometrically growing row chunks, each chunk
  evaluating the entire fit test (headroom, per-KB rate, whole-fit
  tolerance, minimum-partition and sliver rules, RAM clamp, shipped-
  executable discount) as one 2-D ``items × candidate bins`` float64
  block.  Row-major ``argmax`` over the block is the scalar's "first
  item that fits, into its first accepting bin".

The tail exploits one pruning fact, which keeps the blocks narrow on
infeasible packs: a failure mark proves the item fits *no bin that
existed when the mark was set*, and that verdict is monotone — bin
heights only grow, and a bin's executable discount for the item can
only appear by packing a partition of the item itself, which resets
the mark.  (The fit verdict is monotone in headroom: the sliver rule's
``remaining - minimum`` branch does not depend on headroom, so growth
never turns a rejection into a fit.)  An item marked at epoch ``e``
therefore only needs probing against bins opened after ``e``; older
columns are dropped as provably rejecting.

Bin opening (Line 15) is one fused Equation-1 array expression over
the unopened phones with an exact-equality ``phone_id`` tie-break.

Why this is byte-identical
--------------------------
Elementwise IEEE-754 float64 arithmetic is bit-identical between numpy
and scalar Python, and every vectorized expression reproduces the
scalar operation order term for term, so each computed (item, bin) fit
verdict matches the scalar verdict exactly; every *skipped* pair is
one the pruning argument proves the scalar probe would also reject.
The sizes actually placed are still computed by the inherited scalar
``_fit_kb``/``_pack_item_into_bin`` on plain Python floats — the
arrays only decide which probes to issue and which items to skip.

``tests/core/test_packing_vec.py`` pins this kernel pack-by-pack to the
scalar backend, and ``tests/core/test_golden_schedule.py`` pins full
capacity searches under both kernels to the frozen reference.
"""

from __future__ import annotations

import math
import time

import numpy as np

from .instance import SchedulingInstance
from .model import MIN_PARTITION_KB
from .packing import (
    GreedyPacker,
    PackingResult,
    _Bin,
    _Item,
    _item_key,
)
from .schedule import ScheduleBuilder

__all__ = ["VectorGreedyPacker"]

#: Walked items probed with scalar ``_fit_kb`` before switching to 2-D
#: blocks.  Feasible-pack scans nearly always place one of these.
_SCALAR_HEAD = 4

#: First vectorized row-chunk size; grows geometrically afterwards.
_CHUNK_ROWS = 128

#: Buffers recycled through an :class:`~repro.core.arraypool.ArrayPool`
#: across packer constructions.  Every one is rewritten before use in
#: each pack (see the pool module's safety note).
_POOLED = (
    "_shipped",
    "_rem",
    "_mark_epoch",
    "_order_buf",
    "_okey_buf",
    "_hcut",
    "_bh_buf",
    "_bpos_buf",
    "_bep_buf",
    "_open_epoch_by_pos",
    "_un_buf",
    "_open_cost_buf",
    "_open_exe_buf",
)


class VectorGreedyPacker(GreedyPacker):
    """Algorithm 1 with dense-array scans and probes.

    Drop-in replacement for :class:`GreedyPacker`; same constructor,
    same :meth:`pack` contract, byte-identical schedules.
    """

    def __init__(
        self,
        instance: SchedulingInstance,
        *,
        min_partition_kb: float = MIN_PARTITION_KB,
        ram=None,
        array_pool=None,
    ) -> None:
        super().__init__(
            instance, min_partition_kb=min_partition_kb, ram=ram
        )
        jobs = instance.jobs
        n_phones = len(instance.phones)
        #: Optional :class:`~repro.core.arraypool.ArrayPool`: the
        #: buffers named in ``_POOLED`` are drawn from it here and
        #: returned by :meth:`release_buffers`, so a long-lived search
        #: recycles them across rounds.  Pooled or not, buffers start
        #: uninitialised — each pack rewrites them before reading.
        self._array_pool = array_pool
        if array_pool is not None:
            take = array_pool.take
        else:
            def take(shape, dtype=np.float64):
                return np.empty(shape, dtype=dtype)
        self._pkb_mat = instance.per_kb_matrix()
        #: Job-major contiguous view for the per-job unopened-phone
        #: gather in bin opening (same floats, faster access pattern);
        #: cached on the instance so repeated packer constructions —
        #: rounds, probe batches — share one copy.
        self._pkb_t = instance.per_kb_matrix_t()
        self._b_arr = instance.b_array()
        self._min_per_kb_arr = np.asarray(
            self._min_per_kb, dtype=np.float64
        )
        self._atomic_arr = np.asarray(
            [job.is_atomic for job in jobs], dtype=bool
        )
        self._exe_arr, self._input_arr = instance.job_load_arrays()
        #: Any zero per-KB rate forces the "free transfer" fit branch.
        self._any_free = bool((self._pkb_mat <= 0).any())
        if ram is not None:
            self._ram_arr = np.asarray(
                [
                    ram.clamp_fit(phone.phone_id, math.inf)
                    for phone in instance.phones
                ],
                dtype=np.float64,
            )
        else:
            self._ram_arr = None
        #: shipped[i, j] — phone position i already holds job j's
        #: executable (the dense mirror of each bin's shipped set).
        self._shipped = take((n_phones, len(jobs)), dtype=bool)
        # Preallocated per-pack mirrors (item slot == job position;
        # items only shrink, so slots are stable within a pack).
        self._rem = take(len(jobs))
        self._mark_epoch = take(len(jobs), dtype=np.intp)
        self._order_buf = take(len(jobs), dtype=np.intp)
        self._order_n = 0
        self._slot_item: list[_Item | None] = []
        self._epoch = 0
        self._bh_buf = take(n_phones)
        self._bpos_buf = take(n_phones, dtype=np.intp)
        self._bep_buf = take(n_phones, dtype=np.intp)
        self._bn = 0
        self._open_epoch_by_pos = take(n_phones, dtype=np.intp)
        self._un_buf = take(n_phones, dtype=np.intp)
        self._un_n = 0
        self._un_ids: list[str] = []
        #: Lexicographic rank of each phone_id; equal-cost ties in bin
        #: opening resolve by smallest rank == smallest phone_id.
        ranks = np.zeros(n_phones, dtype=np.intp)
        by_id = sorted(
            range(n_phones), key=lambda i: instance.phones[i].phone_id
        )
        for rank, pos in enumerate(by_id):
            ranks[pos] = rank
        self._id_rank = ranks
        #: Static per-item "minimum need" — the cost the shortest bin
        #: must be able to absorb before the item can fit anywhere —
        #: and the per-pack headroom cutoff derived from it.
        #: ``_hcut[pos]`` holds ``capacity - x·min_per_kb·(1-1e-9)``
        #: for every live item (reset vectorized at pack start, patched
        #: with the identical scalar expression on splits), so both
        #: scan stages read one float where they used to recompute a
        #: three-op expression per walked item.
        x0 = np.where(
            self._atomic_arr | (self._input_arr <= min_partition_kb),
            self._input_arr,
            min_partition_kb,
        )
        self._need0_ms = x0 * self._min_per_kb_arr * (1.0 - 1e-9)
        self._hcut = take(len(jobs))
        #: Item pool, built and sorted once: the initial sort key
        #: (``input_kb * c_slowest``) is capacity-independent, so every
        #: pack starts from the same order.  ``pack`` resets the three
        #: mutable fields instead of reconstructing 5 000 objects.
        pool = [
            _Item(
                job=job,
                job_pos=pos,
                remaining_kb=job.input_kb,
                key_ms=job.input_kb * self._c_slowest[pos],
            )
            for pos, job in enumerate(jobs)
        ]
        pool.sort(key=_item_key)
        self._item_pool = pool
        self._key0 = [item.key_ms for item in pool]
        self._input0 = [item.job.input_kb for item in pool]
        self._slot_item = [None] * len(jobs)
        for item in pool:
            self._slot_item[item.job_pos] = item
        self._order0 = np.asarray(
            [item.job_pos for item in pool], dtype=np.intp
        )
        #: Sort-key mirror of ``_order_buf``: ``_okey_buf[i]`` is
        #: ``-key_ms`` of the item at order position ``i`` (ascending,
        #: ties broken by job_id in ``_order_buf`` itself).  Kept in
        #: lockstep with every order shift so split reinsertion is one
        #: C ``searchsorted`` over floats instead of a Python-level
        #: binary search through item objects.
        self._okey0 = np.asarray(
            [-item.key_ms for item in pool], dtype=np.float64
        )
        self._okey_buf = take(len(jobs))
        self._unopened0 = np.arange(n_phones, dtype=np.intp)
        self._phone_ids = [phone.phone_id for phone in instance.phones]
        #: Sorted-list index at which ``_admit_bin`` inserted the bin.
        self._admit_at = 0
        #: Items marked in the current epoch always form a *prefix* of
        #: the sorted order: a scan marks exactly the items it walks
        #: past before its hit, and a split remainder (always unmarked)
        #: re-sorts at or after the hit position.  This pointer is the
        #: prefix length, so the walk set is the ``order[ptr:]`` view
        #: and a walk position ``k`` IS list index ``ptr + k``.
        self._mark_ptr = 0
        #: Preallocated gather targets for ``_open_bin_vec``.
        self._open_cost_buf = take(n_phones)
        self._open_exe_buf = take(n_phones)

    # -- public API --------------------------------------------------------

    def pack(
        self, capacity_ms: float, *, collect: bool = True
    ) -> PackingResult:
        """Run Algorithm 1 at ``capacity_ms``.

        ``collect=False`` runs the identical placement sequence but
        skips schedule accumulation, returning a verdict-only result
        (``schedule is None``).  The capacity search uses this for
        bisection probes whose schedules would be discarded anyway,
        and materialises the winning capacity with one collecting
        pack at the end.
        """
        started = time.perf_counter()
        result = self._pack_impl(capacity_ms, collect=collect)
        self._note_pack(result, started)
        return result

    def release_buffers(self) -> None:
        """Return pooled buffers; the packer must not pack again.

        No-op without an array pool.  After release the ``_POOLED``
        attributes are gone, so a stray ``pack()`` fails loudly instead
        of racing the next packer for the same memory.
        """
        pool = self._array_pool
        if pool is None:
            return
        self._array_pool = None
        for name in _POOLED:
            pool.give(self.__dict__.pop(name, None))

    def _pack_impl(
        self, capacity_ms: float, *, collect: bool = True
    ) -> PackingResult:
        if capacity_ms <= 0:
            return PackingResult(feasible=False, capacity_ms=capacity_ms)

        instance = self._instance
        for index, item in enumerate(self._item_pool):
            item.remaining_kb = self._input0[index]
            item.key_ms = self._key0[index]
            item.failed_epoch = -1
        self._rem[:] = self._input_arr
        self._mark_epoch.fill(-1)
        self._order_buf[: len(self._item_pool)] = self._order0
        self._okey_buf[: len(self._item_pool)] = self._okey0
        self._order_n = len(self._item_pool)
        np.subtract(capacity_ms, self._need0_ms, out=self._hcut)
        self._epoch = 0
        self._mark_ptr = 0
        self._bn = 0
        self._un_buf[:] = self._unopened0
        self._un_n = len(instance.phones)
        self._un_ids = self._phone_ids.copy()
        self._shipped[:, :] = False

        bins: list[_Bin] = []
        builder = ScheduleBuilder() if collect else None

        while self._order_n:
            if self._scan_opened(bins, builder, capacity_ms):
                continue
            if not self._un_ids:
                return PackingResult(feasible=False, capacity_ms=capacity_ms)
            first = self._slot_item[self._order_buf[0]]
            opened = self._open_bin_vec(first, bins, capacity_ms)
            if opened is None:
                return PackingResult(feasible=False, capacity_ms=capacity_ms)
            if not self._place_and_sync(
                0, opened, self._admit_at, bins, builder, capacity_ms
            ):
                return PackingResult(feasible=False, capacity_ms=capacity_ms)

        max_height = max((b.height_ms for b in bins), default=0.0)
        return PackingResult(
            feasible=True,
            capacity_ms=capacity_ms,
            schedule=builder.build() if collect else None,
            max_height_ms=float(max_height),
            opened_bins=len(bins),
        )

    # -- internals -----------------------------------------------------------

    def _place_and_sync(
        self,
        index,
        bin_,
        src,
        bins,
        builder,
        capacity_ms,
        size_kb=None,
    ) -> bool:
        """``GreedyPacker._pack_item_into_bin`` fused with mirror repair.

        Replicates the parent's placement statement for statement (same
        scalar ``_fit_kb``/``_exe_cost`` floats, same ``math.isclose``
        whole-placement test, same unique-key insertion points), but
        takes the bin's list index ``src`` from the caller — every
        caller already knows it — and works directly on the order
        array: the item is ``order[index]``'s slot, and the remainder
        reinsertion point comes from a binary search over the order
        mirror itself.  ``size_kb`` forwards a probe's already-computed
        fit, when the caller has one.
        """
        order = self._order_buf
        pos = int(order[index])
        item = self._slot_item[pos]
        job = item.job
        jid = job.job_id
        ppos = bin_.phone_pos
        if size_kb is None:
            size_kb = self._fit_kb(bin_, item, capacity_ms)
        if size_kb <= 0:
            return False
        close = math.isclose(size_kb, item.remaining_kb)
        packed_whole_input = item.is_whole and close
        # ``_exe_cost`` inlined: a shipped executable contributes an
        # exact 0.0, and ``0.0 + y == y`` bitwise for the non-negative
        # transfer term, so the branch reproduces the parent's sum.
        if jid in bin_.shipped_jobs:
            cost = size_kb * self._per_kb_rows[ppos][pos]
        else:
            cost = job.executable_kb * self._b[ppos] + size_kb * (
                self._per_kb_rows[ppos][pos]
            )
        bin_.height_ms += cost
        bin_.shipped_jobs.add(jid)
        # Re-slot the grown bin.  Heights only grow, so it can only
        # move right: instead of the parent's delete + re-``insort``
        # (two full-tail shifts on the mirrors), rotate the
        # ``(src, dst]`` window left by one.  The destination comes
        # from a binary search over the height mirror, with equal
        # heights resolved by the precomputed lexicographic phone-id
        # ranks — the exact slot the parent's ``insort`` would pick.
        # Most placements grow the shortest bin by less than the gap
        # to its neighbour, where the cheap test below resolves
        # ``dst == src`` with no array traffic at all.
        bh, bp, be = self._bh_buf, self._bpos_buf, self._bep_buf
        nb = self._bn
        h = bin_.height_ms
        # ``h == bh[src]`` (zero-cost placement) keeps the unique
        # (height, phone_id) key, hence the exact same slot.  The
        # right-neighbour height is read from the bin object — a plain
        # float attribute, same value the ``bh`` mirror holds — while
        # the old own height must come from the mirror (``bin_`` has
        # already grown).
        if (
            src + 1 >= nb
            or h < bins[src + 1].height_ms
            or h == bh[src]
        ):
            dst = src
        else:
            arr = bh[:nb]
            p = int(arr.searchsorted(h, "left"))
            # Equal heights are common on replicated fleets (identical
            # phones fill identically), so the run is bounded with a
            # second binary search — never a linear walk.
            if p < nb and arr[p] == h:
                q = int(arr.searchsorted(h, "right"))
                ranks = self._id_rank
                p += int(
                    ranks[bp[p:q]].searchsorted(ranks[ppos], "left")
                )
            # The stale entry at ``src`` (height < h) sits left of the
            # insertion point and vanishes, shifting it down by one.
            dst = p - 1
            if dst > src:
                del bins[src]
                bins.insert(dst, bin_)
                bh[src:dst] = bh[src + 1 : dst + 1]
                bp[src:dst] = bp[src + 1 : dst + 1]
                be[src:dst] = be[src + 1 : dst + 1]
        bh[dst] = h
        bp[dst] = ppos
        be[dst] = self._open_epoch_by_pos[ppos]
        if builder is not None:
            builder.place(
                bin_.phone_id,
                job.job_id,
                job.task,
                size_kb,
                whole=packed_whole_input,
            )
        self._shipped[bin_.phone_pos, pos] = True
        n = self._order_n
        okey = self._okey_buf
        if close:
            # Packed as a whole (of what remained): retire the slot.
            order[index : n - 1] = order[index + 1 : n]
            okey[index : n - 1] = okey[index + 1 : n]
            self._order_n = n - 1
        else:
            # Reinsert the remainder; one insertion restores the exact
            # order a full re-sort would produce (job_id-unique keys).
            # The remainder's key can only shrink, so its ``-key_ms``
            # tuple can only grow: every slot left of ``index`` sorts
            # strictly before it, and the search need only cover
            # ``order[index+1:n]``.  Position ``q`` there maps to
            # ``q - 1`` once the old entry vanishes — exactly the
            # parent's post-delete ``insort`` slot.
            item.remaining_kb = rem_kb = item.remaining_kb - size_kb
            item.key_ms = key_ms = rem_kb * self._c_slowest[pos]
            item.failed_epoch = -1
            neg_key = -key_ms
            tail = okey[index + 1 : n]
            j = int(tail.searchsorted(neg_key, "left"))
            if j < tail.size and tail[j] == neg_key:
                # Equal float keys: resolve by job_id, exactly the
                # tuple order ``insort`` applies.  The run can be long
                # on replicated workloads, so bound it with a second
                # binary search and bisect job_ids inside it.
                hi = int(tail.searchsorted(neg_key, "right"))
                slots = self._slot_item
                while j < hi:
                    mid = (j + hi) // 2
                    it = slots[int(order[index + 1 + mid])]
                    if it.job.job_id < jid:
                        j = mid + 1
                    else:
                        hi = mid
            new_index = index + j
            if index < new_index:
                order[index:new_index] = order[index + 1 : new_index + 1]
                okey[index:new_index] = okey[index + 1 : new_index + 1]
            order[new_index] = pos
            okey[new_index] = neg_key
            self._rem[pos] = rem_kb
            self._mark_epoch[pos] = -1
            minp = self._min_partition_kb
            x = rem_kb if rem_kb <= minp else minp
            self._hcut[pos] = capacity_ms - x * self._min_per_kb[pos] * (
                1.0 - 1e-9
            )
        return True

    def _scan_opened(
        self,
        bins: list[_Bin],
        builder: ScheduleBuilder,
        capacity_ms: float,
    ) -> bool:
        """Line 4 of Algorithm 1: first item that fits an opened bin.

        Mirrors ``GreedyPacker._pack_into_opened`` decision for
        decision; see the module docstring for the scalar-head /
        vectorized-tail split and why the batched marking and
        stale-column pruning are exact.
        """
        if not bins:
            return False
        h0 = bins[0].height_ms
        if h0 > capacity_ms - self._universal_min_need:
            return False
        epoch = self._epoch
        marks = self._mark_epoch
        ptr = self._mark_ptr
        # Marked items form a prefix of the order (see ``_mark_ptr``),
        # so the walk set is a zero-copy suffix view and a walk
        # position ``k`` doubles as list index ``ptr + k``.
        sel = self._order_buf[ptr : self._order_n]
        if sel.size == 0:
            return False
        hcut = self._hcut

        # Scalar head: probe the first few walked items exactly as the
        # scalar scan would.  The per-item headroom cutoff is the
        # maintained ``_hcut`` value — same floats the scalar walk
        # recomputes from the item each time.
        head = min(_SCALAR_HEAD, sel.size)
        for k in range(head):
            pos = int(sel[k])
            h_max = hcut[pos]
            if h0 > h_max:
                marks[pos] = epoch
                self._mark_ptr = ptr + k + 1
                continue
            item = self._slot_item[pos]
            hit = None
            for bidx, bin_ in enumerate(bins):
                if bin_.height_ms > h_max:
                    break
                size_kb = self._fit_kb(bin_, item, capacity_ms)
                if size_kb > 0:
                    hit = bin_
                    break
            if hit is not None:
                return self._place_and_sync(
                    ptr + k,
                    hit,
                    bidx,
                    bins,
                    builder,
                    capacity_ms,
                    size_kb=size_kb,
                )
            marks[pos] = epoch
            self._mark_ptr = ptr + k + 1

        # Vectorized tail: growing row chunks of 2-D fit blocks.  Marks
        # are written only up to the hit (the exact set the scalar walk
        # passes), keeping the marked-prefix invariant intact.
        start = head
        chunk = _CHUNK_ROWS
        while start < sel.size:
            stop = min(sel.size, start + chunk)
            s = sel[start:stop]
            off = None
            h_probe = hcut[s]
            hopeless = h0 > h_probe
            s_probe = s
            if hopeless.any():
                if hopeless.all():
                    marks[s] = epoch
                    self._mark_ptr = ptr + stop
                    start = stop
                    chunk = sel.size
                    continue
                keep = ~hopeless
                off = np.nonzero(keep)[0]
                s_probe = s[keep]
                h_probe = h_probe[keep]
            hit = self._probe_block(s_probe, h_probe, bins, capacity_ms)
            if hit is not None:
                row, col = hit
                # Everything walked before the fit — hopeless rows and
                # probed-rejected rows alike — carries a fresh mark,
                # just as the scalar scan leaves them.
                chunk_idx = row if off is None else int(off[row])
                if chunk_idx:
                    marks[s[:chunk_idx]] = epoch
                index = ptr + start + chunk_idx
                self._mark_ptr = index
                return self._place_and_sync(
                    index, bins[col], col, bins, builder, capacity_ms
                )
            marks[s] = epoch
            self._mark_ptr = ptr + stop
            start = stop
            # Hits beyond the first chunk are vanishingly rare (the
            # scalar head plus one chunk catch essentially all of
            # them), and a scan that finds nothing must walk every
            # remaining row anyway — most scans here are the full
            # prove-nothing-fits walk before a bin opening.  Finish in
            # a single block rather than paying per-chunk launch
            # overhead on a geometric ramp.
            chunk = sel.size
        return False

    def _probe_block(
        self,
        sel: np.ndarray,
        h_probe: np.ndarray,
        bins: list[_Bin],
        capacity_ms: float,
    ) -> tuple[int, int] | None:
        """One ``items × bins`` fit block; first (row, bin index) hit.

        Columns are restricted to bins opened after the oldest mark in
        the chunk — provably the only bins any stale-marked row can
        newly fit — and per-row masks reimpose each row's own prefix
        and mark epoch, so every computed-or-skipped verdict equals
        the scalar probe's.  The epoch filter runs first: most chunks
        on a settled epoch have no new-enough bin at all, and resolve
        here before any prefix search or size gather is paid.
        """
        row_ep = self._mark_epoch[sel]
        bn = self._bn
        bep = self._bep_buf[:bn]
        cols = np.nonzero(bep > int(row_ep.min()))[0]
        if cols.size == 0:
            return None
        # Per-item probed-bin prefix: the scalar walk breaks at the
        # first bin taller than the item's cutoff.
        n_i = np.searchsorted(self._bh_buf[:bn], h_probe, side="right")
        nmax = int(n_i.max())
        if nmax == 0:
            return None
        cols = cols[: int(cols.searchsorted(nmax, "left"))]
        if cols.size == 0:
            return None
        if sel.size * cols.size <= 32:
            # Tiny block: a handful of scalar oracle probes beats the
            # ~12 array-kernel launches below.  Same row-major walk,
            # same per-row prefix and mark-epoch pruning.
            col_list = cols.tolist()
            ep_list = row_ep.tolist()
            slots = self._slot_item
            fit = self._fit_kb
            for r in range(sel.size):
                prefix = int(n_i[r])
                mark = ep_list[r]
                item = None
                for col in col_list:
                    if col >= prefix:
                        break
                    if int(bep[col]) <= mark:
                        continue
                    if item is None:
                        item = slots[int(sel[r])]
                    if fit(bins[col], item, capacity_ms) > 0:
                        return r, col
            return None
        rem = self._rem[sel]
        pp = self._bpos_buf[cols]
        shipped = self._shipped[pp[None, :], sel[:, None]]
        exe = np.where(
            shipped, 0.0, self._exe_arr[sel][:, None] * self._b_arr[pp][None, :]
        )
        headroom = (capacity_ms - self._bh_buf[cols])[None, :] - exe
        pkb = self._pkb_mat[pp[None, :], sel[:, None]]
        if self._any_free:
            with np.errstate(divide="ignore", invalid="ignore"):
                max_kb = np.where(pkb <= 0, rem[:, None], headroom / pkb)
        else:
            max_kb = headroom / pkb
        if self._ram_arr is not None:
            max_kb = np.minimum(max_kb, self._ram_arr[pp][None, :])
        minp = self._min_partition_kb
        tol = (rem * (1.0 - 1e-9))[:, None]
        whole = max_kb >= tol
        if self._ram_arr is not None:
            # Footnote 4's strict all-or-nothing check for atomic jobs.
            ok_atomic = max_kb >= rem[:, None]
        else:
            ok_atomic = whole
        partial = (max_kb >= minp) & (
            (rem[:, None] - max_kb >= minp) | ((rem - minp) >= minp)[:, None]
        )
        fit = (headroom > 0.0) & np.where(
            self._atomic_arr[sel][:, None], ok_atomic, whole | partial
        )
        fit &= cols[None, :] < n_i[:, None]
        fit &= bep[cols][None, :] > row_ep[:, None]
        rowhit = fit.any(axis=1)
        if not rowhit.any():
            return None
        row = int(np.argmax(rowhit))
        return row, int(cols[int(np.argmax(fit[row]))])

    def _open_bin_vec(
        self, item: _Item, bins: list[_Bin], capacity_ms: float
    ) -> _Bin | None:
        """Vectorized Line 15: cheapest unopened phone for ``item``."""
        pos_arr = self._un_buf[: self._un_n]
        ids = self._un_ids
        job = item.job
        cost = self._open_cost_buf[: self._un_n]
        self._pkb_t[item.job_pos].take(pos_arr, out=cost)
        cost *= item.remaining_kb
        exe_part = self._open_exe_buf[: self._un_n]
        self._b_arr.take(pos_arr, out=exe_part)
        exe_part *= job.executable_kb
        cost += exe_part
        minimum = cost.min()
        ties = np.nonzero(cost == minimum)[0]
        if ties.size == 1:
            k = int(ties[0])
        else:
            # Smallest phone_id among the ties == smallest precomputed
            # lexicographic rank (phone_ids are unique).
            k = int(ties[int(np.argmin(self._id_rank[pos_arr[ties]]))])
        candidate = _Bin(phone_id=ids[k], phone_pos=int(pos_arr[k]))
        if self._fit_kb(candidate, item, capacity_ms) > 0:
            return self._admit_bin(candidate, k, bins)
        # Rare path: the cheapest phone rejects (RAM / atomic job too
        # large).  Walk the rest in (cost, phone_id) order, exactly as
        # the scalar fallback does.
        cheapest_id = candidate.phone_id
        entries = sorted(
            (float(cost[i]), ids[i], i) for i in range(len(ids))
        )
        for _, phone_id, i in entries:
            if phone_id == cheapest_id:
                continue
            fallback = _Bin(phone_id=phone_id, phone_pos=int(pos_arr[i]))
            if self._fit_kb(fallback, item, capacity_ms) > 0:
                return self._admit_bin(fallback, i, bins)
        return None

    def _admit_bin(self, bin_: _Bin, unopened_index: int, bins) -> _Bin:
        """Open ``bin_``: new epoch, list insort, mirror inserts."""
        un, un_n = self._un_buf, self._un_n
        un[unopened_index : un_n - 1] = un[unopened_index + 1 : un_n]
        self._un_n = un_n - 1
        del self._un_ids[unopened_index]
        self._epoch += 1
        self._mark_ptr = 0
        self._open_epoch_by_pos[bin_.phone_pos] = self._epoch
        bh, bp, be, n = self._bh_buf, self._bpos_buf, self._bep_buf, self._bn
        view = bh[:n]
        at = int(view.searchsorted(bin_.height_ms, "left"))
        hi = int(view.searchsorted(bin_.height_ms, "right"))
        if at != hi:
            ranks = self._id_rank
            at += int(
                ranks[bp[at:hi]].searchsorted(
                    ranks[bin_.phone_pos], "left"
                )
            )
        bins.insert(at, bin_)
        bh[at + 1 : n + 1] = bh[at:n]
        bp[at + 1 : n + 1] = bp[at:n]
        be[at + 1 : n + 1] = be[at:n]
        bh[at] = bin_.height_ms
        bp[at] = bin_.phone_pos
        be[at] = self._epoch
        self._bn = n + 1
        self._admit_at = at
        return bin_
