"""NumPy-vectorized backend for Algorithm 1 (the greedy CBP packer).

:class:`VectorGreedyPacker` produces schedules *byte-identical* to
:class:`~repro.core.packing.GreedyPacker` (and therefore to the frozen
reference in :mod:`repro.core._reference`) while replacing the packer's
per-placement Python scans with dense float64 array operations.  The
scalar backend stays the exact oracle; this module is pure mechanism.

Dense mirrors
-------------
The kernel mirrors the packer's authoritative Python structures in
preallocated arrays that are repaired in place on every placement:

* the sorted item order as an ``intp`` position array (``_order_buf``),
  shifted exactly as the list's ``insort`` moves the split remainder;
* the sorted bin list as parallel height / phone-position / opening-
  epoch arrays (``_bh_buf`` / ``_bpos_buf`` / ``_bep_buf``);
* per-job remaining sizes, failure-mark epochs, and a dense
  ``phones × jobs`` shipped-executable mask;
* static per-instance matrices: the Equation-1 ``b_i + c_ij`` per-KB
  rates (:meth:`SchedulingInstance.per_kb_matrix`), executable sizes,
  atomicity flags, and optional per-phone RAM caps.

Scan strategy
-------------
Each scan (Line 4 of Algorithm 1: first unmarked item that fits in an
opened bin) runs in two stages:

* **scalar head** — the first few walked items are probed with the
  inherited scalar ``_fit_kb`` loop, bin by bin with the scalar walk's
  early cutoff.  Scans on feasible packs almost always place one of
  these items, and a handful of ~1 µs scalar probes beats any array
  call overhead;
* **vectorized tail** — if the head fails, the remaining walked items
  are processed in geometrically growing row chunks, each chunk
  evaluating the entire fit test (headroom, per-KB rate, whole-fit
  tolerance, minimum-partition and sliver rules, RAM clamp, shipped-
  executable discount) as one 2-D ``items × candidate bins`` float64
  block.  Row-major ``argmax`` over the block is the scalar's "first
  item that fits, into its first accepting bin".

The tail exploits one pruning fact, which keeps the blocks narrow on
infeasible packs: a failure mark proves the item fits *no bin that
existed when the mark was set*, and that verdict is monotone — bin
heights only grow, and a bin's executable discount for the item can
only appear by packing a partition of the item itself, which resets
the mark.  (The fit verdict is monotone in headroom: the sliver rule's
``remaining - minimum`` branch does not depend on headroom, so growth
never turns a rejection into a fit.)  An item marked at epoch ``e``
therefore only needs probing against bins opened after ``e``; older
columns are dropped as provably rejecting.

Bin opening (Line 15) is one fused Equation-1 array expression over
the unopened phones with an exact-equality ``phone_id`` tie-break.

Why this is byte-identical
--------------------------
Elementwise IEEE-754 float64 arithmetic is bit-identical between numpy
and scalar Python, and every vectorized expression reproduces the
scalar operation order term for term, so each computed (item, bin) fit
verdict matches the scalar verdict exactly; every *skipped* pair is
one the pruning argument proves the scalar probe would also reject.
The sizes actually placed are still computed by the inherited scalar
``_fit_kb``/``_pack_item_into_bin`` on plain Python floats — the
arrays only decide which probes to issue and which items to skip.

``tests/core/test_packing_vec.py`` pins this kernel pack-by-pack to the
scalar backend, and ``tests/core/test_golden_schedule.py`` pins full
capacity searches under both kernels to the frozen reference.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left

import numpy as np

from .instance import SchedulingInstance
from .model import MIN_PARTITION_KB
from .packing import (
    GreedyPacker,
    PackingResult,
    _Bin,
    _Item,
    _item_key,
)
from .schedule import ScheduleBuilder

__all__ = ["VectorGreedyPacker"]

#: Walked items probed with scalar ``_fit_kb`` before switching to 2-D
#: blocks.  Feasible-pack scans nearly always place one of these.
_SCALAR_HEAD = 4

#: First vectorized row-chunk size; grows geometrically afterwards.
_CHUNK_ROWS = 128


class VectorGreedyPacker(GreedyPacker):
    """Algorithm 1 with dense-array scans and probes.

    Drop-in replacement for :class:`GreedyPacker`; same constructor,
    same :meth:`pack` contract, byte-identical schedules.
    """

    def __init__(
        self,
        instance: SchedulingInstance,
        *,
        min_partition_kb: float = MIN_PARTITION_KB,
        ram=None,
    ) -> None:
        super().__init__(
            instance, min_partition_kb=min_partition_kb, ram=ram
        )
        jobs = instance.jobs
        n_phones = len(instance.phones)
        self._pkb_mat = instance.per_kb_matrix()
        #: Job-major contiguous copy for the per-job unopened-phone
        #: gather in bin opening (same floats, faster access pattern).
        self._pkb_t = np.ascontiguousarray(self._pkb_mat.T)
        self._b_arr = np.asarray(instance.b_vector(), dtype=np.float64)
        self._min_per_kb_arr = np.asarray(
            self._min_per_kb, dtype=np.float64
        )
        self._atomic_arr = np.asarray(
            [job.is_atomic for job in jobs], dtype=bool
        )
        self._exe_arr = np.asarray(
            [job.executable_kb for job in jobs], dtype=np.float64
        )
        #: Any zero per-KB rate forces the "free transfer" fit branch.
        self._any_free = bool((self._pkb_mat <= 0).any())
        if ram is not None:
            self._ram_arr = np.asarray(
                [
                    ram.clamp_fit(phone.phone_id, math.inf)
                    for phone in instance.phones
                ],
                dtype=np.float64,
            )
        else:
            self._ram_arr = None
        #: shipped[i, j] — phone position i already holds job j's
        #: executable (the dense mirror of each bin's shipped set).
        self._shipped = np.zeros((n_phones, len(jobs)), dtype=bool)
        # Preallocated per-pack mirrors (item slot == job position;
        # items only shrink, so slots are stable within a pack).
        self._rem = np.zeros(len(jobs), dtype=np.float64)
        self._mark_epoch = np.zeros(len(jobs), dtype=np.intp)
        self._order_buf = np.zeros(len(jobs), dtype=np.intp)
        self._order_n = 0
        self._slot_item: list[_Item | None] = []
        self._epoch = 0
        self._bh_buf = np.zeros(n_phones, dtype=np.float64)
        self._bpos_buf = np.zeros(n_phones, dtype=np.intp)
        self._bep_buf = np.zeros(n_phones, dtype=np.intp)
        self._bn = 0
        self._open_epoch_by_pos = np.zeros(n_phones, dtype=np.intp)
        self._un_buf = np.zeros(n_phones, dtype=np.intp)
        self._un_n = 0
        self._un_ids: list[str] = []
        #: Lexicographic rank of each phone_id; equal-cost ties in bin
        #: opening resolve by smallest rank == smallest phone_id.
        ranks = np.zeros(n_phones, dtype=np.intp)
        by_id = sorted(
            range(n_phones), key=lambda i: instance.phones[i].phone_id
        )
        for rank, pos in enumerate(by_id):
            ranks[pos] = rank
        self._id_rank = ranks
        #: Plain-list twin of ``_atomic_arr`` for the scalar head
        #: (list indexing beats a property call and a numpy scalar).
        self._atomic_list = [job.is_atomic for job in jobs]
        #: Item pool, built and sorted once: the initial sort key
        #: (``input_kb * c_slowest``) is capacity-independent, so every
        #: pack starts from the same order.  ``pack`` resets the three
        #: mutable fields instead of reconstructing 5 000 objects.
        pool = [
            _Item(
                job=job,
                job_pos=pos,
                remaining_kb=job.input_kb,
                key_ms=job.input_kb * self._c_slowest[pos],
            )
            for pos, job in enumerate(jobs)
        ]
        pool.sort(key=_item_key)
        self._item_pool = pool
        self._key0 = [item.key_ms for item in pool]
        self._input0 = [item.job.input_kb for item in pool]
        self._slot_item = [None] * len(jobs)
        for item in pool:
            self._slot_item[item.job_pos] = item
        self._order0 = np.asarray(
            [item.job_pos for item in pool], dtype=np.intp
        )
        self._input_arr = np.asarray(
            [job.input_kb for job in jobs], dtype=np.float64
        )
        self._unopened0 = np.arange(n_phones, dtype=np.intp)
        self._phone_ids = [phone.phone_id for phone in instance.phones]
        #: Sorted-list index at which ``_admit_bin`` inserted the bin.
        self._admit_at = 0
        #: True once any item is failure-marked in the current epoch;
        #: while False, the walk set is the whole order array and a
        #: walk position doubles as the item's list index.
        self._epoch_marked = False

    # -- public API --------------------------------------------------------

    def pack(
        self, capacity_ms: float, *, collect: bool = True
    ) -> PackingResult:
        """Run Algorithm 1 at ``capacity_ms``.

        ``collect=False`` runs the identical placement sequence but
        skips schedule accumulation, returning a verdict-only result
        (``schedule is None``).  The capacity search uses this for
        bisection probes whose schedules would be discarded anyway,
        and materialises the winning capacity with one collecting
        pack at the end.
        """
        started = time.perf_counter()
        result = self._pack_impl(capacity_ms, collect=collect)
        self._note_pack(result, started)
        return result

    def _pack_impl(
        self, capacity_ms: float, *, collect: bool = True
    ) -> PackingResult:
        if capacity_ms <= 0:
            return PackingResult(feasible=False, capacity_ms=capacity_ms)

        instance = self._instance
        items = self._item_pool.copy()
        for index, item in enumerate(items):
            item.remaining_kb = self._input0[index]
            item.key_ms = self._key0[index]
            item.failed_epoch = -1
        self._rem[:] = self._input_arr
        self._mark_epoch.fill(-1)
        self._order_buf[: len(items)] = self._order0
        self._order_n = len(items)
        self._epoch = 0
        self._epoch_marked = False
        self._bn = 0
        self._un_buf[:] = self._unopened0
        self._un_n = len(instance.phones)
        self._un_ids = self._phone_ids.copy()
        self._shipped[:, :] = False

        bins: list[_Bin] = []
        builder = ScheduleBuilder() if collect else None

        while items:
            if self._scan_opened(items, bins, builder, capacity_ms):
                continue
            if not self._un_ids:
                return PackingResult(feasible=False, capacity_ms=capacity_ms)
            opened = self._open_bin_vec(items[0], bins, capacity_ms)
            if opened is None:
                return PackingResult(feasible=False, capacity_ms=capacity_ms)
            if not self._place_and_sync(
                items, 0, opened, self._admit_at, bins, builder, capacity_ms
            ):
                return PackingResult(feasible=False, capacity_ms=capacity_ms)

        max_height = max((b.height_ms for b in bins), default=0.0)
        return PackingResult(
            feasible=True,
            capacity_ms=capacity_ms,
            schedule=builder.build() if collect else None,
            max_height_ms=float(max_height),
            opened_bins=len(bins),
        )

    # -- internals -----------------------------------------------------------

    def _place_and_sync(
        self,
        items,
        index,
        bin_,
        src,
        bins,
        builder,
        capacity_ms,
        size_kb=None,
    ) -> bool:
        """``GreedyPacker._pack_item_into_bin`` fused with mirror repair.

        Replicates the parent's placement statement for statement (same
        scalar ``_fit_kb``/``_exe_cost`` floats, same ``math.isclose``
        whole-placement test, same unique-key insertion points), but
        takes the bin's list index ``src`` from the caller — every
        caller already knows it — and reuses the one insertion-point
        bisect for both the Python list and the array mirrors.
        ``size_kb`` forwards a probe's already-computed fit, when the
        caller has one.
        """
        item = items[index]
        job = item.job
        pos = item.job_pos
        if size_kb is None:
            size_kb = self._fit_kb(bin_, item, capacity_ms)
        if size_kb <= 0:
            return False
        packed_whole_input = item.is_whole and math.isclose(
            size_kb, item.remaining_kb
        )
        cost = self._exe_cost(bin_, job) + size_kb * (
            self._per_kb_rows[bin_.phone_pos][pos]
        )
        bin_.height_ms += cost
        bin_.shipped_jobs.add(job.job_id)
        # Re-slot the grown bin.  Heights only grow, so it can only
        # move right: instead of the parent's delete + re-``insort``
        # (two full-tail shifts on the mirrors), rotate the
        # ``(src, dst]`` window left by one.  The destination comes
        # from a binary search over the height mirror, with equal
        # heights resolved by the precomputed lexicographic phone-id
        # ranks — the exact slot the parent's ``insort`` would pick.
        # Most placements grow the shortest bin by less than the gap
        # to its neighbour, where the cheap test below resolves
        # ``dst == src`` with no array traffic at all.
        bh, bp, be = self._bh_buf, self._bpos_buf, self._bep_buf
        nb = self._bn
        h = bin_.height_ms
        # ``h == bh[src]`` (zero-cost placement) keeps the unique
        # (height, phone_id) key, hence the exact same slot.
        if src + 1 >= nb or h < bh[src + 1] or h == bh[src]:
            dst = src
        else:
            arr = bh[:nb]
            p = int(arr.searchsorted(h, "left"))
            q = int(arr.searchsorted(h, "right"))
            if p != q:
                ranks = self._id_rank
                p += int(
                    ranks[bp[p:q]].searchsorted(
                        ranks[bin_.phone_pos], "left"
                    )
                )
            # The stale entry at ``src`` (height < h) sits left of the
            # insertion point and vanishes, shifting it down by one.
            dst = p - 1
            if dst > src:
                del bins[src]
                bins.insert(dst, bin_)
                bh[src:dst] = bh[src + 1 : dst + 1]
                bp[src:dst] = bp[src + 1 : dst + 1]
                be[src:dst] = be[src + 1 : dst + 1]
        bh[dst] = h
        bp[dst] = bin_.phone_pos
        be[dst] = self._open_epoch_by_pos[bin_.phone_pos]
        if builder is not None:
            builder.place(
                bin_.phone_id,
                job.job_id,
                job.task,
                size_kb,
                whole=packed_whole_input,
            )
        self._shipped[bin_.phone_pos, pos] = True
        order, n = self._order_buf, self._order_n
        if math.isclose(size_kb, item.remaining_kb):
            # Packed as a whole (of what remained): retire the slot.
            del items[index]
            order[index : n - 1] = order[index + 1 : n]
            self._order_n = n - 1
        else:
            # Reinsert the remainder; one insertion restores the exact
            # order a full re-sort would produce (job_id-unique keys).
            del items[index]
            item.remaining_kb -= size_kb
            item.key_ms = item.remaining_kb * self._c_slowest[pos]
            item.failed_epoch = -1
            new_index = bisect_left(items, _item_key(item), key=_item_key)
            items.insert(new_index, item)
            if index < new_index:
                order[index:new_index] = order[index + 1 : new_index + 1]
            elif index > new_index:
                order[new_index + 1 : index + 1] = order[new_index:index]
            order[new_index] = pos
            self._rem[pos] = item.remaining_kb
            self._mark_epoch[pos] = -1
        return True

    def _scan_opened(
        self,
        items: list[_Item],
        bins: list[_Bin],
        builder: ScheduleBuilder,
        capacity_ms: float,
    ) -> bool:
        """Line 4 of Algorithm 1: first item that fits an opened bin.

        Mirrors ``GreedyPacker._pack_into_opened`` decision for
        decision; see the module docstring for the scalar-head /
        vectorized-tail split and why the batched marking and
        stale-column pruning are exact.
        """
        if not bins:
            return False
        h0 = bins[0].height_ms
        if h0 > capacity_ms - self._universal_min_need:
            return False
        epoch = self._epoch
        marks = self._mark_epoch
        order = self._order_buf[: self._order_n]
        # While nothing is marked in this epoch, the walk set is the
        # whole order array and a walk position IS the item's index in
        # ``items`` (both are maintained in the same sort order).
        identity = not self._epoch_marked
        sel = order if identity else order[marks[order] != epoch]
        if sel.size == 0:
            return False
        minp = self._min_partition_kb
        min_per_kb = self._min_per_kb
        atomic = self._atomic_list

        # Scalar head: probe the first few walked items exactly as the
        # scalar scan would.
        head = min(_SCALAR_HEAD, sel.size)
        for k in range(head):
            pos = int(sel[k])
            item = self._slot_item[pos]
            rem_kb = item.remaining_kb
            x = rem_kb if (atomic[pos] or rem_kb <= minp) else minp
            h_max = capacity_ms - x * min_per_kb[pos] * (1.0 - 1e-9)
            if h0 > h_max:
                marks[pos] = epoch
                self._epoch_marked = True
                continue
            hit = None
            for bidx, bin_ in enumerate(bins):
                if bin_.height_ms > h_max:
                    break
                size_kb = self._fit_kb(bin_, item, capacity_ms)
                if size_kb > 0:
                    hit = bin_
                    break
            if hit is not None:
                if identity:
                    index = k
                else:
                    index = bisect_left(items, _item_key(item), key=_item_key)
                return self._place_and_sync(
                    items,
                    index,
                    hit,
                    bidx,
                    bins,
                    builder,
                    capacity_ms,
                    size_kb=size_kb,
                )
            marks[pos] = epoch
            self._epoch_marked = True

        # Vectorized tail: growing row chunks of 2-D fit blocks.
        start = head
        chunk = _CHUNK_ROWS
        bh = self._bh_buf[: self._bn]
        while start < sel.size:
            stop = min(sel.size, start + chunk)
            s = sel[start:stop]
            off = None
            rem = self._rem[s]
            x = np.where(self._atomic_arr[s] | (rem <= minp), rem, minp)
            h_max = capacity_ms - x * self._min_per_kb_arr[s] * (1.0 - 1e-9)
            hopeless = h0 > h_max
            if hopeless.any():
                marks[s[hopeless]] = epoch
                self._epoch_marked = True
                if hopeless.all():
                    start = stop
                    chunk *= 8
                    continue
                keep = ~hopeless
                off = np.nonzero(keep)[0]
                s = s[keep]
                rem = rem[keep]
                h_max = h_max[keep]
            # Per-item probed-bin prefix: the scalar walk breaks at the
            # first bin taller than the item's cutoff.
            n_i = np.searchsorted(bh, h_max, side="right")
            hit = self._probe_block(s, rem, n_i, bins, capacity_ms)
            if hit is not None:
                row, col = hit
                # Items walked before the fit carry a fresh mark, just
                # as the scalar scan leaves them.
                if row:
                    marks[s[:row]] = epoch
                    self._epoch_marked = True
                pos = int(s[row])
                item = self._slot_item[pos]
                if identity:
                    index = start + (row if off is None else int(off[row]))
                else:
                    index = bisect_left(items, _item_key(item), key=_item_key)
                return self._place_and_sync(
                    items, index, bins[col], col, bins, builder, capacity_ms
                )
            marks[s] = epoch
            self._epoch_marked = True
            start = stop
            chunk *= 8
        return False

    def _probe_block(
        self,
        sel: np.ndarray,
        rem: np.ndarray,
        n_i: np.ndarray,
        bins: list[_Bin],
        capacity_ms: float,
    ) -> tuple[int, int] | None:
        """One ``items × bins`` fit block; first (row, bin index) hit.

        Columns are restricted to bins opened after the oldest mark in
        the chunk — provably the only bins any stale-marked row can
        newly fit — and per-row masks reimpose each row's own prefix
        and mark epoch, so every computed-or-skipped verdict equals
        the scalar probe's.
        """
        nmax = int(n_i.max())
        if nmax == 0:
            return None
        row_ep = self._mark_epoch[sel]
        bep = self._bep_buf[:nmax]
        cols = np.nonzero(bep > int(row_ep.min()))[0]
        if cols.size == 0:
            return None
        if sel.size * cols.size <= 32:
            # Tiny block: a handful of scalar oracle probes beats the
            # ~12 array-kernel launches below.  Same row-major walk,
            # same per-row prefix and mark-epoch pruning.
            col_list = cols.tolist()
            ep_list = row_ep.tolist()
            slots = self._slot_item
            fit = self._fit_kb
            for r in range(sel.size):
                prefix = int(n_i[r])
                mark = ep_list[r]
                item = None
                for col in col_list:
                    if col >= prefix:
                        break
                    if int(bep[col]) <= mark:
                        continue
                    if item is None:
                        item = slots[int(sel[r])]
                    if fit(bins[col], item, capacity_ms) > 0:
                        return r, col
            return None
        pp = self._bpos_buf[cols]
        shipped = self._shipped[pp[None, :], sel[:, None]]
        exe = np.where(
            shipped, 0.0, self._exe_arr[sel][:, None] * self._b_arr[pp][None, :]
        )
        headroom = (capacity_ms - self._bh_buf[cols])[None, :] - exe
        pkb = self._pkb_mat[pp[None, :], sel[:, None]]
        if self._any_free:
            with np.errstate(divide="ignore", invalid="ignore"):
                max_kb = np.where(pkb <= 0, rem[:, None], headroom / pkb)
        else:
            max_kb = headroom / pkb
        if self._ram_arr is not None:
            max_kb = np.minimum(max_kb, self._ram_arr[pp][None, :])
        minp = self._min_partition_kb
        tol = (rem * (1.0 - 1e-9))[:, None]
        whole = max_kb >= tol
        if self._ram_arr is not None:
            # Footnote 4's strict all-or-nothing check for atomic jobs.
            ok_atomic = max_kb >= rem[:, None]
        else:
            ok_atomic = whole
        partial = (max_kb >= minp) & (
            (rem[:, None] - max_kb >= minp) | ((rem - minp) >= minp)[:, None]
        )
        fit = (headroom > 0.0) & np.where(
            self._atomic_arr[sel][:, None], ok_atomic, whole | partial
        )
        fit &= cols[None, :] < n_i[:, None]
        fit &= bep[cols][None, :] > row_ep[:, None]
        rowhit = fit.any(axis=1)
        if not rowhit.any():
            return None
        row = int(np.argmax(rowhit))
        return row, int(cols[int(np.argmax(fit[row]))])

    def _open_bin_vec(
        self, item: _Item, bins: list[_Bin], capacity_ms: float
    ) -> _Bin | None:
        """Vectorized Line 15: cheapest unopened phone for ``item``."""
        pos_arr = self._un_buf[: self._un_n]
        ids = self._un_ids
        job = item.job
        cost = self._pkb_t[item.job_pos].take(pos_arr)
        cost *= item.remaining_kb
        exe_part = self._b_arr.take(pos_arr)
        exe_part *= job.executable_kb
        cost += exe_part
        minimum = cost.min()
        ties = np.nonzero(cost == minimum)[0]
        if ties.size == 1:
            k = int(ties[0])
        else:
            # Smallest phone_id among the ties == smallest precomputed
            # lexicographic rank (phone_ids are unique).
            k = int(ties[int(np.argmin(self._id_rank[pos_arr[ties]]))])
        candidate = _Bin(phone_id=ids[k], phone_pos=int(pos_arr[k]))
        if self._fit_kb(candidate, item, capacity_ms) > 0:
            return self._admit_bin(candidate, k, bins)
        # Rare path: the cheapest phone rejects (RAM / atomic job too
        # large).  Walk the rest in (cost, phone_id) order, exactly as
        # the scalar fallback does.
        cheapest_id = candidate.phone_id
        entries = sorted(
            (float(cost[i]), ids[i], i) for i in range(len(ids))
        )
        for _, phone_id, i in entries:
            if phone_id == cheapest_id:
                continue
            fallback = _Bin(phone_id=phone_id, phone_pos=int(pos_arr[i]))
            if self._fit_kb(fallback, item, capacity_ms) > 0:
                return self._admit_bin(fallback, i, bins)
        return None

    def _admit_bin(self, bin_: _Bin, unopened_index: int, bins) -> _Bin:
        """Open ``bin_``: new epoch, list insort, mirror inserts."""
        un, un_n = self._un_buf, self._un_n
        un[unopened_index : un_n - 1] = un[unopened_index + 1 : un_n]
        self._un_n = un_n - 1
        del self._un_ids[unopened_index]
        self._epoch += 1
        self._epoch_marked = False
        self._open_epoch_by_pos[bin_.phone_pos] = self._epoch
        bh, bp, be, n = self._bh_buf, self._bpos_buf, self._bep_buf, self._bn
        view = bh[:n]
        at = int(view.searchsorted(bin_.height_ms, "left"))
        hi = int(view.searchsorted(bin_.height_ms, "right"))
        if at != hi:
            ranks = self._id_rank
            at += int(
                ranks[bp[at:hi]].searchsorted(
                    ranks[bin_.phone_pos], "left"
                )
            )
        bins.insert(at, bin_)
        bh[at + 1 : n + 1] = bh[at:n]
        bp[at + 1 : n + 1] = bp[at:n]
        be[at + 1 : n + 1] = be[at:n]
        bh[at] = bin_.height_ms
        bp[at] = bin_.phone_pos
        be[at] = self._epoch
        self._bn = n + 1
        self._admit_at = at
        return bin_
