"""Zero-copy shared-memory plane for capacity-probe workers.

The capacity search's speculative probes run full Algorithm-1 packs in
worker processes; their dominant input is the dense ``c`` cost matrix
(8 · phones · jobs bytes — 40 MB at the paper's 1000 × 5000 fleet
scale).  :class:`SharedMatrix` publishes that matrix once through
``multiprocessing.shared_memory`` and hands workers a tiny picklable
:class:`SharedMatrixSpec`; :func:`attach_matrix` maps the same physical
pages read-only on the worker side, so probe workers stop paying any
per-worker serialization or duplication of the cost table.  (Under the
``fork`` start method the matrix pages are also inherited copy-on-write;
the explicit segment keeps the sharing start-method-independent and
gives the teardown guarantees below.)

Teardown discipline — segments outlive processes unless unlinked, so
every exit path is covered:

* the **owner** (the search) unlinks in a ``finally`` as soon as the
  search completes, even when it raises;
* an **atexit hook** unlinks if the owning interpreter exits with a
  search still in flight (e.g. ``sys.exit`` from a kill drill);
* Python's **resource tracker** — a separate daemon process — unlinks
  registered segments if the owner dies without running either (hard
  crash, ``SIGKILL``);
* workers only *attach*; attach-side registrations collapse into the
  owner's in the shared fork-context tracker, so worker deaths never
  unlink a live segment early and never leave extra registrations.

:func:`leaked_segments` scans ``/dev/shm`` for this module's name
prefix so chaos drills and CI can assert that no segment survived a
killed run.
"""

from __future__ import annotations

import atexit
import os
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "SharedMatrix",
    "SharedMatrixSpec",
    "attach_matrix",
    "leaked_segments",
]

#: Every segment this module creates is named ``cwc-probe-<pid>-<n>``,
#: making ownership obvious in ``/dev/shm`` listings and leak scans.
SEGMENT_PREFIX = "cwc-probe-"

_counter = 0


@dataclass(frozen=True)
class SharedMatrixSpec:
    """Picklable handle a worker needs to attach the matrix."""

    name: str
    shape: tuple[int, int]


class SharedMatrix:
    """Owner side: a float64 matrix copied once into a shm segment.

    ``close_and_unlink`` is idempotent and registered with ``atexit``;
    call it from a ``finally`` as soon as the workers are done.
    """

    def __init__(self, mat) -> None:
        global _counter
        arr = np.ascontiguousarray(mat, dtype=np.float64)
        if arr.ndim != 2:
            raise ValueError(f"expected a 2-D matrix, got shape {arr.shape}")
        shm = None
        while shm is None:
            _counter += 1
            name = f"{SEGMENT_PREFIX}{os.getpid()}-{_counter}"
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=max(arr.nbytes, 8)
                )
            except FileExistsError:
                continue
        self._shm = shm
        view = np.ndarray(arr.shape, dtype=np.float64, buffer=shm.buf)
        view[...] = arr
        self.spec = SharedMatrixSpec(name=shm.name, shape=tuple(arr.shape))
        self._closed = False
        atexit.register(self.close_and_unlink)

    def close_and_unlink(self) -> None:
        """Release the mapping and remove the segment (idempotent)."""
        if self._closed:
            return
        self._closed = True
        try:
            self._shm.close()
        except Exception:
            pass
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        atexit.unregister(self.close_and_unlink)


def attach_matrix(spec: SharedMatrixSpec):
    """Worker side: map the owner's segment read-only.

    Returns ``(segment, matrix)``; the caller must keep ``segment``
    referenced for as long as the matrix is in use (the worker holds it
    in a module global for its whole life) and must *not* unlink it —
    teardown belongs to the owner.
    """
    segment = shared_memory.SharedMemory(name=spec.name, create=False)
    mat = np.ndarray(spec.shape, dtype=np.float64, buffer=segment.buf)
    mat.setflags(write=False)
    return segment, mat


def leaked_segments() -> list[str]:
    """Names of this module's segments still present in ``/dev/shm``.

    Empty on platforms without a ``/dev/shm`` view of POSIX shared
    memory; chaos drills assert this is empty after killed runs.
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(SEGMENT_PREFIX))
