"""Task migration and failure bookkeeping (Sections 5 and 6).

CWC treats an unplugged phone as a failed node.  Two failure classes
exist:

* **online failure** — the phone still has connectivity and reports how
  much of its current partition it processed together with the
  intermediate (partial) result; only the *unprocessed remainder* is
  re-enqueued and the partial result is saved at the server (this is the
  JavaGO-style state migration of Section 6);
* **offline failure** — the phone vanishes (detected by missed
  keep-alives), so the last copied partition is re-enqueued *whole* and
  any partial work is lost.

Failed work is *not* rescheduled immediately: it accumulates in the
failed-task list ``F_A`` and is combined with newly arrived jobs at the
next scheduling instant, giving briefly-unplugged phones a chance to
re-enter the fleet.  :class:`FailedTaskList` implements exactly this
bookkeeping.
"""

from __future__ import annotations

import enum
import math
from collections import defaultdict
from dataclasses import dataclass

from .model import Job

__all__ = ["Checkpoint", "FailureKind", "FailedTaskList"]


class FailureKind(enum.Enum):
    """How work was lost (Section 5's classes plus chaos-era ones)."""

    #: Phone unplugged but reported its state before suspending.
    ONLINE = "online"

    #: Phone lost connectivity; detected via missed keep-alives.
    OFFLINE = "offline"

    #: The task itself crashed (or exhausted its retry budget); the
    #: phone is still healthy and keeps receiving other work.
    CRASH = "crash"

    #: Duplicate execution disagreed with the original result; both
    #: copies are discarded and the partition re-enters the queue.
    QUARANTINE = "quarantine"


@dataclass(frozen=True, slots=True)
class Checkpoint:
    """Migratable state of a partially executed partition.

    This is the Python analogue of a JavaGO ``undock``: the portion of
    the input already processed plus the intermediate result, shipped to
    the central server for later resumption on another phone.
    """

    job_id: str
    task: str
    phone_id: str
    partition_kb: float
    processed_kb: float
    partial_result: object
    time_ms: float

    def __post_init__(self) -> None:
        if not math.isfinite(self.partition_kb) or self.partition_kb <= 0:
            raise ValueError(
                f"partition_kb must be finite and > 0, got {self.partition_kb!r}"
            )
        if (
            not math.isfinite(self.processed_kb)
            or not 0 <= self.processed_kb <= self.partition_kb
        ):
            raise ValueError(
                "processed_kb must lie in [0, partition_kb], got "
                f"{self.processed_kb!r} of {self.partition_kb!r}"
            )

    @property
    def remaining_kb(self) -> float:
        return self.partition_kb - self.processed_kb


@dataclass(slots=True)
class _FailedEntry:
    job: Job
    remaining_kb: float
    checkpoint: Checkpoint | None
    kind: FailureKind


class FailedTaskList:
    """The failed-task list ``F_A`` accumulated between schedules.

    Entries are merged per job when the list is drained: if several
    phones failed while holding partitions of the same breakable job,
    the next scheduling round sees a single job whose input is the total
    unprocessed remainder.
    """

    def __init__(self) -> None:
        self._entries: list[_FailedEntry] = []
        self._saved_partials: dict[str, list[Checkpoint]] = defaultdict(list)

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def is_empty(self) -> bool:
        return not self._entries

    def record_online_failure(self, job: Job, checkpoint: Checkpoint) -> None:
        """An unplugged phone reported progress on its current partition.

        The checkpoint's partial result is saved; only the unprocessed
        remainder of the partition re-enters the queue.  A checkpoint
        that processed everything contributes no remaining work but its
        partial result is still recorded.
        """
        if checkpoint.job_id != job.job_id:
            raise ValueError(
                f"checkpoint for {checkpoint.job_id!r} does not match job "
                f"{job.job_id!r}"
            )
        self._saved_partials[job.job_id].append(checkpoint)
        if checkpoint.remaining_kb > 0:
            self._entries.append(
                _FailedEntry(
                    job=job,
                    remaining_kb=checkpoint.remaining_kb,
                    checkpoint=checkpoint,
                    kind=FailureKind.ONLINE,
                )
            )

    def record_offline_failure(self, job: Job, partition_kb: float) -> None:
        """A vanished phone's last copied partition re-enters whole."""
        if partition_kb <= 0:
            raise ValueError(f"partition_kb must be > 0, got {partition_kb!r}")
        self._entries.append(
            _FailedEntry(
                job=job,
                remaining_kb=partition_kb,
                checkpoint=None,
                kind=FailureKind.OFFLINE,
            )
        )

    def record_pending(self, job: Job, partition_kb: float) -> None:
        """A partition that was scheduled but never copied to the phone.

        When a phone fails, everything left in its queue is re-enqueued
        untouched; no state was lost because nothing had been shipped.
        """
        self.record_offline_failure(job, partition_kb)

    def record_crashed(self, job: Job, partition_kb: float) -> None:
        """A partition whose execution crashed past its retry budget."""
        if partition_kb <= 0:
            raise ValueError(f"partition_kb must be > 0, got {partition_kb!r}")
        self._entries.append(
            _FailedEntry(
                job=job,
                remaining_kb=partition_kb,
                checkpoint=None,
                kind=FailureKind.CRASH,
            )
        )

    def record_quarantined(self, job: Job, partition_kb: float) -> None:
        """A partition whose results disagreed under duplicate execution."""
        if partition_kb <= 0:
            raise ValueError(f"partition_kb must be > 0, got {partition_kb!r}")
        self._entries.append(
            _FailedEntry(
                job=job,
                remaining_kb=partition_kb,
                checkpoint=None,
                kind=FailureKind.QUARANTINE,
            )
        )

    def state(self) -> dict:
        """JSON-safe snapshot of the pending entries and banked partials.

        Job identity plus remaining input is all a scheduling instant
        consumes from ``F_A``, so this is the complete durable state of
        the list; the durability layer folds it into the server digest.
        """

        def _checkpoint_dict(checkpoint: Checkpoint | None) -> dict | None:
            if checkpoint is None:
                return None
            return {
                "job_id": checkpoint.job_id,
                "task": checkpoint.task,
                "phone_id": checkpoint.phone_id,
                "partition_kb": checkpoint.partition_kb,
                "processed_kb": checkpoint.processed_kb,
                "time_ms": checkpoint.time_ms,
            }

        return {
            "entries": [
                {
                    "job_id": entry.job.job_id,
                    "remaining_kb": entry.remaining_kb,
                    "kind": entry.kind.value,
                    "checkpoint": _checkpoint_dict(entry.checkpoint),
                }
                for entry in self._entries
            ],
            "saved_partials": {
                job_id: [_checkpoint_dict(c) for c in checkpoints]
                for job_id, checkpoints in sorted(
                    self._saved_partials.items()
                )
            },
        }

    def counts_by_kind(self) -> dict[FailureKind, int]:
        """Pending entries per failure kind (diagnostics, not drained)."""
        counts: dict[FailureKind, int] = defaultdict(int)
        for entry in self._entries:
            counts[entry.kind] += 1
        return dict(counts)

    def saved_partials(self, job_id: str) -> tuple[Checkpoint, ...]:
        """Checkpoints whose partial results the server has banked."""
        return tuple(self._saved_partials.get(job_id, ()))

    def drain(self) -> tuple[Job, ...]:
        """Merge and remove all failed work, ready for rescheduling.

        Returns one :class:`Job` per distinct failed job, carrying the
        total unprocessed input.  Saved partial results remain available
        through :meth:`saved_partials` so the server can aggregate them
        with the results of the resumed executions.
        """
        remaining_by_job: dict[str, float] = defaultdict(float)
        job_by_id: dict[str, Job] = {}
        for entry in self._entries:
            remaining_by_job[entry.job.job_id] += entry.remaining_kb
            job_by_id[entry.job.job_id] = entry.job
        self._entries.clear()
        return tuple(
            job_by_id[job_id].with_input(remaining)
            for job_id, remaining in remaining_by_job.items()
            if remaining > 0
        )
