"""Pluggable scheduling policies and their registry.

``make_policy(name)`` is the single constructor the simulator, the
scenario fuzzer, the continuous campaign, and the tournament harness
share; ``POLICY_NAMES`` is the closed set of competitors.  The default
policy *is* :class:`~repro.core.greedy.CwcScheduler` — requesting
``"cwc-greedy"`` returns the exact scheduler every previous release
ran, so default-policy schedules (and therefore the fuzz digests and
the differential harness) stay byte-identical.
"""

from __future__ import annotations

from ..greedy import CwcScheduler
from .base import ReplicaDirective, SchedulingPolicy
from .energy import (
    EnergyAwarePolicy,
    assignment_energy_j,
    phone_cpu_draw_w,
    run_energy_joules,
)
from .replication import ReplicationPolicy
from .sec import ShortestExpectedCompletionPolicy

__all__ = [
    "DEFAULT_POLICY",
    "POLICY_NAMES",
    "EnergyAwarePolicy",
    "ReplicaDirective",
    "ReplicationPolicy",
    "SchedulingPolicy",
    "ShortestExpectedCompletionPolicy",
    "assignment_energy_j",
    "make_policy",
    "phone_cpu_draw_w",
    "run_energy_joules",
]

#: The policy whose schedules are pinned byte-identical across releases.
DEFAULT_POLICY = "cwc-greedy"

#: Every known policy, default first.
POLICY_NAMES = (
    DEFAULT_POLICY,
    "replication",
    "energy-aware",
    "shortest-expected",
)


#: Capacity-search knobs that only make sense for the CWC-backed
#: policies; searchless policies accept and ignore them so one call
#: site (e.g. the scenario->server mapping) can thread its scheduler
#: configuration through ``make_policy`` uniformly.
_SEARCH_ONLY_KWARGS = frozenset(
    {
        "kernel",
        "warm_start",
        "probe_workers",
        "batch_width",
        "shared_mem",
        "epsilon_ms",
        "min_partition_kb",
        "max_iterations",
        "ram",
    }
)


def make_policy(
    name: str,
    *,
    unreliable=(),
    telemetry=None,
    **kwargs,
) -> SchedulingPolicy:
    """Construct a policy by registry name.

    ``unreliable`` (phone ids to distrust) only reaches the
    replication policy.  Capacity-search knobs (``kernel``,
    ``warm_start``, ``probe_workers``, ...) configure the CWC-backed
    policies and are ignored by the searchless ones; any *other*
    unknown keyword is rejected by the policy's constructor.
    """
    if name == DEFAULT_POLICY:
        return CwcScheduler(telemetry=telemetry, **kwargs)
    if name == "replication":
        return ReplicationPolicy(
            unreliable=unreliable, telemetry=telemetry, **kwargs
        )
    searchless = {
        key: value
        for key, value in kwargs.items()
        if key not in _SEARCH_ONLY_KWARGS
    }
    if name == "energy-aware":
        return EnergyAwarePolicy(telemetry=telemetry, **searchless)
    if name == "shortest-expected":
        return ShortestExpectedCompletionPolicy(
            telemetry=telemetry, **searchless
        )
    raise ValueError(
        f"unknown scheduling policy {name!r}; known policies: "
        f"{', '.join(POLICY_NAMES)}"
    )
