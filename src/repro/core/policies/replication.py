"""Replication-aware policy: duplicate at-risk whole jobs up front.

PR 1's resilience layer reacts to churn — a straggler watchdog fires,
*then* a speculative backup launches.  Under high churn the reaction
is the problem: by the time the watchdog or keep-alive probe notices,
the partition has already lost minutes.  Following the
replication/timing policies for stochastic jobs on unreliable workers
(Hsu–Huang–Shieh, PAPERS.md), this policy schedules exactly like CWC
greedy — the packing is byte-identical to
:class:`~repro.core.greedy.CwcScheduler` — but additionally asks the
server to launch proactive backups of whole jobs whose primary landed
on a phone it distrusts.  The duplicates ride the server's existing
first-result-wins machinery, so work is still credited exactly once
and the conservation invariants hold unchanged.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..greedy import CwcScheduler
from ..instance import SchedulingInstance
from ..schedule import Schedule
from .base import ReplicaDirective

__all__ = ["ReplicationPolicy"]


class ReplicationPolicy:
    """CWC greedy packing plus proactive replica directives.

    Parameters
    ----------
    unreliable:
        Phone ids the policy distrusts (e.g. phones named by a chaos
        plan, or phones with a poor historical completion rate).  When
        empty, *every* phone is treated as at-risk — the policy then
        replicates the most exposed whole jobs across the fleet.
    replication_factor:
        Proactive copies requested per at-risk whole job (>= 1).
    max_replicas:
        Hard cap on directives per round; ``None`` defaults to one
        directive per phone in the instance, which bounds the redundant
        load at roughly one extra queue slot per phone.
    **scheduler_kwargs:
        Forwarded verbatim to the inner
        :class:`~repro.core.greedy.CwcScheduler` (kernel, warm_start,
        telemetry, ...), so the base schedules stay byte-identical to
        the default policy under every hot-path configuration.
    """

    name = "replication"

    def __init__(
        self,
        *,
        unreliable: Iterable[str] = (),
        replication_factor: int = 1,
        max_replicas: int | None = None,
        **scheduler_kwargs,
    ) -> None:
        if replication_factor < 1:
            raise ValueError(
                f"replication_factor must be >= 1, got {replication_factor!r}"
            )
        if max_replicas is not None and max_replicas < 0:
            raise ValueError(
                f"max_replicas must be >= 0, got {max_replicas!r}"
            )
        self._base = CwcScheduler(**scheduler_kwargs)
        self._unreliable = frozenset(str(p) for p in unreliable)
        self._factor = int(replication_factor)
        self._max_replicas = max_replicas
        self._last_replicas: tuple[ReplicaDirective, ...] = ()

    def schedule(self, instance: SchedulingInstance) -> Schedule:
        """CWC-greedy schedule plus replica directives for this round."""
        schedule = self._base.schedule(instance)
        self._last_replicas = self._plan_replicas(instance, schedule)
        return schedule

    # -- delegated diagnostics (RoundRecord reads these duck-typed) -------

    @property
    def last_result(self):
        """The inner capacity search's diagnostics."""
        return self._base.last_result

    @property
    def last_replicas(self) -> tuple[ReplicaDirective, ...]:
        """Replica directives attached to the most recent round."""
        return self._last_replicas

    @property
    def stats(self):
        """The inner scheduler's accumulated hot-path counters."""
        return self._base.stats

    def reset_warm_state(self) -> None:
        self._base.reset_warm_state()

    def warm_state(self) -> dict:
        return self._base.warm_state()

    def restore_warm_state(self, state: dict) -> None:
        self._base.restore_warm_state(state)

    # -- replica planning --------------------------------------------------

    def _plan_replicas(
        self, instance: SchedulingInstance, schedule: Schedule
    ) -> tuple[ReplicaDirective, ...]:
        phones = instance.phones
        if len(phones) < 2:
            return ()
        # At-risk whole assignments, most exposed (costliest) first.
        candidates: list[tuple[float, str, str]] = []
        for phone in phones:
            at_risk = (
                not self._unreliable or phone.phone_id in self._unreliable
            )
            if not at_risk:
                continue
            for assignment in schedule.for_phone(phone.phone_id):
                if not assignment.whole:
                    continue
                candidates.append(
                    (
                        instance.cost(phone.phone_id, assignment.job_id),
                        assignment.job_id,
                        phone.phone_id,
                    )
                )
        if not candidates:
            return ()
        candidates.sort(key=lambda entry: (-entry[0], entry[1]))

        budget = (
            self._max_replicas
            if self._max_replicas is not None
            else len(phones)
        )
        # Projected finish per phone: schedule load plus replicas already
        # planned this round, so directives spread instead of piling up.
        projected = {
            phone.phone_id: schedule.predicted_finish_ms(
                instance, phone.phone_id
            )
            for phone in phones
        }
        reliable = [
            phone.phone_id
            for phone in phones
            if phone.phone_id not in self._unreliable
        ]
        directives: list[ReplicaDirective] = []
        for _cost, job_id, primary in candidates:
            if len(directives) >= budget:
                break
            taken = {primary}
            for _copy in range(self._factor):
                if len(directives) >= budget:
                    break
                target = self._pick_target(
                    instance, job_id, taken, reliable, projected
                )
                if target is None:
                    break
                taken.add(target)
                projected[target] += instance.cost(target, job_id)
                directives.append(
                    ReplicaDirective(phone_id=target, job_id=job_id)
                )
        return tuple(directives)

    def _pick_target(
        self,
        instance: SchedulingInstance,
        job_id: str,
        taken: set[str],
        reliable: list[str],
        projected: dict[str, float],
    ) -> str | None:
        """Least-finishing eligible phone; reliable phones preferred."""
        pools = (
            [pid for pid in reliable if pid not in taken],
            [
                phone.phone_id
                for phone in instance.phones
                if phone.phone_id not in taken
            ],
        )
        for pool in pools:
            if not pool:
                continue
            return min(
                pool,
                key=lambda pid: (
                    projected[pid] + instance.cost(pid, job_id),
                    instance.phone_position(pid),
                ),
            )
        return None
