"""Shortest-expected-completion baseline policy.

Classic list scheduling: jobs in descending best-case cost (LPT
order), each placed whole on the phone whose queue finishes soonest
after taking it.  It is heterogeneity-aware — unlike the paper's
round-robin and equal-split baselines it reads ``b_i`` and ``c_ij`` —
but it never splits breakable jobs and never searches capacities, so
it brackets CWC greedy from a different direction than the oblivious
Section-6 baselines do: same information, strictly less machinery.
"""

from __future__ import annotations

from ...obs.telemetry import NULL_TELEMETRY
from ...obs.tracing import maybe_span
from ..instance import SchedulingInstance
from ..schedule import Schedule, ScheduleBuilder
from .base import sorted_jobs_by_cost

__all__ = ["ShortestExpectedCompletionPolicy"]


class ShortestExpectedCompletionPolicy:
    """Whole-job LPT onto the earliest-finishing phone."""

    name = "shortest-expected"

    #: This policy never requests proactive replication.
    last_replicas: tuple = ()
    #: No capacity search ran, so there are no search diagnostics.
    last_result = None

    def __init__(self, *, telemetry=None) -> None:
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY

    def schedule(self, instance: SchedulingInstance) -> Schedule:
        """Place each job on the phone that completes it soonest."""
        tel = self._tel
        tracer = tel.tracer if tel.enabled else None
        with maybe_span(
            tracer,
            "schedule",
            category="scheduler",
            scheduler=self.name,
            jobs=len(instance.jobs),
            phones=len(instance.phones),
        ):
            return self._build(instance)

    def _build(self, instance: SchedulingInstance) -> Schedule:
        finish = {phone.phone_id: 0.0 for phone in instance.phones}
        builder = ScheduleBuilder()
        for job in sorted_jobs_by_cost(instance):
            best = min(
                instance.phones,
                key=lambda phone: (
                    finish[phone.phone_id]
                    + instance.cost(phone.phone_id, job.job_id),
                    instance.phone_position(phone.phone_id),
                ),
            )
            finish[best.phone_id] += instance.cost(
                best.phone_id, job.job_id
            )
            builder.place(
                best.phone_id, job.job_id, job.task, job.input_kb, whole=True
            )
        return builder.build()
