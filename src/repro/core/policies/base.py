"""The pluggable scheduling-policy interface.

The CWC paper evaluates exactly one scheduler — the greedy CBP packer
inside a capacity search — and argues it is "good enough" for phone
fleets.  The related work disagrees on *what to optimise*: replication
policies for stochastic jobs on unreliable workers (Hsu–Huang–Shieh)
and energy-aware profit-maximising scheduling (Li et al.) both trade
makespan for other objectives.  This module extracts the interface all
of them share so the simulator, the fuzzer, and the tournament harness
(:mod:`repro.verify.tournament`) can treat scheduling policies as
interchangeable competitors.

A :class:`SchedulingPolicy` is a
:class:`~repro.core.greedy.Scheduler` — ``name`` plus
``schedule(instance) -> Schedule`` — extended with one optional output
channel: ``last_replicas``, a tuple of :class:`ReplicaDirective`
records describing whole jobs the policy wants the server to run
redundantly.  The directives deliberately live *outside* the
:class:`~repro.core.schedule.Schedule`:
:meth:`~repro.core.schedule.Schedule.validate` (and the oracle's
conservation invariants) require every byte covered exactly once, so
proactive duplication rides the server's existing speculative-backup
machinery — first result wins, rivals are cancelled, work is credited
exactly once — rather than the schedule's coverage accounting.

:class:`~repro.core.greedy.CwcScheduler` is the *default* policy: it
satisfies this protocol unchanged (``last_replicas`` is always empty)
and its schedules stay byte-identical to every release since PR 2,
which the differential harness and the fuzz digests enforce.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from ..greedy import Scheduler
from ..instance import SchedulingInstance
from ..schedule import Schedule

__all__ = ["ReplicaDirective", "SchedulingPolicy"]


@dataclass(frozen=True, slots=True)
class ReplicaDirective:
    """Ask the server to run one whole job redundantly on ``phone_id``.

    Only jobs placed whole on a single phone can be replicated (a split
    job's partitions already race no one; duplicating one partition
    would double-credit its bytes).  The server validates the target at
    dispatch time and silently skips directives it cannot honour — a
    policy plans against the round's instance, but phones can fail
    between planning and dispatch.
    """

    phone_id: str
    job_id: str

    def __post_init__(self) -> None:
        if not self.phone_id:
            raise ValueError("phone_id must be a non-empty string")
        if not self.job_id:
            raise ValueError("job_id must be a non-empty string")


@runtime_checkable
class SchedulingPolicy(Scheduler, Protocol):
    """A scheduler that may also request proactive replication.

    ``last_replicas`` holds the directives attached to the most recent
    ``schedule()`` call; schedulers that never replicate expose an
    empty tuple.  The server reads the attribute duck-typed (plain
    schedulers without it still work), but every policy built by
    :func:`repro.core.policies.make_policy` satisfies this protocol.
    """

    last_replicas: tuple[ReplicaDirective, ...]


def whole_assignments(schedule: Schedule) -> list[tuple[str, str]]:
    """``(phone_id, job_id)`` pairs for jobs placed whole on one phone."""
    pairs: list[tuple[str, str]] = []
    for phone_id in schedule.phone_ids:
        for assignment in schedule.for_phone(phone_id):
            if assignment.whole:
                pairs.append((phone_id, assignment.job_id))
    return pairs


def sorted_jobs_by_cost(instance: SchedulingInstance) -> list:
    """Jobs in descending best-case whole-job cost (LPT order).

    Ties break on ``job_id`` so the order — and therefore every policy
    built on it — is deterministic for a given instance.
    """

    def best_cost(job) -> float:
        return min(
            instance.cost(phone.phone_id, job.job_id)
            for phone in instance.phones
        )

    return sorted(
        instance.jobs, key=lambda job: (-best_cost(job), job.job_id)
    )


def check_fraction(name: str, value: float) -> float:
    """Validate a (0, 1] fraction knob shared by the policies."""
    if not math.isfinite(value) or not 0.0 < value <= 1.0:
        raise ValueError(f"{name} must lie in (0, 1], got {value!r}")
    return float(value)
