"""Energy-aware policy: maximise completed work per joule.

CWC assumes phones on chargers have free energy; the energy-aware
scheduling literature (Li et al., PAPERS.md) does not — every joule a
task burns is a joule not charging the battery, and the `repro.power`
battery model (PR: power subsystem) quantifies exactly that through
each profile's ``cpu_draw_w``.  This policy concentrates work on the
most work-per-joule-efficient slice of the fleet instead of spreading
it across every phone the way the makespan-minimising CWC greedy does:
it ranks phones by how much computation a joule buys on them, keeps
the best ``efficient_fraction``, and then packs jobs whole onto that
slice with a load-balance term so the makespan degrades gracefully
rather than collapsing onto a single phone.

The same electrical model doubles as the measurement side: the
tournament harness charges a run's energy bill with
:func:`run_energy_joules` over the timeline trace, so the policy and
the scoreboard agree on what a joule is.
"""

from __future__ import annotations

import math

from ...obs.telemetry import NULL_TELEMETRY
from ...obs.tracing import maybe_span
from ...power.battery import HTC_G2, HTC_SENSATION
from ..instance import SchedulingInstance
from ..model import PhoneSpec
from ..schedule import Schedule, ScheduleBuilder
from .base import check_fraction, sorted_jobs_by_cost

__all__ = [
    "EnergyAwarePolicy",
    "phone_cpu_draw_w",
    "assignment_energy_j",
    "run_energy_joules",
]


def phone_cpu_draw_w(phone: PhoneSpec) -> float:
    """Full-load CPU draw (watts) for one phone.

    The two paper handsets map to their measured
    :mod:`repro.power.battery` profiles; synthetic fleet members get a
    deterministic draw interpolated between the two presets by clock
    speed (faster silicon of the era burned more power).
    """
    model = phone.model_name.lower()
    if "sensation" in model:
        return HTC_SENSATION.cpu_draw_w
    if "g2" in model or "desire" in model:
        return HTC_G2.cpu_draw_w
    low, high = HTC_G2.cpu_draw_w, HTC_SENSATION.cpu_draw_w
    fraction = (min(max(phone.cpu_mhz, 500.0), 2000.0) - 500.0) / 1500.0
    return round(low + (high - low) * fraction, 6)


def assignment_energy_j(
    instance: SchedulingInstance,
    phone_id: str,
    job_id: str,
    input_kb: float | None = None,
) -> float:
    """Joules one partition costs on one phone (CPU draw x busy time)."""
    draw_w = phone_cpu_draw_w(instance.phone(phone_id))
    return draw_w * instance.cost(phone_id, job_id, input_kb) / 1000.0


def run_energy_joules(trace, phones) -> float:
    """Total joules a finished run burned across the fleet.

    Charged as each phone's busy time (copy + execute spans, including
    interrupted and speculative ones — wasted work still burned power)
    times its full-load draw.  Deterministic given the trace, so the
    number is digest-stable across reruns.
    """
    total = 0.0
    for phone in phones:
        total += (
            trace.busy_ms(phone.phone_id) / 1000.0 * phone_cpu_draw_w(phone)
        )
    return total


class EnergyAwarePolicy:
    """Pack jobs whole onto the most energy-efficient fleet slice.

    Parameters
    ----------
    efficient_fraction:
        Share of the fleet (by work-per-joule rank) eligible for work.
        1.0 degenerates to energy-greedy over the whole fleet.
    balance:
        Weight of the load-balance term: 0 minimises energy alone
        (everything piles onto the cheapest phones), larger values
        trade joules for makespan.  The default keeps the makespan
        within a small factor of CWC greedy on the paper testbed while
        cutting the energy bill.
    """

    name = "energy-aware"

    #: This policy never requests proactive replication.
    last_replicas: tuple = ()
    #: No capacity search ran, so there are no search diagnostics.
    last_result = None

    def __init__(
        self,
        *,
        efficient_fraction: float = 0.5,
        balance: float = 1.0,
        telemetry=None,
    ) -> None:
        self._fraction = check_fraction(
            "efficient_fraction", efficient_fraction
        )
        if not math.isfinite(balance) or balance < 0:
            raise ValueError(
                f"balance must be finite and >= 0, got {balance!r}"
            )
        self._balance = float(balance)
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY

    def schedule(self, instance: SchedulingInstance) -> Schedule:
        """Greedy work-per-joule packing over the efficient slice."""
        tel = self._tel
        tracer = tel.tracer if tel.enabled else None
        with maybe_span(
            tracer,
            "schedule",
            category="scheduler",
            scheduler=self.name,
            jobs=len(instance.jobs),
            phones=len(instance.phones),
        ):
            return self._build(instance)

    def _build(self, instance: SchedulingInstance) -> Schedule:
        phones = instance.phones
        draws = {
            phone.phone_id: phone_cpu_draw_w(phone) for phone in phones
        }

        def work_per_joule(phone: PhoneSpec) -> float:
            draw = draws[phone.phone_id]
            score = 0.0
            for job in instance.jobs:
                cost_ms = instance.cost(phone.phone_id, job.job_id)
                if cost_ms > 0:
                    score += 1.0 / (draw * cost_ms)
            return score

        keep = max(1, math.ceil(self._fraction * len(phones)))
        chosen = sorted(
            phones,
            key=lambda phone: (
                -work_per_joule(phone),
                instance.phone_position(phone.phone_id),
            ),
        )[:keep]

        lower_ms, _upper_ms = instance.capacity_bounds()
        target_ms = max(lower_ms, 1.0)
        finish = {phone.phone_id: 0.0 for phone in chosen}
        builder = ScheduleBuilder()
        for job in sorted_jobs_by_cost(instance):

            def score(phone: PhoneSpec) -> tuple[float, int]:
                cost_ms = instance.cost(phone.phone_id, job.job_id)
                energy = draws[phone.phone_id] * cost_ms / 1000.0
                stretch = (finish[phone.phone_id] + cost_ms) / target_ms
                return (
                    energy * (1.0 + self._balance * stretch),
                    instance.phone_position(phone.phone_id),
                )

            best = min(chosen, key=score)
            finish[best.phone_id] += instance.cost(
                best.phone_id, job.job_id
            )
            builder.place(
                best.phone_id, job.job_id, job.task, job.input_kb, whole=True
            )
        return builder.build()
