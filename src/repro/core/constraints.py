"""Resource constraints on schedules — the paper's footnote 4.

Phones have 1–2 GB of RAM against desktops' 4 GB; CWC handles this by
splitting job inputs so every partition fits in phone memory.  The
paper notes the scheduling program extends with ``l_ij <= r_i`` (any
partition assigned to phone *i* is at most its RAM).  This module
implements that extension:

* :class:`RamConstraint` — per-phone partition caps derived from
  :class:`~repro.core.model.PhoneSpec.ram_mb` (with a configurable
  fraction reserved for the OS and the task executable);
* :func:`clamp_fit` — the hook the packer uses to cap partition sizes;
* :func:`validate_ram` — post-hoc check that a schedule respects the
  caps (used by tests and the simulated server).
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping
from dataclasses import dataclass

from .model import PhoneSpec
from .schedule import InfeasibleScheduleError, Schedule

__all__ = ["RamConstraint", "validate_ram"]

_KB_PER_MB = 1024.0


@dataclass(frozen=True)
class RamConstraint:
    """Per-phone cap on the input partition size (KB).

    ``usable_fraction`` models the share of physical RAM actually
    available to a CWC task once the OS, the Android runtime, and the
    task executable are resident — the paper's "1 GB RAM per phone is
    enough" remark assumes the input partition fits in memory.
    """

    caps_kb: Mapping[str, float]

    def __post_init__(self) -> None:
        for phone_id, cap in self.caps_kb.items():
            if cap <= 0:
                raise ValueError(
                    f"RAM cap for {phone_id!r} must be > 0, got {cap!r}"
                )

    @classmethod
    def from_phones(
        cls, phones: Iterable[PhoneSpec], *, usable_fraction: float = 0.5
    ) -> "RamConstraint":
        if not 0.0 < usable_fraction <= 1.0:
            raise ValueError(
                f"usable_fraction must lie in (0, 1], got {usable_fraction!r}"
            )
        return cls(
            caps_kb={
                phone.phone_id: phone.ram_mb * _KB_PER_MB * usable_fraction
                for phone in phones
            }
        )

    def cap_kb(self, phone_id: str) -> float:
        """Partition cap for a phone; unknown phones are unconstrained."""
        return self.caps_kb.get(phone_id, float("inf"))

    def clamp_fit(self, phone_id: str, fit_kb: float) -> float:
        """Cap a would-be partition size to the phone's RAM."""
        return min(fit_kb, self.cap_kb(phone_id))

    def admits(self, phone_id: str, partition_kb: float) -> bool:
        return partition_kb <= self.cap_kb(phone_id) + 1e-9


def validate_ram(schedule: Schedule, constraint: RamConstraint) -> None:
    """Raise if any assignment exceeds its phone's RAM cap."""
    for assignment in schedule:
        if not constraint.admits(assignment.phone_id, assignment.input_kb):
            raise InfeasibleScheduleError(
                f"partition of {assignment.input_kb:.0f} KB for job "
                f"{assignment.job_id!r} exceeds phone "
                f"{assignment.phone_id!r}'s RAM cap "
                f"{constraint.cap_kb(assignment.phone_id):.0f} KB"
            )
