"""Core data model for CWC scheduling.

This module defines the vocabulary of the paper's Section 5:

* a :class:`Job` is a unit of work with an executable of size ``E_j`` KB
  and an input of size ``L_j`` KB.  Jobs are either *breakable* (the input
  can be split into arbitrarily many partitions processed independently)
  or *atomic* (the input exhibits internal dependencies and must be
  processed by a single phone);
* a :class:`PhoneSpec` describes a smartphone in the fleet — its CPU
  clock speed and its network interface; the scheduler only ever sees the
  phone through the derived quantities ``b_i`` (ms to receive one KB from
  the central server) and ``c_ij`` (ms to execute job ``j`` on one KB of
  input);
* :func:`completion_time` is Equation (1) of the paper::

      E_j * b_i + x * (b_i + c_ij)

  the predicted time for phone ``i`` to fetch job ``j``'s executable,
  fetch ``x`` KB of its input, and process it.

All sizes are kilobytes, all rates are milliseconds per kilobyte and all
times are milliseconds, matching the units used throughout the paper.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field

__all__ = [
    "JobKind",
    "NetworkTechnology",
    "Job",
    "PhoneSpec",
    "completion_time",
    "MIN_PARTITION_KB",
]

#: Smallest input partition the scheduler will create, in KB.  The paper
#: expresses the cost model per KB of input; packing partitions below the
#: model's own unit of account would be meaningless and could prevent the
#: greedy capacity search from terminating.
MIN_PARTITION_KB = 1.0


class JobKind(enum.Enum):
    """Classification of jobs per Section 4's task model."""

    #: Input can be split into arbitrarily many independently processable
    #: pieces whose partial results the server aggregates (e.g. word count).
    BREAKABLE = "breakable"

    #: Input has internal dependencies and must run on a single phone
    #: (e.g. blurring one photo).  Batches of atomic jobs still enjoy
    #: concurrency across phones.
    ATOMIC = "atomic"


class NetworkTechnology(enum.Enum):
    """Wireless technologies present in the paper's 18-phone testbed."""

    WIFI_A = "802.11a"
    WIFI_G = "802.11g"
    EDGE = "EDGE"
    THREE_G = "3G"
    FOUR_G = "4G"


@dataclass(frozen=True, slots=True)
class Job:
    """A schedulable job (the paper uses *task* and *job* interchangeably).

    Parameters
    ----------
    job_id:
        Unique identifier within a scheduling instance.
    task:
        Name of the task program this job runs (e.g. ``"primes"``); used
        to look up per-task execution rates ``c_ij`` and to locate the
        executable in the task registry.
    kind:
        Whether the job's input may be partitioned.
    executable_kb:
        ``E_j`` — size of the task executable in KB.  The executable must
        be shipped to *every* phone that receives any partition of the job.
    input_kb:
        ``L_j`` — total input size in KB that must be processed.
    """

    job_id: str
    task: str
    kind: JobKind
    executable_kb: float
    input_kb: float

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ValueError("job_id must be a non-empty string")
        if not self.task:
            raise ValueError("task must be a non-empty string")
        if not math.isfinite(self.executable_kb) or self.executable_kb < 0:
            raise ValueError(
                f"executable_kb must be finite and >= 0, got {self.executable_kb!r}"
            )
        if not math.isfinite(self.input_kb) or self.input_kb <= 0:
            raise ValueError(
                f"input_kb must be finite and > 0, got {self.input_kb!r}"
            )

    @property
    def is_atomic(self) -> bool:
        return self.kind is JobKind.ATOMIC

    @property
    def is_breakable(self) -> bool:
        return self.kind is JobKind.BREAKABLE

    def with_input(self, input_kb: float) -> "Job":
        """Return a copy of this job carrying a different input size.

        Used when re-enqueueing the unprocessed remainder of a failed
        job: the executable and task are unchanged, only the input that
        still needs processing shrinks.
        """
        return Job(
            job_id=self.job_id,
            task=self.task,
            kind=self.kind,
            executable_kb=self.executable_kb,
            input_kb=input_kb,
        )


@dataclass(frozen=True, slots=True)
class PhoneSpec:
    """Static description of one smartphone in the fleet.

    The scheduler's cost model only depends on ``cpu_mhz`` (through the
    CPU-scaling runtime predictor) and on the measured per-KB transfer
    time ``b_i`` (through the link model).  ``cpu_efficiency`` models the
    real-world deviation the paper observes in Figure 6 — some phones are
    faster than their clock speed suggests; the *simulator* applies it,
    the *scheduler* never sees it, which is exactly the information gap
    the paper's online prediction updates close.
    """

    phone_id: str
    cpu_mhz: float
    network: NetworkTechnology = NetworkTechnology.WIFI_G
    ram_mb: float = 1024.0
    cpu_efficiency: float = 1.0
    location: str = "house-1"
    model_name: str = "generic"
    extras: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if not self.phone_id:
            raise ValueError("phone_id must be a non-empty string")
        if not math.isfinite(self.cpu_mhz) or self.cpu_mhz <= 0:
            raise ValueError(f"cpu_mhz must be finite and > 0, got {self.cpu_mhz!r}")
        if not math.isfinite(self.ram_mb) or self.ram_mb <= 0:
            raise ValueError(f"ram_mb must be finite and > 0, got {self.ram_mb!r}")
        if not math.isfinite(self.cpu_efficiency) or self.cpu_efficiency <= 0:
            raise ValueError(
                f"cpu_efficiency must be finite and > 0, got {self.cpu_efficiency!r}"
            )

    @property
    def effective_mhz(self) -> float:
        """Clock speed scaled by the hidden efficiency factor.

        This is what the *simulator* uses to compute actual runtimes;
        the scheduler's initial prediction uses the nominal ``cpu_mhz``.
        """
        return self.cpu_mhz * self.cpu_efficiency


def completion_time(
    executable_kb: float,
    input_kb: float,
    b_ms_per_kb: float,
    c_ms_per_kb: float,
) -> float:
    """Equation (1): predicted completion time in milliseconds.

    ``E_j * b_i + x * (b_i + c_ij)`` — ship the executable, ship ``x`` KB
    of input, process it.  ``input_kb`` may be a partition ``l_ij`` of the
    job's full input.
    """
    if executable_kb < 0 or input_kb < 0:
        raise ValueError("sizes must be non-negative")
    if b_ms_per_kb < 0 or c_ms_per_kb < 0:
        raise ValueError("rates must be non-negative")
    return executable_kb * b_ms_per_kb + input_kb * (b_ms_per_kb + c_ms_per_kb)
