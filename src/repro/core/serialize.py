"""JSON (de)serialisation of the scheduling data model.

A deployed CWC server persists fleet descriptions, job queues, and
computed schedules; operators inspect and replay them.  This module
round-trips the core types through plain JSON-compatible dicts:

* :func:`phone_to_dict` / :func:`phone_from_dict`
* :func:`job_to_dict` / :func:`job_from_dict`
* :func:`instance_to_dict` / :func:`instance_from_dict`
* :func:`schedule_to_dict` / :func:`schedule_from_dict`

Every ``*_from_dict`` validates through the type's own constructor, so
a hand-edited file cannot smuggle in an invalid fleet or schedule.
"""

from __future__ import annotations

from typing import Any

from .instance import SchedulingInstance
from .model import Job, JobKind, NetworkTechnology, PhoneSpec
from .schedule import Assignment, Schedule

__all__ = [
    "phone_to_dict",
    "phone_from_dict",
    "job_to_dict",
    "job_from_dict",
    "instance_to_dict",
    "instance_from_dict",
    "schedule_to_dict",
    "schedule_from_dict",
]


def phone_to_dict(phone: PhoneSpec) -> dict[str, Any]:
    """JSON-compatible dict for one phone (extras are not persisted)."""
    return {
        "phone_id": phone.phone_id,
        "cpu_mhz": phone.cpu_mhz,
        "network": phone.network.value,
        "ram_mb": phone.ram_mb,
        "cpu_efficiency": phone.cpu_efficiency,
        "location": phone.location,
        "model_name": phone.model_name,
    }


def phone_from_dict(data: dict[str, Any]) -> PhoneSpec:
    """Rebuild a PhoneSpec; optional fields fall back to defaults."""
    try:
        return PhoneSpec(
            phone_id=data["phone_id"],
            cpu_mhz=float(data["cpu_mhz"]),
            network=NetworkTechnology(data.get("network", "802.11g")),
            ram_mb=float(data.get("ram_mb", 1024.0)),
            cpu_efficiency=float(data.get("cpu_efficiency", 1.0)),
            location=data.get("location", "house-1"),
            model_name=data.get("model_name", "generic"),
        )
    except KeyError as exc:
        raise ValueError(f"phone dict missing field {exc}") from exc


def job_to_dict(job: Job) -> dict[str, Any]:
    """JSON-compatible dict for one job."""
    return {
        "job_id": job.job_id,
        "task": job.task,
        "kind": job.kind.value,
        "executable_kb": job.executable_kb,
        "input_kb": job.input_kb,
    }


def job_from_dict(data: dict[str, Any]) -> Job:
    """Rebuild a Job, validating through its constructor."""
    try:
        return Job(
            job_id=data["job_id"],
            task=data["task"],
            kind=JobKind(data["kind"]),
            executable_kb=float(data["executable_kb"]),
            input_kb=float(data["input_kb"]),
        )
    except KeyError as exc:
        raise ValueError(f"job dict missing field {exc}") from exc


def instance_to_dict(instance: SchedulingInstance) -> dict[str, Any]:
    """JSON-compatible dict for a whole scheduling instance."""
    return {
        "jobs": [job_to_dict(job) for job in instance.jobs],
        "phones": [phone_to_dict(phone) for phone in instance.phones],
        "b_ms_per_kb": dict(instance.b_ms_per_kb),
        # JSON keys must be strings: encode the (phone, job) pair.
        "c_ms_per_kb": {
            f"{phone_id}␟{job_id}": value
            for (phone_id, job_id), value in instance.c_ms_per_kb.items()
        },
    }


def instance_from_dict(data: dict[str, Any]) -> SchedulingInstance:
    """Rebuild a SchedulingInstance, re-validating b/c tables."""
    try:
        c_table = {}
        for key, value in data["c_ms_per_kb"].items():
            phone_id, sep, job_id = key.partition("␟")
            if not sep:
                raise ValueError(f"malformed c table key {key!r}")
            c_table[(phone_id, job_id)] = float(value)
        return SchedulingInstance(
            jobs=tuple(job_from_dict(j) for j in data["jobs"]),
            phones=tuple(phone_from_dict(p) for p in data["phones"]),
            b_ms_per_kb={
                phone_id: float(value)
                for phone_id, value in data["b_ms_per_kb"].items()
            },
            c_ms_per_kb=c_table,
        )
    except KeyError as exc:
        raise ValueError(f"instance dict missing field {exc}") from exc


def schedule_to_dict(schedule: Schedule) -> dict[str, Any]:
    """JSON-compatible dict for a schedule (ordered assignments)."""
    return {
        "assignments": [
            {
                "phone_id": a.phone_id,
                "job_id": a.job_id,
                "task": a.task,
                "input_kb": a.input_kb,
                "whole": a.whole,
            }
            for a in schedule
        ]
    }


def schedule_from_dict(data: dict[str, Any]) -> Schedule:
    """Rebuild a Schedule; assignment order is preserved."""
    try:
        return Schedule(
            Assignment(
                phone_id=entry["phone_id"],
                job_id=entry["job_id"],
                task=entry["task"],
                input_kb=float(entry["input_kb"]),
                whole=bool(entry["whole"]),
            )
            for entry in data["assignments"]
        )
    except KeyError as exc:
        raise ValueError(f"schedule dict missing field {exc}") from exc
