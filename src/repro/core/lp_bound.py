"""LP-relaxation lower bound on the optimal makespan (Section 6, Fig. 13).

The scheduling program SCH is a quadratic integer program: the first
constraint multiplies the indicator ``u_ij`` by the partition size
``l_ij``.  Following the paper's reformulation, the quadratic term is
linearised by (a) letting ``u_ij`` apply only to the executable-shipping
term and (b) adding the linking constraint ``l_ij <= L_j * u_ij`` so a
phone cannot receive input without paying for the executable.  Relaxing
``u_ij`` to ``[0, 1]`` then yields a linear program whose optimum
``T_relaxed`` satisfies::

    T_relaxed  <=  T_optimal  <=  T_cwc

Figure 13 compares ``T_cwc`` (the greedy scheduler) against
``T_relaxed`` over 1000 random configurations; the paper reports a
median gap of about 18 %.

The LP is assembled sparsely and solved with scipy's HiGHS backend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from .instance import SchedulingInstance

__all__ = ["RelaxedSolution", "solve_relaxed_makespan"]


@dataclass(frozen=True)
class RelaxedSolution:
    """Solution of the LP relaxation.

    ``makespan_ms`` is ``T_relaxed``; ``l_kb[i, j]`` and ``u[i, j]`` are
    the (fractional) input allocation and executable indicators, indexed
    by position in ``instance.phones`` and ``instance.jobs``.
    """

    makespan_ms: float
    l_kb: np.ndarray
    u: np.ndarray
    status: int
    message: str


def solve_relaxed_makespan(instance: SchedulingInstance) -> RelaxedSolution:
    """Solve the LP relaxation of SCH and return the lower bound.

    Variable layout: ``x = [T, u_00 .. u_{P-1,J-1}, l_00 .. l_{P-1,J-1}]``
    with phones varying slowest.  Raises ``RuntimeError`` if HiGHS fails,
    which for this always-feasible LP indicates malformed input.
    """
    phones = instance.phones
    jobs = instance.jobs
    n_phones = len(phones)
    n_jobs = len(jobs)
    n_pairs = n_phones * n_jobs

    def u_index(i: int, j: int) -> int:
        return 1 + i * n_jobs + j

    def l_index(i: int, j: int) -> int:
        return 1 + n_pairs + i * n_jobs + j

    n_vars = 1 + 2 * n_pairs
    cost = np.zeros(n_vars)
    cost[0] = 1.0  # minimise T

    b_vec = np.array([instance.b(p.phone_id) for p in phones])
    exe = np.array([job.executable_kb for job in jobs])
    size = np.array([job.input_kb for job in jobs])

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    ub_rhs: list[float] = []
    row = 0

    # (1) Per-phone load: sum_j u_ij E_j b_i + l_ij (b_i + c_ij) - T <= 0.
    for i, phone in enumerate(phones):
        rows.append(row)
        cols.append(0)
        vals.append(-1.0)
        for j, job in enumerate(jobs):
            c_ij = instance.c(phone.phone_id, job.job_id)
            rows.append(row)
            cols.append(u_index(i, j))
            vals.append(exe[j] * b_vec[i])
            rows.append(row)
            cols.append(l_index(i, j))
            vals.append(b_vec[i] + c_ij)
        ub_rhs.append(0.0)
        row += 1

    # (3) Linking: l_ij - L_j u_ij <= 0.
    for i in range(n_phones):
        for j in range(n_jobs):
            rows.append(row)
            cols.append(l_index(i, j))
            vals.append(1.0)
            rows.append(row)
            cols.append(u_index(i, j))
            vals.append(-size[j])
            ub_rhs.append(0.0)
            row += 1

    a_ub = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(row, n_vars)
    )
    b_ub = np.array(ub_rhs)

    # (2) Coverage: sum_i l_ij = L_j; (4) atomic: sum_i u_ij = 1.
    eq_rows: list[int] = []
    eq_cols: list[int] = []
    eq_vals: list[float] = []
    eq_rhs: list[float] = []
    row = 0
    for j, job in enumerate(jobs):
        for i in range(n_phones):
            eq_rows.append(row)
            eq_cols.append(l_index(i, j))
            eq_vals.append(1.0)
        eq_rhs.append(size[j])
        row += 1
    for j, job in enumerate(jobs):
        if not job.is_atomic:
            continue
        for i in range(n_phones):
            eq_rows.append(row)
            eq_cols.append(u_index(i, j))
            eq_vals.append(1.0)
        eq_rhs.append(1.0)
        row += 1

    a_eq = sparse.csr_matrix(
        (eq_vals, (eq_rows, eq_cols)), shape=(row, n_vars)
    )
    b_eq = np.array(eq_rhs)

    bounds = [(0.0, None)]
    bounds += [(0.0, 1.0)] * n_pairs
    bounds += [(0.0, float(size[j])) for _ in range(n_phones) for j in range(n_jobs)]

    result = linprog(
        cost,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise RuntimeError(
            f"LP relaxation failed (status {result.status}): {result.message}"
        )

    u = np.asarray(result.x[1 : 1 + n_pairs]).reshape(n_phones, n_jobs)
    l_kb = np.asarray(result.x[1 + n_pairs :]).reshape(n_phones, n_jobs)
    return RelaxedSolution(
        makespan_ms=float(result.x[0]),
        l_kb=l_kb,
        u=u,
        status=int(result.status),
        message=str(result.message),
    )
