"""LP-relaxation lower bound on the optimal makespan (Section 6, Fig. 13).

The scheduling program SCH is a quadratic integer program: the first
constraint multiplies the indicator ``u_ij`` by the partition size
``l_ij``.  Following the paper's reformulation, the quadratic term is
linearised by (a) letting ``u_ij`` apply only to the executable-shipping
term and (b) adding the linking constraint ``l_ij <= L_j * u_ij`` so a
phone cannot receive input without paying for the executable.  Relaxing
``u_ij`` to ``[0, 1]`` then yields a linear program whose optimum
``T_relaxed`` satisfies::

    T_relaxed  <=  T_optimal  <=  T_cwc

Figure 13 compares ``T_cwc`` (the greedy scheduler) against
``T_relaxed`` over 1000 random configurations; the paper reports a
median gap of about 18 %.

The LP is assembled sparsely and solved with scipy's HiGHS backend.

Pod-aggregated relaxation
-------------------------
The full LP has ``2 * P * J`` variables, which is intractable at the
fleet scales the sharded scheduler targets (4000 x 20000 is 160M
variables).  :func:`solve_pod_relaxed_makespan` coarsens the machine
set instead of the job set: each *pod* (a disjoint group of phones) is
relaxed to ``n_p`` identical copies of its componentwise-best phone —
executable shipping at ``min_i b_i`` and input processing at
``min_i (b_i + c_ij)`` per KB, minimised over the pod's members per
job.  Speeding machines up only shrinks the optimum, so the coarse
optimum remains a valid lower bound on the true makespan::

    T_pod  <=  T_optimal  <=  T_sharded

while the variable count drops to ``2 * n_pods * J``.  The fractional
allocation ``l_pj`` doubles as the sharded scheduler's job-to-pod
splitter guide, and ``T_pod`` certifies the sharded schedule
(``shard_bound_ratio = T_sharded / T_pod``) — the coordination-
through-an-LP-relaxation pattern of the distributed-clusters
approximation literature (Murray-Khuller-Chao, PAPERS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import linprog

from .instance import SchedulingInstance

__all__ = [
    "PodRelaxedSolution",
    "RelaxedSolution",
    "solve_pod_relaxed_makespan",
    "solve_relaxed_makespan",
]


@dataclass(frozen=True)
class RelaxedSolution:
    """Solution of the LP relaxation.

    ``makespan_ms`` is ``T_relaxed``; ``l_kb[i, j]`` and ``u[i, j]`` are
    the (fractional) input allocation and executable indicators, indexed
    by position in ``instance.phones`` and ``instance.jobs``.
    """

    makespan_ms: float
    l_kb: np.ndarray
    u: np.ndarray
    status: int
    message: str


def solve_relaxed_makespan(instance: SchedulingInstance) -> RelaxedSolution:
    """Solve the LP relaxation of SCH and return the lower bound.

    Variable layout: ``x = [T, u_00 .. u_{P-1,J-1}, l_00 .. l_{P-1,J-1}]``
    with phones varying slowest.  Raises ``RuntimeError`` if HiGHS fails,
    which for this always-feasible LP indicates malformed input.
    """
    phones = instance.phones
    jobs = instance.jobs
    n_phones = len(phones)
    n_jobs = len(jobs)
    n_pairs = n_phones * n_jobs

    def u_index(i: int, j: int) -> int:
        return 1 + i * n_jobs + j

    def l_index(i: int, j: int) -> int:
        return 1 + n_pairs + i * n_jobs + j

    n_vars = 1 + 2 * n_pairs
    cost = np.zeros(n_vars)
    cost[0] = 1.0  # minimise T

    b_vec = np.array([instance.b(p.phone_id) for p in phones])
    exe = np.array([job.executable_kb for job in jobs])
    size = np.array([job.input_kb for job in jobs])

    rows: list[int] = []
    cols: list[int] = []
    vals: list[float] = []
    ub_rhs: list[float] = []
    row = 0

    # (1) Per-phone load: sum_j u_ij E_j b_i + l_ij (b_i + c_ij) - T <= 0.
    for i, phone in enumerate(phones):
        rows.append(row)
        cols.append(0)
        vals.append(-1.0)
        for j, job in enumerate(jobs):
            c_ij = instance.c(phone.phone_id, job.job_id)
            rows.append(row)
            cols.append(u_index(i, j))
            vals.append(exe[j] * b_vec[i])
            rows.append(row)
            cols.append(l_index(i, j))
            vals.append(b_vec[i] + c_ij)
        ub_rhs.append(0.0)
        row += 1

    # (3) Linking: l_ij - L_j u_ij <= 0.
    for i in range(n_phones):
        for j in range(n_jobs):
            rows.append(row)
            cols.append(l_index(i, j))
            vals.append(1.0)
            rows.append(row)
            cols.append(u_index(i, j))
            vals.append(-size[j])
            ub_rhs.append(0.0)
            row += 1

    a_ub = sparse.csr_matrix(
        (vals, (rows, cols)), shape=(row, n_vars)
    )
    b_ub = np.array(ub_rhs)

    # (2) Coverage: sum_i l_ij = L_j; (4) atomic: sum_i u_ij = 1.
    eq_rows: list[int] = []
    eq_cols: list[int] = []
    eq_vals: list[float] = []
    eq_rhs: list[float] = []
    row = 0
    for j, job in enumerate(jobs):
        for i in range(n_phones):
            eq_rows.append(row)
            eq_cols.append(l_index(i, j))
            eq_vals.append(1.0)
        eq_rhs.append(size[j])
        row += 1
    for j, job in enumerate(jobs):
        if not job.is_atomic:
            continue
        for i in range(n_phones):
            eq_rows.append(row)
            eq_cols.append(u_index(i, j))
            eq_vals.append(1.0)
        eq_rhs.append(1.0)
        row += 1

    a_eq = sparse.csr_matrix(
        (eq_vals, (eq_rows, eq_cols)), shape=(row, n_vars)
    )
    b_eq = np.array(eq_rhs)

    bounds = [(0.0, None)]
    bounds += [(0.0, 1.0)] * n_pairs
    bounds += [(0.0, float(size[j])) for _ in range(n_phones) for j in range(n_jobs)]

    result = linprog(
        cost,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise RuntimeError(
            f"LP relaxation failed (status {result.status}): {result.message}"
        )

    u = np.asarray(result.x[1 : 1 + n_pairs]).reshape(n_phones, n_jobs)
    l_kb = np.asarray(result.x[1 + n_pairs :]).reshape(n_phones, n_jobs)
    return RelaxedSolution(
        makespan_ms=float(result.x[0]),
        l_kb=l_kb,
        u=u,
        status=int(result.status),
        message=str(result.message),
    )


@dataclass(frozen=True)
class PodRelaxedSolution:
    """Solution of the pod-aggregated LP relaxation.

    ``makespan_ms`` is ``T_pod``, a valid lower bound on the optimal
    makespan of the *full* instance; ``l_kb[p, j]`` and ``u[p, j]`` are
    the fractional input allocation and executable-shipping indicators
    per (pod, job), indexed by pod position and job position.
    """

    makespan_ms: float
    l_kb: np.ndarray
    u: np.ndarray
    status: int
    message: str


def solve_pod_relaxed_makespan(
    instance: SchedulingInstance,
    pods: tuple[tuple[int, ...], ...],
    *,
    tables: tuple[np.ndarray, np.ndarray] | None = None,
) -> PodRelaxedSolution:
    """Solve the pod-aggregated LP relaxation (see the module docstring).

    ``pods`` is a disjoint cover of phone positions (as produced by
    :func:`repro.core.pod.partition_phones`).  Pod ``p`` is relaxed to
    ``n_p`` copies of its componentwise-best member: executable
    shipping at ``bmin_p = min_i b_i`` and per-KB processing of job
    ``j`` at ``cmin_pj = min_i (b_i + c_ij)``, so the per-pod load
    constraint reads::

        sum_j u_pj E_j bmin_p + l_pj cmin_pj  <=  n_p * T

    Any real schedule induces a feasible point (``l_pj`` = input KB of
    job ``j`` placed in pod ``p``, ``u_pj`` = phones in pod ``p``
    shipping ``j``'s executable) with value at most its makespan, so
    the LP optimum lower-bounds the optimal makespan.

    ``tables`` optionally passes precomputed ``(bmin, cmin)`` arrays
    (the sharded scheduler computes them once per round for the greedy
    splitter too).  Raises ``ValueError`` on an empty/overlapping pod
    cover and ``RuntimeError`` if HiGHS fails.

    Implementation note: breakable jobs' ``u_pj`` never appear as
    variables.  ``u`` only ever adds load, so at the optimum the
    linking constraint ``l_pj <= L_j u_pj`` is tight and
    ``u_pj = l_pj / L_j`` exactly — substituting folds the executable
    term into the ``l`` coefficient (``cmin_pj + E_j bmin_p / L_j``)
    and drops half the variables plus every breakable linking row,
    which is what keeps the certification affordable at the
    4000 x 20000 bench scale.  Atomic jobs keep explicit ``u``
    (their unit-coverage equality cannot be folded).
    """
    n_phones = len(instance.phones)
    n_jobs = len(instance.jobs)
    n_pods = len(pods)
    if n_pods == 0:
        raise ValueError("at least one pod is required")
    seen: set[int] = set()
    for p, members in enumerate(pods):
        if not members:
            raise ValueError(f"pod {p} is empty")
        for pos in members:
            if not 0 <= pos < n_phones:
                raise ValueError(
                    f"pod {p} references phone position {pos} "
                    f"outside [0, {n_phones})"
                )
            if pos in seen:
                raise ValueError(
                    f"phone position {pos} appears in more than one pod"
                )
            seen.add(pos)

    if tables is not None:
        bmin, cmin = tables
    else:
        from .pod import pod_rate_tables

        bmin, cmin, _ = pod_rate_tables(instance, pods)
    pod_sizes = np.array([len(members) for members in pods], dtype=np.float64)
    exe = np.array([job.executable_kb for job in instance.jobs])
    size = np.array([job.input_kb for job in instance.jobs])
    atomic = np.array([job.is_atomic for job in instance.jobs])

    n_pairs = n_pods * n_jobs
    atomic_jobs = np.flatnonzero(atomic)
    n_atomic = len(atomic_jobs)
    n_apairs = n_pods * n_atomic
    # Variable layout: [T, l_00.., u_atomic_00..] with pods varying
    # slowest in each block; breakable u are substituted away.
    l0, u0 = 1, 1 + n_pairs
    n_vars = 1 + n_pairs + n_apairs
    pair = np.arange(n_pairs)
    pod_of_pair = pair // n_jobs
    job_of_pair = pair % n_jobs
    apair = np.arange(n_apairs)
    pod_of_apair = apair // max(n_atomic, 1)
    ajob_of_apair = atomic_jobs[apair % max(n_atomic, 1)] if n_atomic else apair

    cost = np.zeros(n_vars)
    cost[0] = 1.0

    # (1) Per-pod load: the l coefficient is cmin_pj, plus the folded
    # executable term E_j bmin_p / L_j for breakable jobs; atomic u
    # keeps its explicit E_j bmin_p term.
    l_coef = cmin.reshape(-1).copy()
    sizes_of_pair = size[job_of_pair]
    foldable = (~atomic[job_of_pair]) & (sizes_of_pair > 0)
    l_coef[foldable] += (
        exe[job_of_pair][foldable]
        * bmin[pod_of_pair][foldable]
        / sizes_of_pair[foldable]
    )
    load_rows = np.concatenate([
        np.arange(n_pods),      # -n_p * T
        pod_of_pair,            # l coefficients
        pod_of_apair,           # atomic u coefficients
    ])
    load_cols = np.concatenate([
        np.zeros(n_pods, dtype=np.intp),
        l0 + pair,
        u0 + apair,
    ])
    load_vals = np.concatenate([
        -pod_sizes,
        l_coef,
        exe[ajob_of_apair] * bmin[pod_of_apair],
    ])
    # (3) Linking, atomic pairs only: l_pj - L_j u_pj <= 0.
    link_l_cols = l0 + pod_of_apair * n_jobs + ajob_of_apair
    link_rows = np.concatenate([n_pods + apair, n_pods + apair])
    link_cols = np.concatenate([link_l_cols, u0 + apair])
    link_vals = np.concatenate([np.ones(n_apairs), -size[ajob_of_apair]])
    a_ub = sparse.csr_matrix(
        (
            np.concatenate([load_vals, link_vals]),
            (
                np.concatenate([load_rows, link_rows]),
                np.concatenate([load_cols, link_cols]),
            ),
        ),
        shape=(n_pods + n_apairs, n_vars),
    )
    b_ub = np.zeros(n_pods + n_apairs)

    # (2) Coverage: sum_p l_pj = L_j; (4) atomic: sum_p u_pj = 1.
    eq_rows = np.concatenate([
        job_of_pair,
        n_jobs + apair % max(n_atomic, 1) if n_atomic else apair,
    ])
    eq_cols = np.concatenate([l0 + pair, u0 + apair])
    eq_vals = np.ones(len(eq_rows))
    a_eq = sparse.csr_matrix(
        (eq_vals, (eq_rows, eq_cols)),
        shape=(n_jobs + n_atomic, n_vars),
    )
    b_eq = np.concatenate([size, np.ones(n_atomic)])

    bounds = [(0.0, None)]
    bounds += [(0.0, float(size[j])) for j in job_of_pair]
    # Atomic u counts executable-shipping phones: at most one per pod,
    # exactly one in total.
    bounds += [(0.0, 1.0)] * n_apairs

    result = linprog(
        cost,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise RuntimeError(
            f"pod LP relaxation failed (status {result.status}): "
            f"{result.message}"
        )
    l_kb = np.asarray(result.x[l0:u0]).reshape(n_pods, n_jobs)
    # Reconstruct the substituted breakable u = l / L (0 where L = 0).
    u = np.zeros((n_pods, n_jobs))
    positive = size > 0
    fold_cols = (~atomic) & positive
    u[:, fold_cols] = l_kb[:, fold_cols] / size[fold_cols]
    if n_atomic:
        u[:, atomic_jobs] = np.asarray(result.x[u0:]).reshape(
            n_pods, n_atomic
        )
    return PodRelaxedSolution(
        makespan_ms=float(result.x[0]),
        l_kb=l_kb,
        u=u,
        status=int(result.status),
        message=str(result.message),
    )
