"""Cross-round buffer recycling for the vector packing kernel.

:class:`~repro.core.capacity.CapacitySearch` constructs a fresh
:class:`~repro.core.packing_vec.VectorGreedyPacker` every ``run()``
call, and the packer's constructor allocates a dozen dense mirrors —
dominated by the ``phones × jobs`` shipped-executable mask (5 MB at
the paper's 1000 × 5000 fleet scale).  A long-running
:class:`~repro.core.greedy.CwcScheduler` reschedules every round over
instances of the same (or nearly the same) shape, so those allocations
are pure churn: the previous round's buffers are exactly the right
size and already hot in cache.

:class:`ArrayPool` is a keyed free list of numpy buffers.  The search
owns one pool for its lifetime, hands it to each packer it builds, and
the packer returns its buffers on :meth:`VectorGreedyPacker.
release_buffers` — so round N+1's constructor is a handful of
``dict`` pops instead of fresh ``mmap``/``memset`` traffic.

Safety: the pool hands back buffers **uninitialised** (previous
contents intact).  Every pooled buffer in the vector packer is either
fully rewritten at pack start (``_rem``, ``_order_buf``, ``_hcut``,
…), grown write-before-read behind an explicit length (``_bh_buf`` /
``_bn``), or only ever read at indices written earlier in the same
pack (``_open_epoch_by_pos``) — callers adopting the pool for new
buffers must uphold the same discipline.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ArrayPool"]

#: Free buffers retained per (shape, dtype) key.  One search keeps at
#: most one packer's worth of buffers per key alive; the headroom
#: covers callers that interleave two instance shapes.
_MAX_PER_KEY = 4


class ArrayPool:
    """A keyed free list of reusable numpy buffers.

    Not thread-safe; the capacity search is single-threaded on the
    owner side (probe workers build their own packers in their own
    processes and never see the owner's pool).
    """

    def __init__(self) -> None:
        self._free: dict[tuple, list[np.ndarray]] = {}
        #: Buffers served from the free list vs. freshly allocated.
        self.hits = 0
        self.misses = 0
        #: Buffers currently checked out (taken, not yet given back).
        #: The leak assertion mirroring :func:`repro.core.shm.
        #: leaked_segments`: after ``release_buffers()`` this must be 0
        #: or a pooled mirror escaped the recycling discipline.
        self.outstanding = 0

    @staticmethod
    def _key(shape, dtype) -> tuple:
        return (tuple(np.atleast_1d(shape)) if not np.isscalar(shape)
                else (int(shape),), np.dtype(dtype).str)

    def take(self, shape, dtype=np.float64) -> np.ndarray:
        """A buffer of exactly ``shape``/``dtype``, contents arbitrary."""
        key = self._key(shape, dtype)
        self.outstanding += 1
        stack = self._free.get(key)
        if stack:
            self.hits += 1
            return stack.pop()
        self.misses += 1
        return np.empty(key[0], dtype=dtype)

    def give(self, arr: np.ndarray | None) -> None:
        """Return ``arr`` to the pool (``None`` is ignored).

        Only whole owned arrays come back; views would alias a buffer
        the pool might hand out twice.
        """
        if arr is None:
            return
        if arr.base is not None:
            return
        self.outstanding = max(0, self.outstanding - 1)
        key = self._key(arr.shape, arr.dtype)
        stack = self._free.setdefault(key, [])
        if len(stack) < _MAX_PER_KEY:
            stack.append(arr)

    def leaked_buffers(self) -> int:
        """Buffers taken and never returned (0 when the pool is clean).

        The array-pool analogue of :func:`repro.core.shm.
        leaked_segments`: pod workers and the capacity search assert
        this is 0 after ``release_buffers()``.
        """
        return self.outstanding

    def stats(self) -> dict:
        """JSON-safe counters (telemetry / tests)."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "outstanding": self.outstanding,
            "free_buffers": sum(len(v) for v in self._free.values()),
            "free_bytes": sum(
                a.nbytes for v in self._free.values() for a in v
            ),
        }
