"""Fleet-sizing what-if analysis (the Section 3.2 planning story).

The paper's pitch to an enterprise is capacity planning: how many
employee phones replace a rack of servers for the nightly workload?
This module answers the operational version of that question with the
scheduler itself rather than a back-of-envelope watt ratio:

* :func:`minimum_fleet_size` — the smallest number of phones (taken in
  a given preference order) whose predicted makespan meets a deadline;
* :func:`makespan_by_fleet_size` — the scaling curve behind it, useful
  for spotting the point of diminishing returns (adding a slow-link
  phone can even *hurt*, which is Figure 5's lesson).
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

from .greedy import CwcScheduler, Scheduler
from .instance import SchedulingInstance
from .model import Job, PhoneSpec
from .prediction import RuntimePredictor

__all__ = ["makespan_by_fleet_size", "minimum_fleet_size"]


def _instance_for(
    jobs: Sequence[Job],
    phones: Sequence[PhoneSpec],
    b_ms_per_kb: Mapping[str, float],
    predictor: RuntimePredictor,
) -> SchedulingInstance:
    return SchedulingInstance.build(jobs, phones, b_ms_per_kb, predictor)


def makespan_by_fleet_size(
    jobs: Sequence[Job],
    phones: Sequence[PhoneSpec],
    b_ms_per_kb: Mapping[str, float],
    predictor: RuntimePredictor,
    *,
    scheduler: Scheduler | None = None,
    sizes: Sequence[int] | None = None,
) -> dict[int, float]:
    """Predicted makespan (ms) for growing prefixes of ``phones``.

    ``phones`` order matters: callers rank phones by preference first
    (e.g. by bandwidth, or by an availability forecast).  ``sizes``
    defaults to every prefix length from 1 to the full fleet.
    """
    if not phones:
        raise ValueError("need at least one phone")
    scheduler = scheduler or CwcScheduler()
    sizes = tuple(sizes) if sizes is not None else tuple(
        range(1, len(phones) + 1)
    )
    curve: dict[int, float] = {}
    for size in sizes:
        if not 1 <= size <= len(phones):
            raise ValueError(
                f"fleet size {size} outside [1, {len(phones)}]"
            )
        subset = tuple(phones[:size])
        instance = _instance_for(jobs, subset, b_ms_per_kb, predictor)
        schedule = scheduler.schedule(instance)
        curve[size] = schedule.predicted_makespan_ms(instance)
    return curve


def minimum_fleet_size(
    jobs: Sequence[Job],
    phones: Sequence[PhoneSpec],
    b_ms_per_kb: Mapping[str, float],
    predictor: RuntimePredictor,
    *,
    deadline_ms: float,
    scheduler: Scheduler | None = None,
) -> int | None:
    """Smallest phone-prefix meeting the deadline, or None if none does.

    Binary search would be tempting, but makespan is *not* monotone in
    fleet size when slow-link phones join (Figure 5), so the search
    scans prefix sizes in order and returns the first that fits.
    """
    if deadline_ms <= 0:
        raise ValueError(f"deadline_ms must be > 0, got {deadline_ms!r}")
    scheduler = scheduler or CwcScheduler()
    for size in range(1, len(phones) + 1):
        subset = tuple(phones[:size])
        instance = _instance_for(jobs, subset, b_ms_per_kb, predictor)
        schedule = scheduler.schedule(instance)
        if schedule.predicted_makespan_ms(instance) <= deadline_ms:
            return size
    return None
