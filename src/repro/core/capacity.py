"""Binary search over bin capacity (Section 5, "Our Solution").

Algorithm 1 answers *"can everything be packed with capacity C?"*; this
module finds the smallest such ``C``:

* **Upper bound** — all items stacked on the *worst* bin: the maximum
  over phones of the total Equation-1 cost of running every job whole on
  that phone.  Packing at this capacity always succeeds (one bin can
  hold everything).
* **Lower bound** — the paper's "magical bin" with the aggregate
  processing capability and aggregate bandwidth of the whole fleet and
  no executable-shipping cost: job ``j`` is processed at the aggregate
  rate ``sum_i 1 / (b_i + c_ij)`` KB per millisecond, so the bound is
  ``sum_j L_j / sum_i 1/(b_i + c_ij)``.
* Bisect until the bracket is narrower than ``epsilon_ms``, keeping the
  schedule from the smallest feasible capacity seen.

The initial bracket is deliberately **frozen**: the bisection midpoint
grid, and therefore the converged capacity and schedule, must stay
bit-identical to the reference search in :mod:`repro.core._reference`.
Every optimisation below resolves probes *on that grid* more cheaply —
none may move the grid.  (This is why the LP relaxation of
:mod:`repro.core.lp_bound`, which often brackets far tighter, feeds an
optional infeasibility *certificate* rather than the bracket itself.)

Hot-path structure
------------------
Each probe of the bisection is a full Algorithm-1 pack, so this module
works to issue as few and as cheap real packs as possible *without
changing the bisection trajectory* — the sequence of (midpoint,
feasible?) decisions, and therefore the final schedule, is bit-identical
to the naive pack-every-probe search:

* **dual packing kernels** — ``kernel='python'`` probes with the exact
  scalar :class:`~repro.core.packing.GreedyPacker`; ``kernel='numpy'``
  probes with the byte-identical vectorized
  :class:`~repro.core.packing_vec.VectorGreedyPacker`; ``'auto'``
  (default) picks by instance size (the array kernel's per-call
  overhead only pays off past a few hundred thousand phone × job
  cells);
* **cached bounds** — the (lower, upper) bracket comes from
  :meth:`SchedulingInstance.capacity_bounds`, computed once per
  instance instead of twice per search (and once more per caller);
* **infeasibility certificates** — conservative floors computed once
  per search: the *single-placement floor* (some job's cheapest
  possible first placement exceeds ``C`` on every phone), the *volume
  floor* (the fleet-wide work implied by the jobs exceeds
  ``|P| * C``), and — opt-in, because solving it is only cheap on
  small instances — the *LP floor* (the relaxation of
  :mod:`repro.core.lp_bound` lower-bounds every schedule's makespan).
  A midpoint below any floor is provably infeasible and is resolved
  without packing;
* **feasibility certificate** — the dual of the floors: a capacity
  threshold above which Algorithm 1 *provably cannot fail* (see
  :func:`_greedy_feasibility_threshold` for the proof).  Midpoints
  above it — the whole top half of the frozen grid, where packs are
  pure formality — are resolved feasible without packing, and the
  final capacity is materialised with one real pack exactly like a
  warm-started search;
* **verdict-only probes** — on large instances the numpy kernel packs
  bisection probes with ``collect=False``: the placement sequence is
  identical but the probe skips accumulating a schedule that the next
  bracket update would discard.  The winning capacity is materialised
  with one collecting pack at the end (so ``packer_passes`` can exceed
  ``bisection_steps`` by one on such instances);
* **batched multi-candidate probes (subtree speculation)** — with
  ``probe_workers >= 2`` a process pool evaluates a *block* of up to
  ``batch_width`` candidate capacities concurrently: the possible
  future midpoints of the frozen bisection tree under the current
  bracket, expanded breadth-first and pruned wherever a certificate
  already decides a node's verdict.  One block round-trip therefore
  resolves several bisection *levels* at once — the bracket shrinks by
  ``~log2(batch_width + 1)`` levels per pack wall-time instead of one.
  Every candidate is an exact grid midpoint packed for real by the
  same kernel, so the trajectory is byte-identical to the serial
  search *by construction*.  (An earlier design probed off-grid
  "ladder" capacities and resolved grid midpoints by monotonicity;
  fuzzing found real instances where greedy feasibility is **not**
  monotone in capacity — feasible islands below the converged
  threshold — so any assumption that transfers an off-grid verdict
  onto the grid can silently change the schedule.  Only warm hints,
  which replay the very capacity a previous search converged to, are
  exempt: see below.)  Block candidates whose branch the bracket
  abandons are counted in ``speculative_packs`` and discarded;
* **warm-started probes** — at a rescheduling instant the previous
  instant's feasible capacity is a strong hint.  ``run(..,
  warm_hint_ms=C1)`` verifies the hint with one real pack; if it is
  feasible, every probe at ``mid >= C1`` is *assumed* feasible without
  packing.  This is not a monotonicity claim (greedy feasibility is
  not monotone — see above): within any one bisection run every
  infeasible midpoint lies strictly below every feasible one, so when
  ``C1`` is the capacity a search over the *same grid* converged to,
  the assumption exactly replays that search's verdicts.  A hint from
  a *different* instant's instance is only a heuristic, so the
  converged capacity is always re-materialised with a real pack; if
  that pack ever fails, the search falls back to a full cold run with
  every assumption-based shortcut disabled, which is unconditionally
  correct.

``iterations`` (and its alias ``packer_passes``) counts *real* packs,
preserving the historical meaning; ``bisection_steps`` counts bracket
updates and is what ``max_iterations`` caps, so certificate skips and
assumed probes cannot lengthen the trajectory relative to the original
implementation.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from ..obs.telemetry import NULL_TELEMETRY
from ..obs.tracing import Tracer, maybe_span
from .arraypool import ArrayPool
from .instance import SchedulingInstance
from .model import MIN_PARTITION_KB
from .packing import GreedyPacker, PackingResult
from .packing_vec import VectorGreedyPacker
from .schedule import InfeasibleScheduleError, Schedule

__all__ = [
    "CapacitySearch",
    "CapacitySearchResult",
    "available_cpus",
    "capacity_bounds",
    "resolve_batch_width",
    "resolve_kernel",
]

#: Relative/absolute safety margin for the feasibility/infeasibility
#: certificates.  Must comfortably exceed the packer's 1e-9 exact-fit
#: tolerance.
_CERT_MARGIN = 1e-6

#: Extra relative slack applied to the LP floor: the HiGHS objective is
#: itself a floating-point approximation of the true LP optimum.
_LP_MARGIN = 1e-5

#: ``kernel='auto'``: instances with at least this many phone × job
#: cells probe with the numpy kernel (measured crossover ~2e5 cells).
_AUTO_KERNEL_MIN_CELLS = 250_000

#: Verdict-only probing turns on (numpy kernel only) at this size, where
#: skipping per-probe schedule accumulation outweighs the one extra
#: materialisation pack.
_DEFER_MIN_CELLS = 500_000

#: ``batch_width='auto'``: candidate capacities per speculative block
#: (7 = a full 3-level subtree of future midpoints).
_DEFAULT_BATCH_WIDTH = 7

_KERNELS = ("auto", "python", "numpy")

_KERNEL_CLASSES = {
    "python": GreedyPacker,
    "numpy": VectorGreedyPacker,
}


def available_cpus() -> int:
    """CPUs this process may actually use.

    The ``REPRO_CPUS`` environment variable overrides every probe when
    set to a positive integer — benches and CI pin a reproducible
    worker count with it, and single-CPU containers can exercise the
    multi-core sizing logic.  Malformed or non-positive values are
    ignored rather than fatal: a typo in the environment must not take
    the scheduler down.

    Otherwise respects CPU affinity masks and cgroup limits where the
    platform exposes them (``os.sched_getaffinity``, then Python
    3.13+'s ``os.process_cpu_count``), falling back to
    ``os.cpu_count``.  Sizing worker pools from the raw ``cpu_count``
    over-spawns on affinity-limited hosts — the container this repo
    benchmarks in reports every host core while pinning the process to
    one.
    """
    pinned = os.environ.get("REPRO_CPUS")
    if pinned is not None:
        try:
            count = int(pinned)
        except ValueError:
            count = 0
        if count >= 1:
            return count
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        pass
    counter = getattr(os, "process_cpu_count", None)
    if counter is not None:
        counted = counter()
        if counted:
            return counted
    return os.cpu_count() or 1


def resolve_batch_width(batch_width) -> int:
    """Resolve a ``batch_width`` selector to a concrete block size.

    ``None``/``'auto'`` pick the default; ``0`` disables subtree
    speculation (falling back to plain next-midpoint prefetch);
    positive integers cap the number of candidate capacities in
    flight per speculative block.  Serial searches ignore the knob.
    """
    if batch_width is None or batch_width == "auto":
        return _DEFAULT_BATCH_WIDTH
    width = int(batch_width)
    if width < 0 or (not isinstance(batch_width, int) and batch_width != width):
        raise ValueError(
            f"batch_width must be 'auto' or an integer >= 0, got {batch_width!r}"
        )
    return width


def capacity_bounds(instance: SchedulingInstance) -> tuple[float, float]:
    """Return the (lower, upper) capacity bracket for the binary search.

    Delegates to the instance's cached computation — repeated calls
    (the search itself, benchmarks, diagnostics) cost a tuple read.
    """
    return instance.capacity_bounds()


def resolve_kernel(kernel: str, instance: SchedulingInstance) -> str:
    """Resolve a kernel selector to a concrete backend name.

    ``'python'`` and ``'numpy'`` pass through; ``'auto'`` picks the
    numpy kernel for instances of at least ``_AUTO_KERNEL_MIN_CELLS``
    phone × job cells and the scalar kernel below that.
    """
    if kernel not in _KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}; expected one of {_KERNELS}"
        )
    if kernel != "auto":
        return kernel
    cells = len(instance.phones) * len(instance.jobs)
    return "numpy" if cells >= _AUTO_KERNEL_MIN_CELLS else "python"


def _certificate_floors(
    instance: SchedulingInstance, min_partition_kb: float
) -> tuple[float, float]:
    """(single-placement floor, total volume) for infeasibility proofs.

    *Single-placement floor*: for each job, the cheapest possible first
    placement on any phone — the executable plus the smallest partition
    the packer may create (``min(L_j, min_partition)`` for breakable
    jobs, the whole input for atomic jobs).  Every job must receive a
    first placement on some phone, so no capacity below the max over
    jobs of that minimum can be feasible.

    *Volume floor*: every KB of every job must be processed somewhere at
    no better than the fleet's best per-KB rate, and each executable
    shipped at least once at no better than the best ``b_i``; the sum of
    bin heights cannot exceed ``|P| * C``, so capacities below
    ``volume / |P|`` are infeasible.

    Both floors ignore RAM constraints, which only make packing harder —
    the proofs stay valid.  numpy is safe here (unlike in the bounds)
    because the certificates' 1e-6 margin absorbs any summation-order
    difference.
    """
    if not instance.jobs or not instance.phones:
        return 0.0, 0.0
    b = instance.b_array()
    per_kb = instance.per_kb_matrix()
    exe, load = instance.job_load_arrays()
    atomic = np.asarray([job.is_atomic for job in instance.jobs])
    first = np.where(atomic, load, np.minimum(load, min_partition_kb))
    # placement[i, j] = E_j * b_i + x_j * (b_i + c_ij), reduced in
    # row blocks: min/max reductions involve no arithmetic, so the
    # blocked sweep is bitwise-identical to materializing the full
    # placement matrix while touching a fraction of the memory.
    best_first = _blocked_placement_min(b, per_kb, exe, first)
    single_floor = float(best_first.max())
    volume = float((exe * b.min() + load * per_kb.min(axis=0)).sum())
    return single_floor, volume


def _blocked_placement_min(b, per_kb, exe, need, block_rows: int = 128):
    """Columnwise min over phones of ``E_j*b_i + need_j*(b_i + c_ij)``."""
    best = None
    for start in range(0, per_kb.shape[0], block_rows):
        stop = start + block_rows
        block = (
            b[start:stop, None] * exe[None, :]
            + per_kb[start:stop] * need[None, :]
        )
        col_min = block.min(axis=0)
        best = col_min if best is None else np.minimum(best, col_min, out=best)
    return best


def _blocked_placement_max(b, per_kb, exe, need, block_rows: int = 128) -> float:
    """Max over all cells of ``E_j*b_i + need_j*(b_i + c_ij)``."""
    worst = -np.inf
    for start in range(0, per_kb.shape[0], block_rows):
        stop = start + block_rows
        block = (
            b[start:stop, None] * exe[None, :]
            + per_kb[start:stop] * need[None, :]
        )
        worst = max(worst, float(block.max()))
    return worst


def _greedy_feasibility_threshold(
    instance: SchedulingInstance,
    min_partition_kb: float,
    ram,
) -> float | None:
    """Capacity above which Algorithm 1 provably cannot fail.

    Sketch of the proof.  Suppose a pack at capacity ``C`` fails on an
    item of job ``j``.  Every placement of ``j`` needs at most
    ``need_j = L_j`` KB (atomic) or ``min(L_j, 2*minp)`` KB (breakable:
    either a ``minp`` partition is acceptable, or the remainder is
    below ``2*minp`` and must be placed whole), so a *fresh* bin on
    phone ``i`` rejects only if ``C < E_j*b_i + need_j*(b_i + c_ij)``.
    With ``M`` the maximum of that expression over all (i, j):

    * if a phone was still unopened at failure time, ``C < M``;
    * otherwise all ``n`` bins rejected, each with height
      ``h_i > C - M``, so the total height exceeds ``n*(C - M)``.

    The total height is bounded by the work that can ever be placed:
    every KB of input costs at most its worst per-KB rate
    (``W = sum_j L_j * max_i (b_i + c_ij)``) and every placement ships
    at most one executable at cost at most
    ``ExeMax = max_j E_j * max_i b_i``.  Placements are bounded
    C-independently: each item retires via one whole placement
    (``<= J``), a non-sliver split fills its bin to exactly ``C``
    (terminal), a sliver split leaves headroom below
    ``minp * max_rate``, and every split costs at least
    ``minp * min_rate`` — so each bin sees at most
    ``2 + max_rate/min_rate`` splits.  Combining:

        C  <  M + (W + P_bound * ExeMax) / n

    whenever a pack at ``C`` fails.  Any capacity at or above the
    returned threshold (with the caller's safety margin) is therefore
    provably feasible without running the pack.

    Returns ``None`` when the proof does not apply: RAM constraints
    (the fresh-bin analysis assumes the per-KB clamp is the binding
    one), non-positive per-KB rates (free transfers break the strict
    headroom accounting), or a degenerate minimum partition.
    """
    if ram is not None or min_partition_kb <= 0:
        return None
    if not instance.jobs or not instance.phones:
        return None
    per_kb = instance.per_kb_matrix()
    col_max = per_kb.max(axis=0)
    min_rate = float(per_kb.min())
    if min_rate <= 0:
        return None
    max_rate = float(col_max.max())
    b = instance.b_array()
    exe, load = instance.job_load_arrays()
    atomic = np.asarray([job.is_atomic for job in instance.jobs])
    need = np.where(atomic, load, np.minimum(load, 2.0 * min_partition_kb))
    worst_first = _blocked_placement_max(b, per_kb, exe, need)
    work = float((load * col_max).sum())
    exe_max = float(exe.max()) * float(b.max())
    n_phones = len(instance.phones)
    splits_per_bin = 2.0 + max_rate / min_rate
    placements_bound = len(instance.jobs) + n_phones * splits_per_bin
    return worst_first + (work + placements_bound * exe_max) / n_phones


def _lp_floor(instance: SchedulingInstance) -> float | None:
    """LP-relaxation makespan as an infeasibility floor, or ``None``.

    ``T_relaxed <= T_optimal``: if *any* schedule fits in capacity
    ``C`` then ``C >= T_optimal >= T_relaxed``, so capacities below the
    relaxed makespan are infeasible for the greedy packer too.  The
    solver import and solve are attempted lazily; any failure simply
    disables the floor.
    """
    try:
        from .lp_bound import solve_relaxed_makespan

        solution = solve_relaxed_makespan(instance)
    except Exception:
        return None
    if solution.status != 0:
        return None
    return solution.makespan_ms * (1.0 - _LP_MARGIN)


@dataclass(frozen=True)
class CapacitySearchResult:
    """Outcome of the full capacity search."""

    schedule: Schedule
    capacity_ms: float
    max_height_ms: float
    lower_bound_ms: float
    upper_bound_ms: float
    #: Real Algorithm-1 packs issued (historical name; == packer_passes).
    iterations: int
    #: Real Algorithm-1 packs issued.
    packer_passes: int = 0
    #: Bracket updates walked (seed + bisection probes); what
    #: ``max_iterations`` caps.
    bisection_steps: int = 0
    #: Probes resolved by a feasibility/infeasibility certificate
    #: without packing.
    shortcircuit_skips: int = 0
    #: Probes resolved feasible by a verified warm hint's replay
    #: oracle.
    assumed_feasible: int = 0
    #: Whether a feasible warm hint steered this search.
    warm_start_used: bool = False
    #: Packing backend the probes ran on ("python" or "numpy").
    kernel: str = "python"
    #: Speculative probes submitted to the worker pool whose verdicts
    #: the bracket never consumed.
    speculative_packs: int = 0
    #: Resolved speculative-block size (0 disables subtree expansion).
    batch_width: int = 0
    #: Fraction of pool-submitted probes whose verdicts the search
    #: consumed (1.0 for serial searches — every pack is consumed).
    probe_worker_utilisation: float = 1.0
    #: Wall ms the bisection spent blocked on pool verdicts.  Tracing
    #: diagnostic: 0.0 unless the telemetry facade armed a tracer.
    probe_wait_ms: float = 0.0
    #: Wall ms probe workers spent inside consumed packs.  Tracing
    #: diagnostic: 0.0 unless the telemetry facade armed a tracer.
    #: ``probe_wait_ms - probe_exec_ms`` is pool queueing/dispatch
    #: overhead — together with ``probe_worker_utilisation`` it says
    #: where a pooled search's wall-clock went.
    probe_exec_ms: float = 0.0


def _shared_probe_payload(instance, shared):
    """Worker-init payload: shm spec + slim tables, or the instance.

    With a :class:`~repro.core.shm.SharedMatrix` published, workers
    receive everything *except* the cost matrix (jobs, phones, the b
    table — kilobytes) plus the segment spec, and rebuild the instance
    against the mapped pages.  Without one, the instance itself is the
    payload (inherited by fork).
    """
    if shared is None:
        return ("inline", instance)
    return (
        "shm",
        shared.spec,
        instance.jobs,
        instance.phones,
        dict(instance.b_ms_per_kb),
    )


def _rebuild_probe_instance(payload):
    """Worker side of :func:`_shared_probe_payload`."""
    if payload[0] == "inline":
        return payload[1]
    global _WORKER_SEGMENT
    from .instance import _DenseCostMap
    from .shm import attach_matrix

    _, spec, jobs, phones, b_table = payload
    _WORKER_SEGMENT, mat = attach_matrix(spec)
    dense = _DenseCostMap(
        tuple(phone.phone_id for phone in phones),
        tuple(job.job_id for job in jobs),
        mat,
    )
    return SchedulingInstance(
        jobs=jobs, phones=phones, b_ms_per_kb=b_table, c_ms_per_kb=dense
    )


#: Worker-side tracer; None keeps the untraced probe payload (a bare
#: bool) byte-identical to the historical protocol.
_WORKER_TRACER = None


def _speculative_worker_init(payload, packer_kwargs, kernel, trace_run_id=None):
    """Build one packer per worker process (runs in the child)."""
    global _WORKER_PACKER, _WORKER_TRACER
    instance = _rebuild_probe_instance(payload)
    _WORKER_PACKER = _KERNEL_CLASSES[kernel](instance, **packer_kwargs)
    if trace_run_id is not None:
        _WORKER_TRACER = Tracer(
            trace_run_id, process=f"probe-workers/pid-{os.getpid()}"
        )
    else:
        _WORKER_TRACER = None


def _speculative_worker_probe(capacity_ms: float):
    """Verdict-only pack in a worker process.

    Returns a bare bool normally; with tracing armed the payload is
    ``(bool, span_dicts)`` — the worker's ``probe_pack`` span rides
    back to the parent for adoption.
    """
    packer = _WORKER_PACKER
    tracer = _WORKER_TRACER
    if tracer is None:
        if isinstance(packer, VectorGreedyPacker):
            return packer.pack(capacity_ms, collect=False).feasible
        return packer.pack(capacity_ms).feasible
    with tracer.span(
        "probe_pack", category="capacity", capacity_ms=capacity_ms
    ) as handle:
        if isinstance(packer, VectorGreedyPacker):
            feasible = packer.pack(capacity_ms, collect=False).feasible
        else:
            feasible = packer.pack(capacity_ms).feasible
        handle.set_attr("feasible", feasible)
    return feasible, tracer.drain_dicts()


class CapacitySearch:
    """Finds the minimum feasible bin capacity via bisection.

    Parameters
    ----------
    epsilon_ms:
        Bisection stops once ``UB - LB`` falls below this (1 ms default —
        the resolution of the paper's cost model).
    max_iterations:
        Hard cap on bisection steps, a safety net against pathological
        brackets (60 steps resolve any double-precision bracket).
    kernel:
        Packing backend for the probes: ``'python'`` (exact scalar
        reference), ``'numpy'`` (vectorized, byte-identical), or
        ``'auto'`` (pick by instance size).
    probe_workers:
        When >= 2, probe capacities speculatively on a process pool of
        this size; the serial search (the default) walks the identical
        trajectory.  ``'auto'`` sizes the pool from
        :func:`available_cpus` (and stays serial on single-CPU hosts).
    batch_width:
        Size of the speculative block for the batched multi-candidate
        search (see the module docstring): up to this many future grid
        midpoints are packed concurrently per block.  ``'auto'``
        (default) picks ``_DEFAULT_BATCH_WIDTH``; ``0`` falls back to
        prefetching only the two immediate next midpoints.  Serial
        searches ignore the knob.  Schedules are byte-identical either
        way.
    shared_mem:
        Publish the dense cost matrix to probe workers through
        ``multiprocessing.shared_memory`` (see :mod:`repro.core.shm`)
        instead of shipping it in the worker payload.  ``'auto'``
        (default) turns it on whenever a worker pool is in use;
        ``False`` forces the inline payload.  No effect on serial
        searches.
    lp_floor:
        Additionally certify infeasible midpoints against the LP
        relaxation of :mod:`repro.core.lp_bound`.  Off by default: the
        LP solve only pays for itself on small instances.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` facade.  The
        search records only registry metrics (probe outcomes, bisection
        steps, certificate skips, speculative hit/miss, kernel choice)
        — it has no simulation clock, so it never emits bus events.
        Every recording site is guarded by the enabled flag, keeping
        the disabled hot path identical to the un-instrumented one.
    """

    def __init__(
        self,
        *,
        epsilon_ms: float = 1.0,
        max_iterations: int = 60,
        min_partition_kb: float | None = None,
        ram=None,
        kernel: str = "auto",
        probe_workers: int | str | None = None,
        batch_width: int | str | None = "auto",
        shared_mem: bool | str = "auto",
        lp_floor: bool = False,
        telemetry=None,
    ) -> None:
        if epsilon_ms <= 0:
            raise ValueError("epsilon_ms must be > 0")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if kernel not in _KERNELS:
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of {_KERNELS}"
            )
        if probe_workers is not None and probe_workers != "auto" and (
            probe_workers < 1
        ):
            raise ValueError("probe_workers must be >= 1 or 'auto'")
        self._epsilon_ms = epsilon_ms
        self._max_iterations = max_iterations
        self._min_partition_kb = min_partition_kb
        #: Optional RamConstraint applied inside the packer (footnote 4).
        self._ram = ram
        self._kernel = kernel
        self._probe_workers = probe_workers
        self._batch_width = resolve_batch_width(batch_width)
        if shared_mem not in ("auto", True, False):
            raise ValueError(
                f"shared_mem must be 'auto', True, or False, got {shared_mem!r}"
            )
        self._shared_mem = shared_mem
        self._lp_floor = lp_floor
        #: Cross-round buffer recycler for the numpy kernel's dense
        #: mirrors; lives as long as the search object, so a scheduler
        #: that reschedules every round stops re-allocating them.
        self._array_pool = ArrayPool()
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY

    @property
    def array_pool(self) -> ArrayPool:
        """The search's cross-round :class:`ArrayPool` (diagnostics)."""
        return self._array_pool

    def run(
        self,
        instance: SchedulingInstance,
        *,
        warm_hint_ms: float | None = None,
        _trusted: bool = True,
    ) -> CapacitySearchResult:
        """Search for the minimum feasible capacity.

        ``warm_hint_ms`` — a capacity believed feasible (typically the
        previous scheduling instant's result).  The hint is *verified*
        with a real pack before being trusted; an infeasible or useless
        hint degrades gracefully to the cold search.  The returned
        schedule is identical to the cold search's either way.

        ``_trusted=False`` is the internal paranoid mode used when an
        assumption-based shortcut is caught misbehaving: every oracle
        that relies on monotonicity or a derived certificate is
        disabled and each probe is packed for real.
        """
        tel = self._tel
        tracer = tel.tracer if tel.enabled else None
        if tracer is None:
            return self._run_impl(
                instance, warm_hint_ms=warm_hint_ms, _trusted=_trusted
            )
        with tracer.span(
            "capacity_search",
            category="capacity",
            phones=len(instance.phones),
            jobs=len(instance.jobs),
            trusted=_trusted,
        ) as root:
            result = self._run_impl(
                instance,
                warm_hint_ms=warm_hint_ms,
                _trusted=_trusted,
                _tracer=tracer,
                _root=root,
            )
            root.set_attr("capacity_ms", result.capacity_ms)
            root.set_attr("kernel", result.kernel)
            root.set_attr("packs", result.packer_passes)
            return result

    def _run_impl(
        self,
        instance: SchedulingInstance,
        *,
        warm_hint_ms: float | None = None,
        _trusted: bool = True,
        _tracer=None,
        _root=None,
    ) -> CapacitySearchResult:
        tracer = _tracer
        packer_kwargs = {"ram": self._ram}
        if self._min_partition_kb is not None:
            packer_kwargs["min_partition_kb"] = self._min_partition_kb
        kernel = resolve_kernel(self._kernel, instance)
        local_kwargs = dict(packer_kwargs)
        if kernel == "numpy":
            # The owner-side packer draws its dense mirrors from the
            # search's cross-round pool; worker-side packers (built
            # from ``packer_kwargs``) allocate their own.
            local_kwargs["array_pool"] = self._array_pool
        with maybe_span(tracer, "build", category="capacity", kernel=kernel):
            packer = _KERNEL_CLASSES[kernel](instance, **local_kwargs)
        cells = len(instance.phones) * len(instance.jobs)
        defer = (
            _trusted and kernel == "numpy" and cells >= _DEFER_MIN_CELLS
        )

        with maybe_span(tracer, "bounds", category="capacity"):
            lower, upper = capacity_bounds(instance)
            min_partition = (
                self._min_partition_kb
                if self._min_partition_kb is not None
                else MIN_PARTITION_KB
            )
            single_floor, volume = _certificate_floors(instance, min_partition)
            lp_floor_ms = (
                _lp_floor(instance) if (self._lp_floor and _trusted) else None
            )
            feasible_threshold = (
                _greedy_feasibility_threshold(
                    instance, min_partition, self._ram
                )
                if _trusted
                else None
            )
        n_phones = len(instance.phones)

        def provably_infeasible(cap: float) -> bool:
            padded = cap * (1.0 + _CERT_MARGIN) + _CERT_MARGIN
            if padded < single_floor or n_phones * padded < volume:
                return True
            return lp_floor_ms is not None and padded < lp_floor_ms

        def provably_feasible(cap: float) -> bool:
            if feasible_threshold is None:
                return False
            return cap * (1.0 - _CERT_MARGIN) - _CERT_MARGIN >= (
                feasible_threshold
            )

        packs = 0
        steps = 0
        skips = 0
        assumed = 0
        speculated = 0
        pool_submitted = 0
        probe_wait_ms = 0.0
        probe_exec_ms = 0.0
        batch_width = self._batch_width

        # -- speculative probe pool ----------------------------------------
        pool = None
        shared = None
        pending: dict[float, object] = {}
        workers = self._probe_workers
        if workers == "auto":
            cpus = available_cpus()
            workers = cpus if cpus >= 2 else None
        if workers is not None and workers >= 2:
            with maybe_span(
                tracer, "pool_init", category="capacity", workers=workers
            ):
                try:
                    import multiprocessing
                    from concurrent.futures import ProcessPoolExecutor

                    if self._shared_mem in ("auto", True):
                        try:
                            from .shm import SharedMatrix

                            shared = SharedMatrix(instance.c_matrix())
                        except Exception:
                            shared = None  # inline payload fallback
                    pool = ProcessPoolExecutor(
                        max_workers=workers,
                        mp_context=multiprocessing.get_context("fork"),
                        initializer=_speculative_worker_init,
                        initargs=(
                            _shared_probe_payload(instance, shared),
                            packer_kwargs,
                            kernel,
                            tracer.run_id if tracer is not None else None,
                        ),
                    )
                except Exception:
                    pool = None  # serial fallback, identical trajectory
                    if shared is not None:
                        shared.close_and_unlink()
                        shared = None

        #: Lowest capacity *verified* feasible by a real pack at a warm
        #: hint — the replay oracle that resolves grid midpoints above
        #: it for free.  Only hints may feed it (see the module
        #: docstring): greedy feasibility is not monotone, so a
        #: speculative verdict at one capacity proves nothing about
        #: any other.
        feas_at: float | None = None

        def submit(cap: float):
            nonlocal pool_submitted
            pool_submitted += 1
            return pool.submit(_speculative_worker_probe, cap)

        def prefetch_frontier(lo: float, hi: float) -> None:
            """Submit the block of possible future grid midpoints.

            Expands the frozen bisection tree under the current bracket
            breadth-first: a node whose verdict a certificate or the
            warm-hint oracle already decides contributes only its
            surviving half, an undecided node is submitted to the pool
            and both halves stay on the frontier (either could be the
            real trajectory).  At most ``batch_width`` candidates are
            kept in flight, so one block round-trip resolves up to
            ``log2(batch_width + 1)`` bisection levels.
            """
            if pool is None:
                return
            nonlocal speculated
            # Candidates the bracket has moved past can never be
            # consumed; retire them so they stop eating the budget.
            for cap in [c for c in pending if not (lo < c < hi)]:
                pending.pop(cap).cancel()
                speculated += 1
            # width 0 degrades to the legacy 2-ahead prefetch: the
            # current midpoint plus its two possible successors.
            budget = batch_width if batch_width >= 1 else 3
            frontier = [(lo, hi)]
            while frontier and len(pending) < budget:
                node_lo, node_hi = frontier.pop(0)
                if node_hi - node_lo <= self._epsilon_ms:
                    continue
                mid = (node_lo + node_hi) / 2.0
                if provably_infeasible(mid):
                    frontier.append((mid, node_hi))
                    continue
                if provably_feasible(mid) or (
                    feas_at is not None and mid >= feas_at
                ):
                    frontier.append((node_lo, mid))
                    continue
                if mid not in pending:
                    pending[mid] = submit(mid)
                frontier.append((node_lo, mid))
                frontier.append((mid, node_hi))

        tel = self._tel

        def probe_feasible(
            cap: float, *, collect: bool = False
        ) -> tuple[bool, PackingResult | None]:
            """Real-pack verdict for ``cap`` (pool or local)."""
            nonlocal packs, probe_wait_ms, probe_exec_ms
            packs += 1
            if pool is not None:
                future = pending.pop(cap, None)
                speculative_hit = future is not None
                if future is None:
                    future = submit(cap)
                if tracer is not None:
                    # Worker protocol is (verdict, spans) with tracing
                    # armed; the probe_wait span measures how long the
                    # bisection blocked, the adopted probe_pack spans
                    # (one per consumed verdict, parented on the search
                    # root so speculative work that ran *before* this
                    # wait keeps honest timestamps) measure worker
                    # execution.  wait − exec = queueing/dispatch.
                    wait = tracer.start(
                        "probe_wait",
                        category="capacity",
                        capacity_ms=cap,
                        speculative_hit=speculative_hit,
                    )
                    verdict, worker_spans = future.result()
                    feasible = bool(verdict)
                    adopted = tracer.adopt(worker_spans, parent=_root)
                    wait_span = tracer.end(wait, feasible=feasible)
                    probe_wait_ms += wait_span.wall_ms
                    probe_exec_ms += sum(s.wall_ms for s in adopted)
                else:
                    feasible = bool(future.result())
                if tel.enabled:
                    tel.inc(
                        "capacity_speculative_probes_total",
                        outcome="hit" if speculative_hit else "miss",
                    )
                    tel.inc(
                        "capacity_probes_total",
                        outcome="feasible" if feasible else "infeasible",
                    )
                return feasible, None
            if tracer is not None:
                with tracer.span(
                    "pack", category="capacity", capacity_ms=cap
                ) as pack_handle:
                    if defer and not collect:
                        attempt = packer.pack(cap, collect=False)
                    else:
                        attempt = packer.pack(cap)
                    pack_handle.set_attr("feasible", attempt.feasible)
            elif defer and not collect:
                attempt = packer.pack(cap, collect=False)
            else:
                attempt = packer.pack(cap)
            if tel.enabled:
                tel.inc(
                    "capacity_probes_total",
                    outcome="feasible" if attempt.feasible else "infeasible",
                )
                tel.observe(
                    "pack_wall_ms", packer.last_pack_wall_ms, kernel=kernel
                )
            return attempt.feasible, attempt

        try:
            # -- warm hint verification ------------------------------------
            seed_capacity = upper * (1.0 + 1e-9) + 1e-9
            hint: float | None = None
            hint_result: PackingResult | None = None
            if (
                warm_hint_ms is not None
                and 0.0 < warm_hint_ms < seed_capacity
            ):
                with maybe_span(
                    tracer,
                    "warm_verify",
                    category="capacity",
                    hint_ms=warm_hint_ms,
                ):
                    attempt = packer.pack(warm_hint_ms)
                packs += 1
                if attempt.feasible:
                    hint = warm_hint_ms
                    hint_result = attempt
                    feas_at = warm_hint_ms
            warm_used = hint is not None

            # -- seed: packing at the upper bound must succeed -------------
            # A hair of slack keeps accumulated rounding error from
            # rejecting the exact-fit packing.
            best: PackingResult | None = None
            best_capacity = seed_capacity
            steps += 1
            if provably_feasible(seed_capacity):
                skips += 1
            elif feas_at is not None and seed_capacity >= feas_at:
                # Monotonicity: feasible at the verified capacity =>
                # feasible at the seed.
                assumed += 1
            else:
                feasible, attempt = probe_feasible(seed_capacity)
                if not feasible:
                    raise InfeasibleScheduleError(
                        "greedy packing failed even at the upper-bound "
                        f"capacity ({upper:.3f} ms); the instance is "
                        "malformed or an atomic job violates a resource "
                        "constraint on every phone"
                    )
                best = attempt  # None under a pool: materialised below

            # -- bisection on the cold midpoint grid -----------------------
            while (
                upper - lower > self._epsilon_ms
                and steps < self._max_iterations
            ):
                mid = (lower + upper) / 2.0
                steps += 1
                with maybe_span(
                    tracer,
                    "bisect_step",
                    category="capacity",
                    step=steps,
                    mid_ms=mid,
                ):
                    if provably_infeasible(mid):
                        skips += 1
                        lower = mid
                        continue
                    if provably_feasible(mid):
                        skips += 1
                        upper = mid
                        best = None  # certified; materialised below if final
                        best_capacity = mid
                        continue
                    if feas_at is not None and mid >= feas_at:
                        assumed += 1
                        upper = mid
                        best = None  # assumed; materialised below if final
                        best_capacity = mid
                        continue
                    # Keep a block of possible future midpoints in flight
                    # (this one included) while verdicts resolve.
                    with maybe_span(
                        tracer, "probe_dispatch", category="capacity"
                    ):
                        prefetch_frontier(lower, upper)
                    # Once the bracket is within a step or two of
                    # epsilon, a feasible verdict is likely final:
                    # collect its schedule so no separate
                    # materialisation pack is needed.
                    feasible, attempt = probe_feasible(
                        mid,
                        collect=(upper - lower) <= 2.0 * self._epsilon_ms,
                    )
                    if feasible:
                        upper = mid
                        best = attempt
                        best_capacity = mid
                    else:
                        lower = mid

            # -- materialise an assumed/deferred final capacity ------------
            if best is None or best.schedule is None:
                if hint_result is not None and best_capacity == hint:
                    best = hint_result
                else:
                    with maybe_span(
                        tracer,
                        "materialise",
                        category="capacity",
                        capacity_ms=best_capacity,
                    ):
                        attempt = packer.pack(best_capacity)
                    packs += 1
                    if attempt.feasible:
                        best = attempt
                    else:
                        # An assumption was violated (never observed in
                        # practice): discard everything the oracles
                        # assumed and redo the search cold with every
                        # shortcut disabled, which is unconditionally
                        # correct.
                        return self.run(instance, _trusted=False)
        finally:
            if pool is not None:
                speculated += len(pending)
                pool.shutdown(wait=False, cancel_futures=True)
            if shared is not None:
                shared.close_and_unlink()
            if kernel == "numpy":
                # Hand the dense mirrors back for the next round; the
                # surviving results only reference builder-made
                # schedules, never the pooled buffers.
                packer.release_buffers()

        assert best.schedule is not None
        utilisation = (
            1.0
            if pool_submitted == 0
            else (pool_submitted - speculated) / pool_submitted
        )
        if tel.enabled:
            tel.inc("capacity_searches_total", kernel=kernel)
            tel.inc("capacity_bisection_steps_total", float(steps))
            tel.inc("capacity_shortcircuit_skips_total", float(skips))
            tel.inc("capacity_assumed_feasible_total", float(assumed))
            tel.inc("capacity_speculative_unused_total", float(speculated))
            if warm_used:
                tel.inc("capacity_warm_start_hits_total")
            tel.observe("capacity_packs_per_search", float(packs))
        bounds = capacity_bounds(instance)
        return CapacitySearchResult(
            schedule=best.schedule,
            capacity_ms=best.capacity_ms,
            max_height_ms=best.max_height_ms,
            lower_bound_ms=bounds[0],
            upper_bound_ms=bounds[1],
            iterations=packs,
            packer_passes=packs,
            bisection_steps=steps,
            shortcircuit_skips=skips,
            assumed_feasible=assumed,
            warm_start_used=warm_used,
            kernel=kernel,
            speculative_packs=speculated,
            batch_width=batch_width,
            probe_worker_utilisation=utilisation,
            probe_wait_ms=probe_wait_ms,
            probe_exec_ms=probe_exec_ms,
        )
