"""Binary search over bin capacity (Section 5, "Our Solution").

Algorithm 1 answers *"can everything be packed with capacity C?"*; this
module finds the smallest such ``C``:

* **Upper bound** — all items stacked on the *worst* bin: the maximum
  over phones of the total Equation-1 cost of running every job whole on
  that phone.  Packing at this capacity always succeeds (one bin can
  hold everything).
* **Lower bound** — the paper's "magical bin" with the aggregate
  processing capability and aggregate bandwidth of the whole fleet and
  no executable-shipping cost: job ``j`` is processed at the aggregate
  rate ``sum_i 1 / (b_i + c_ij)`` KB per millisecond, so the bound is
  ``sum_j L_j / sum_i 1/(b_i + c_ij)``.
* Bisect until the bracket is narrower than ``epsilon_ms``, keeping the
  schedule from the smallest feasible capacity seen.
"""

from __future__ import annotations

from dataclasses import dataclass

from .instance import SchedulingInstance
from .packing import GreedyPacker, PackingResult
from .schedule import InfeasibleScheduleError, Schedule

__all__ = ["CapacitySearch", "CapacitySearchResult", "capacity_bounds"]


def capacity_bounds(instance: SchedulingInstance) -> tuple[float, float]:
    """Return the (lower, upper) capacity bracket for the binary search."""
    upper = max(
        sum(instance.cost(phone.phone_id, job.job_id) for job in instance.jobs)
        for phone in instance.phones
    )
    lower = 0.0
    for job in instance.jobs:
        aggregate_rate = sum(
            1.0
            / (
                instance.b(phone.phone_id)
                + instance.c(phone.phone_id, job.job_id)
            )
            for phone in instance.phones
            if instance.b(phone.phone_id)
            + instance.c(phone.phone_id, job.job_id)
            > 0
        )
        if aggregate_rate > 0:
            lower += job.input_kb / aggregate_rate
    # The bracket must be well-ordered even for degenerate instances.
    lower = min(lower, upper)
    return lower, upper


@dataclass(frozen=True)
class CapacitySearchResult:
    """Outcome of the full capacity search."""

    schedule: Schedule
    capacity_ms: float
    max_height_ms: float
    lower_bound_ms: float
    upper_bound_ms: float
    iterations: int


class CapacitySearch:
    """Finds the minimum feasible bin capacity via bisection.

    Parameters
    ----------
    epsilon_ms:
        Bisection stops once ``UB - LB`` falls below this (1 ms default —
        the resolution of the paper's cost model).
    max_iterations:
        Hard cap on bisection steps, a safety net against pathological
        brackets (60 steps resolve any double-precision bracket).
    """

    def __init__(
        self,
        *,
        epsilon_ms: float = 1.0,
        max_iterations: int = 60,
        min_partition_kb: float | None = None,
        ram=None,
    ) -> None:
        if epsilon_ms <= 0:
            raise ValueError("epsilon_ms must be > 0")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self._epsilon_ms = epsilon_ms
        self._max_iterations = max_iterations
        self._min_partition_kb = min_partition_kb
        #: Optional RamConstraint applied inside the packer (footnote 4).
        self._ram = ram

    def run(self, instance: SchedulingInstance) -> CapacitySearchResult:
        packer_kwargs = {"ram": self._ram}
        if self._min_partition_kb is not None:
            packer_kwargs["min_partition_kb"] = self._min_partition_kb
        packer = GreedyPacker(instance, **packer_kwargs)

        lower, upper = capacity_bounds(instance)
        best: PackingResult | None = None
        iterations = 0

        # Packing at the upper bound must succeed; it seeds `best`.  A
        # hair of slack keeps accumulated rounding error from rejecting
        # the exact-fit packing.
        seed = packer.pack(upper * (1.0 + 1e-9) + 1e-9)
        iterations += 1
        if not seed.feasible:
            raise InfeasibleScheduleError(
                "greedy packing failed even at the upper-bound capacity "
                f"({upper:.3f} ms); the instance is malformed or an atomic "
                "job violates a resource constraint on every phone"
            )
        best = seed

        while upper - lower > self._epsilon_ms and iterations < self._max_iterations:
            mid = (lower + upper) / 2.0
            attempt = packer.pack(mid)
            iterations += 1
            if attempt.feasible:
                upper = mid
                best = attempt
            else:
                lower = mid

        assert best is not None and best.schedule is not None
        bounds = capacity_bounds(instance)
        return CapacitySearchResult(
            schedule=best.schedule,
            capacity_ms=best.capacity_ms,
            max_height_ms=best.max_height_ms,
            lower_bound_ms=bounds[0],
            upper_bound_ms=bounds[1],
            iterations=iterations,
        )
