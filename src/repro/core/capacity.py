"""Binary search over bin capacity (Section 5, "Our Solution").

Algorithm 1 answers *"can everything be packed with capacity C?"*; this
module finds the smallest such ``C``:

* **Upper bound** — all items stacked on the *worst* bin: the maximum
  over phones of the total Equation-1 cost of running every job whole on
  that phone.  Packing at this capacity always succeeds (one bin can
  hold everything).
* **Lower bound** — the paper's "magical bin" with the aggregate
  processing capability and aggregate bandwidth of the whole fleet and
  no executable-shipping cost: job ``j`` is processed at the aggregate
  rate ``sum_i 1 / (b_i + c_ij)`` KB per millisecond, so the bound is
  ``sum_j L_j / sum_i 1/(b_i + c_ij)``.
* Bisect until the bracket is narrower than ``epsilon_ms``, keeping the
  schedule from the smallest feasible capacity seen.

Hot-path structure
------------------
Each probe of the bisection is a full Algorithm-1 pack, so this module
works to issue as few real packs as possible *without changing the
bisection trajectory* — the sequence of (midpoint, feasible?) decisions,
and therefore the final schedule, is bit-identical to the naive
pack-every-probe search:

* **cached bounds** — the (lower, upper) bracket comes from
  :meth:`SchedulingInstance.capacity_bounds`, computed once per
  instance instead of twice per search (and once more per caller);
* **infeasibility certificates** — two conservative floors are computed
  once per search: the *single-placement floor* (some job's cheapest
  possible first placement exceeds ``C`` on every phone) and the
  *volume floor* (the fleet-wide work implied by the jobs exceeds
  ``|P| * C``).  A midpoint below either floor is provably infeasible,
  so the probe is resolved without packing.  The floors carry a
  1e-6 safety margin that dwarfs both the packer's 1e-9 fit tolerance
  and any summation-order effects, so a certificate can never fire on a
  capacity the packer would have accepted — the bracket evolves exactly
  as if the pack had run and failed;
* **warm-started probes** — at a rescheduling instant the previous
  instant's feasible capacity is a strong hint.  ``run(..,
  warm_hint_ms=C1)`` verifies the hint with one real pack; if it is
  feasible, greedy-packing feasibility being monotone in capacity means
  every probe at ``mid >= C1`` may be *assumed* feasible without
  packing.  The bisection still walks the exact cold midpoint grid
  (assumed probes update the bracket exactly as a feasible pack would),
  and the final capacity is materialised with one real pack at the
  bit-identical float the cold search would have converged to — so the
  returned schedule matches the cold schedule byte for byte while
  issuing a fraction of the packs.  If materialisation ever failed
  (monotonicity violated), the search falls back to a full cold run,
  trading the saved packs back for unconditional correctness.

``iterations`` (and its alias ``packer_passes``) counts *real* packs,
preserving the historical meaning; ``bisection_steps`` counts bracket
updates and is what ``max_iterations`` caps, so certificate skips and
assumed probes cannot lengthen the trajectory relative to the original
implementation.
"""

from __future__ import annotations

from dataclasses import dataclass

from .instance import SchedulingInstance
from .model import MIN_PARTITION_KB
from .packing import GreedyPacker, PackingResult
from .schedule import InfeasibleScheduleError, Schedule

__all__ = ["CapacitySearch", "CapacitySearchResult", "capacity_bounds"]

#: Relative/absolute safety margin for the infeasibility certificates.
#: Must comfortably exceed the packer's 1e-9 exact-fit tolerance.
_CERT_MARGIN = 1e-6


def capacity_bounds(instance: SchedulingInstance) -> tuple[float, float]:
    """Return the (lower, upper) capacity bracket for the binary search.

    Delegates to the instance's cached computation — repeated calls
    (the search itself, benchmarks, diagnostics) cost a tuple read.
    """
    return instance.capacity_bounds()


def _certificate_floors(
    instance: SchedulingInstance, min_partition_kb: float
) -> tuple[float, float]:
    """(single-placement floor, total volume) for infeasibility proofs.

    *Single-placement floor*: for each job, the cheapest possible first
    placement on any phone — the executable plus the smallest partition
    the packer may create (``min(L_j, min_partition)`` for breakable
    jobs, the whole input for atomic jobs).  Every job must receive a
    first placement on some phone, so no capacity below the max over
    jobs of that minimum can be feasible.

    *Volume floor*: every KB of every job must be processed somewhere at
    no better than the fleet's best per-KB rate, and each executable
    shipped at least once at no better than the best ``b_i``; the sum of
    bin heights cannot exceed ``|P| * C``, so capacities below
    ``volume / |P|`` are infeasible.

    Both floors ignore RAM constraints, which only make packing harder —
    the proofs stay valid.  numpy is safe here (unlike in the bounds)
    because the certificates' 1e-6 margin absorbs any summation-order
    difference.
    """
    import numpy as np

    b = np.asarray(instance.b_vector(), dtype=np.float64)
    per_kb = np.asarray(instance.per_kb_rows(), dtype=np.float64)
    exe = np.asarray([job.executable_kb for job in instance.jobs])
    load = np.asarray([job.input_kb for job in instance.jobs])
    first = np.asarray(
        [
            job.input_kb
            if job.is_atomic
            else min(job.input_kb, min_partition_kb)
            for job in instance.jobs
        ]
    )
    # placement[i, j] = E_j * b_i + x_j * (b_i + c_ij)
    placement = b[:, None] * exe[None, :] + per_kb * first[None, :]
    single_floor = float(placement.min(axis=0).max())
    volume = float((exe * b.min() + load * per_kb.min(axis=0)).sum())
    return single_floor, volume


@dataclass(frozen=True)
class CapacitySearchResult:
    """Outcome of the full capacity search."""

    schedule: Schedule
    capacity_ms: float
    max_height_ms: float
    lower_bound_ms: float
    upper_bound_ms: float
    #: Real Algorithm-1 packs issued (historical name; == packer_passes).
    iterations: int
    #: Real Algorithm-1 packs issued.
    packer_passes: int = 0
    #: Bracket updates walked (seed + bisection probes); what
    #: ``max_iterations`` caps.
    bisection_steps: int = 0
    #: Probes resolved by an infeasibility certificate without packing.
    shortcircuit_skips: int = 0
    #: Probes resolved by the warm-start monotonicity oracle.
    assumed_feasible: int = 0
    #: Whether a feasible warm hint steered this search.
    warm_start_used: bool = False


class CapacitySearch:
    """Finds the minimum feasible bin capacity via bisection.

    Parameters
    ----------
    epsilon_ms:
        Bisection stops once ``UB - LB`` falls below this (1 ms default —
        the resolution of the paper's cost model).
    max_iterations:
        Hard cap on bisection steps, a safety net against pathological
        brackets (60 steps resolve any double-precision bracket).
    """

    def __init__(
        self,
        *,
        epsilon_ms: float = 1.0,
        max_iterations: int = 60,
        min_partition_kb: float | None = None,
        ram=None,
    ) -> None:
        if epsilon_ms <= 0:
            raise ValueError("epsilon_ms must be > 0")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self._epsilon_ms = epsilon_ms
        self._max_iterations = max_iterations
        self._min_partition_kb = min_partition_kb
        #: Optional RamConstraint applied inside the packer (footnote 4).
        self._ram = ram

    def run(
        self,
        instance: SchedulingInstance,
        *,
        warm_hint_ms: float | None = None,
    ) -> CapacitySearchResult:
        """Search for the minimum feasible capacity.

        ``warm_hint_ms`` — a capacity believed feasible (typically the
        previous scheduling instant's result).  The hint is *verified*
        with a real pack before being trusted; an infeasible or useless
        hint degrades gracefully to the cold search.  The returned
        schedule is identical to the cold search's either way.
        """
        packer_kwargs = {"ram": self._ram}
        if self._min_partition_kb is not None:
            packer_kwargs["min_partition_kb"] = self._min_partition_kb
        packer = GreedyPacker(instance, **packer_kwargs)

        lower, upper = capacity_bounds(instance)
        single_floor, volume = _certificate_floors(
            instance,
            self._min_partition_kb
            if self._min_partition_kb is not None
            else MIN_PARTITION_KB,
        )
        n_phones = len(instance.phones)

        def provably_infeasible(cap: float) -> bool:
            padded = cap * (1.0 + _CERT_MARGIN) + _CERT_MARGIN
            return padded < single_floor or n_phones * padded < volume

        packs = 0
        steps = 0
        skips = 0
        assumed = 0

        # -- warm hint verification ----------------------------------------
        seed_capacity = upper * (1.0 + 1e-9) + 1e-9
        hint: float | None = None
        hint_result: PackingResult | None = None
        if warm_hint_ms is not None and 0.0 < warm_hint_ms < seed_capacity:
            attempt = packer.pack(warm_hint_ms)
            packs += 1
            if attempt.feasible:
                hint = warm_hint_ms
                hint_result = attempt
        warm_used = hint is not None

        # -- seed: packing at the upper bound must succeed -----------------
        # A hair of slack keeps accumulated rounding error from rejecting
        # the exact-fit packing.
        best: PackingResult | None = None
        best_capacity = seed_capacity
        steps += 1
        if hint is not None and seed_capacity >= hint:
            # Monotonicity: feasible at the hint => feasible at the seed.
            assumed += 1
        else:
            seed = packer.pack(seed_capacity)
            packs += 1
            if not seed.feasible:
                raise InfeasibleScheduleError(
                    "greedy packing failed even at the upper-bound capacity "
                    f"({upper:.3f} ms); the instance is malformed or an "
                    "atomic job violates a resource constraint on every "
                    "phone"
                )
            best = seed

        # -- bisection on the cold midpoint grid ---------------------------
        while upper - lower > self._epsilon_ms and steps < self._max_iterations:
            mid = (lower + upper) / 2.0
            steps += 1
            if provably_infeasible(mid):
                skips += 1
                lower = mid
                continue
            if hint is not None and mid >= hint:
                assumed += 1
                upper = mid
                best = None  # assumed feasible; materialised below if final
                best_capacity = mid
                continue
            attempt = packer.pack(mid)
            packs += 1
            if attempt.feasible:
                upper = mid
                best = attempt
                best_capacity = mid
            else:
                lower = mid

        # -- materialise an assumed-final capacity -------------------------
        if best is None:
            if hint_result is not None and best_capacity == hint:
                best = hint_result
            else:
                attempt = packer.pack(best_capacity)
                packs += 1
                if attempt.feasible:
                    best = attempt
                else:
                    # Monotonicity violated (never observed in practice):
                    # discard everything the oracle assumed and redo the
                    # search cold, which is unconditionally correct.
                    return self.run(instance)

        assert best.schedule is not None
        bounds = capacity_bounds(instance)
        return CapacitySearchResult(
            schedule=best.schedule,
            capacity_ms=best.capacity_ms,
            max_height_ms=best.max_height_ms,
            lower_bound_ms=bounds[0],
            upper_bound_ms=bounds[1],
            iterations=packs,
            packer_passes=packs,
            bisection_steps=steps,
            shortcircuit_skips=skips,
            assumed_feasible=assumed,
            warm_start_used=warm_used,
        )
