"""Algorithm 1: greedy packing for the complementary bin-packing problem.

The paper attacks the NP-hard makespan problem SCH through its
complementary bin-packing problem (CBP): pack all job inputs into at
most ``|P|`` bins (phones) of capacity ``C`` (milliseconds of predicted
work, Equation 1), minimising the maximum bin height.  This module
implements the inner loop — *can all items be packed with capacity
``C``?* — exactly as Algorithm 1 prescribes:

1. keep items sorted in decreasing order of remaining local execution
   time ``R_j * c_sj`` on the slowest phone ``s``;
2. repeatedly find the *first* (largest) item that fits in any opened
   bin and pack it into the minimum-height bin that accepts it,
   preferring to pack the item whole and otherwise packing the largest
   partition that fits;
3. when nothing fits, open the bin (phone) that would run the largest
   item with the smallest Equation-1 cost;
4. fail if items remain and no bin can be opened.

Cost accounting matches program SCH: a phone pays the executable
shipping cost ``E_j * b_i`` only for the *first* partition of job ``j``
it receives (``u_ij`` is an indicator variable).

Atomic jobs are never partitioned — they either fit whole or the
capacity is infeasible.  Breakable jobs are never split below
``MIN_PARTITION_KB`` (the cost model's own unit of account), which also
guarantees termination of the packing loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .instance import SchedulingInstance
from .model import MIN_PARTITION_KB, Job
from .schedule import Schedule, ScheduleBuilder

__all__ = ["GreedyPacker", "PackingResult"]


@dataclass(slots=True)
class _Item:
    """A job together with the input that is still unpacked."""

    job: Job
    remaining_kb: float
    #: Sort key: remaining execution time on the slowest phone.
    key_ms: float = field(default=0.0)

    @property
    def is_whole(self) -> bool:
        return math.isclose(self.remaining_kb, self.job.input_kb)


@dataclass(slots=True)
class _Bin:
    """One opened phone: its accumulated height and shipped executables."""

    phone_id: str
    height_ms: float = 0.0
    shipped_jobs: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class PackingResult:
    """Outcome of one packing attempt at a fixed capacity."""

    feasible: bool
    capacity_ms: float
    schedule: Schedule | None = None
    max_height_ms: float = 0.0
    opened_bins: int = 0


class GreedyPacker:
    """Runs Algorithm 1 at a fixed bin capacity.

    Parameters
    ----------
    instance:
        The scheduling instance (jobs, phones, ``b_i``, ``c_ij``).
    min_partition_kb:
        Smallest breakable-job partition the packer will create.
    """

    def __init__(
        self,
        instance: SchedulingInstance,
        *,
        min_partition_kb: float = MIN_PARTITION_KB,
        ram=None,
    ) -> None:
        if min_partition_kb <= 0:
            raise ValueError("min_partition_kb must be > 0")
        self._instance = instance
        self._min_partition_kb = min_partition_kb
        #: Optional RamConstraint (footnote 4: l_ij <= r_i).
        self._ram = ram
        slowest = instance.slowest_phone()
        self._slowest_id = slowest.phone_id

    # -- public API --------------------------------------------------------

    def pack(self, capacity_ms: float) -> PackingResult:
        """Attempt to pack every job within bins of ``capacity_ms``."""
        if capacity_ms <= 0:
            return PackingResult(feasible=False, capacity_ms=capacity_ms)

        instance = self._instance
        items = [
            _Item(job=job, remaining_kb=job.input_kb) for job in instance.jobs
        ]
        self._resort(items)
        bins: list[_Bin] = []
        unopened = [phone.phone_id for phone in instance.phones]
        builder = ScheduleBuilder()

        while items:
            placed = self._pack_into_opened(items, bins, builder, capacity_ms)
            if placed:
                continue
            if not unopened:
                return PackingResult(feasible=False, capacity_ms=capacity_ms)
            opened = self._open_bin_for(items[0], unopened, bins, capacity_ms)
            if opened is None:
                return PackingResult(feasible=False, capacity_ms=capacity_ms)
            # Pack the largest item into the bin just opened.
            if not self._pack_item_into_bin(
                items, 0, opened, builder, capacity_ms
            ):
                # The bin was chosen because the item fits there, so this
                # only happens if no unopened bin accepts the item at all.
                return PackingResult(feasible=False, capacity_ms=capacity_ms)

        max_height = max((b.height_ms for b in bins), default=0.0)
        return PackingResult(
            feasible=True,
            capacity_ms=capacity_ms,
            schedule=builder.build(),
            max_height_ms=max_height,
            opened_bins=len(bins),
        )

    # -- internals -----------------------------------------------------------

    def _resort(self, items: list[_Item]) -> None:
        """Sort items by decreasing remaining execution time on phone s."""
        for item in items:
            c_s = self._instance.c(self._slowest_id, item.job.job_id)
            item.key_ms = item.remaining_kb * c_s
        items.sort(key=lambda item: (-item.key_ms, item.job.job_id))

    def _exe_cost(self, bin_: _Bin, job: Job) -> float:
        """Executable shipping cost, zero if this bin already holds it."""
        if job.job_id in bin_.shipped_jobs:
            return 0.0
        return job.executable_kb * self._instance.b(bin_.phone_id)

    def _per_kb(self, phone_id: str, job: Job) -> float:
        return self._instance.b(phone_id) + self._instance.c(phone_id, job.job_id)

    def _fit_kb(self, bin_: _Bin, item: _Item, capacity_ms: float) -> float:
        """Largest partition of ``item`` that fits in ``bin_`` (0 if none).

        For atomic items the answer is all-or-nothing.  For breakable
        items, the returned size is capped at the remaining input and
        floored at the minimum partition granularity.
        """
        job = item.job
        headroom = capacity_ms - bin_.height_ms - self._exe_cost(bin_, job)
        if headroom <= 0:
            return 0.0
        per_kb = self._per_kb(bin_.phone_id, job)
        if per_kb <= 0:  # free transfer and compute: everything fits
            max_kb = item.remaining_kb
        else:
            max_kb = headroom / per_kb
        if self._ram is not None:
            # Footnote 4: a partition must fit in the phone's memory.
            max_kb = self._ram.clamp_fit(bin_.phone_id, max_kb)
            if job.is_atomic and max_kb < item.remaining_kb:
                return 0.0
        # Tolerate one part in 10^9 so exact-fit capacities (e.g. the
        # search's upper bound) are not rejected by rounding error.
        if max_kb >= item.remaining_kb * (1.0 - 1e-9):
            return item.remaining_kb
        if job.is_atomic:
            return 0.0
        if max_kb < self._min_partition_kb:
            return 0.0
        # Never leave a sliver smaller than the granularity behind.
        if item.remaining_kb - max_kb < self._min_partition_kb:
            max_kb = item.remaining_kb - self._min_partition_kb
            if max_kb < self._min_partition_kb:
                return 0.0
        return max_kb

    def _pack_into_opened(
        self,
        items: list[_Item],
        bins: list[_Bin],
        builder: ScheduleBuilder,
        capacity_ms: float,
    ) -> bool:
        """Line 4: first item in L that fits in any opened bin.

        Packs it into the minimum-height bin that accepts it and returns
        True; returns False when no (item, opened bin) pair fits.
        """
        if not bins:
            return False
        for index, item in enumerate(items):
            candidates = [
                bin_
                for bin_ in bins
                if self._fit_kb(bin_, item, capacity_ms) > 0
            ]
            if not candidates:
                continue
            target = min(candidates, key=lambda b: (b.height_ms, b.phone_id))
            return self._pack_item_into_bin(
                items, index, target, builder, capacity_ms
            )
        return False

    def _pack_item_into_bin(
        self,
        items: list[_Item],
        index: int,
        bin_: _Bin,
        builder: ScheduleBuilder,
        capacity_ms: float,
    ) -> bool:
        """Pack items[index] (whole if possible) into ``bin_``."""
        item = items[index]
        job = item.job
        size_kb = self._fit_kb(bin_, item, capacity_ms)
        if size_kb <= 0:
            return False
        packed_whole_input = item.is_whole and math.isclose(
            size_kb, item.remaining_kb
        )
        cost = self._exe_cost(bin_, job) + size_kb * self._per_kb(
            bin_.phone_id, job
        )
        bin_.height_ms += cost
        bin_.shipped_jobs.add(job.job_id)
        builder.place(
            bin_.phone_id,
            job.job_id,
            job.task,
            size_kb,
            whole=packed_whole_input,
        )
        if math.isclose(size_kb, item.remaining_kb):
            del items[index]  # line 8: packed as a whole (of what remained)
        else:
            item.remaining_kb -= size_kb  # line 10: reinsert remainder
            self._resort(items)
        return True

    def _open_bin_for(
        self,
        item: _Item,
        unopened: list[str],
        bins: list[_Bin],
        capacity_ms: float,
    ) -> _Bin | None:
        """Line 15: open the best unopened bin for the largest item.

        The best bin is the phone that would run the item with the
        minimum Equation-1 cost.  If the item does not fit there (not
        even a minimum partition), the remaining unopened bins are tried
        in increasing order of that cost before giving up.
        """
        job = item.job

        def eq1_cost(phone_id: str) -> float:
            return self._instance.cost(phone_id, job.job_id, item.remaining_kb)

        for phone_id in sorted(unopened, key=lambda pid: (eq1_cost(pid), pid)):
            candidate = _Bin(phone_id=phone_id)
            if self._fit_kb(candidate, item, capacity_ms) > 0:
                unopened.remove(phone_id)
                bins.append(candidate)
                return candidate
        return None
