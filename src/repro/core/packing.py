"""Algorithm 1: greedy packing for the complementary bin-packing problem.

The paper attacks the NP-hard makespan problem SCH through its
complementary bin-packing problem (CBP): pack all job inputs into at
most ``|P|`` bins (phones) of capacity ``C`` (milliseconds of predicted
work, Equation 1), minimising the maximum bin height.  This module
implements the inner loop — *can all items be packed with capacity
``C``?* — exactly as Algorithm 1 prescribes:

1. keep items sorted in decreasing order of remaining local execution
   time ``R_j * c_sj`` on the slowest phone ``s``;
2. repeatedly find the *first* (largest) item that fits in any opened
   bin and pack it into the minimum-height bin that accepts it,
   preferring to pack the item whole and otherwise packing the largest
   partition that fits;
3. when nothing fits, open the bin (phone) that would run the largest
   item with the smallest Equation-1 cost;
4. fail if items remain and no bin can be opened.

Cost accounting matches program SCH: a phone pays the executable
shipping cost ``E_j * b_i`` only for the *first* partition of job ``j``
it receives (``u_ij`` is an indicator variable).

Atomic jobs are never partitioned — they either fit whole or the
capacity is infeasible.  Breakable jobs are never split below
``MIN_PARTITION_KB`` (the cost model's own unit of account), which also
guarantees termination of the packing loop.

Hot-path structure
------------------
The placement loop is the innermost loop of the whole system — the
capacity bisection calls :meth:`GreedyPacker.pack` dozens of times per
scheduling instant — so this implementation avoids the naive
O(items × bins) rescan per placement without changing a single packing
decision:

* **dense costs** — ``b_i``, ``c_sj`` and ``b_i + c_ij`` come from the
  instance's position-indexed arrays, not per-call dict chains;
* **min-height bin index** — opened bins are kept sorted by
  ``(height, phone_id)``; scanning that order and taking the *first*
  bin that accepts an item yields exactly the minimum-height fitting
  bin Algorithm 1 asks for, usually after probing one or two bins;
* **incremental item keys** — only the item just split changes its sort
  key, so it alone is re-inserted (``bisect.insort``) instead of
  re-keying and re-sorting the whole list;
* **failure marks** — once an item fails to fit in every opened bin it
  is skipped until something that could change that verdict happens.
  Bin heights only ever grow, and a bin's shipped-executable set only
  affects the fit of its own job (whose mark is cleared the moment the
  item shrinks), so the only event that can turn "fits nowhere" into
  "fits somewhere" is a *new* bin opening — marks are therefore epoch
  stamps invalidated by bin openings.

``tests/core/test_golden_schedule.py`` pins this packer to the frozen
pre-optimisation reference (:mod:`repro.core._reference`) schedule for
byte-for-byte equality.
"""

from __future__ import annotations

import math
import time
from bisect import bisect_left, insort
from dataclasses import dataclass, field

from .instance import SchedulingInstance
from .model import MIN_PARTITION_KB, Job
from .schedule import Schedule, ScheduleBuilder

__all__ = ["GreedyPacker", "PackingResult"]


@dataclass(slots=True)
class _Item:
    """A job together with the input that is still unpacked."""

    job: Job
    job_pos: int
    remaining_kb: float
    #: Sort key: remaining execution time on the slowest phone.
    key_ms: float = field(default=0.0)
    #: Epoch (bin-opening count) at which this item last failed to fit
    #: in every opened bin; -1 means "unknown, must be probed".
    failed_epoch: int = field(default=-1)

    @property
    def is_whole(self) -> bool:
        return math.isclose(self.remaining_kb, self.job.input_kb)


@dataclass(slots=True)
class _Bin:
    """One opened phone: its accumulated height and shipped executables."""

    phone_id: str
    phone_pos: int
    height_ms: float = 0.0
    shipped_jobs: set[str] = field(default_factory=set)


@dataclass(frozen=True)
class PackingResult:
    """Outcome of one packing attempt at a fixed capacity."""

    feasible: bool
    capacity_ms: float
    schedule: Schedule | None = None
    max_height_ms: float = 0.0
    opened_bins: int = 0


def _item_key(item: _Item) -> tuple[float, str]:
    return (-item.key_ms, item.job.job_id)


def _bin_key(bin_: _Bin) -> tuple[float, str]:
    return (bin_.height_ms, bin_.phone_id)


class GreedyPacker:
    """Runs Algorithm 1 at a fixed bin capacity.

    Parameters
    ----------
    instance:
        The scheduling instance (jobs, phones, ``b_i``, ``c_ij``).
    min_partition_kb:
        Smallest breakable-job partition the packer will create.
    """

    def __init__(
        self,
        instance: SchedulingInstance,
        *,
        min_partition_kb: float = MIN_PARTITION_KB,
        ram=None,
    ) -> None:
        if min_partition_kb <= 0:
            raise ValueError("min_partition_kb must be > 0")
        self._instance = instance
        self._min_partition_kb = min_partition_kb
        #: Always-on pack statistics: plain attribute updates cheap
        #: enough for the kernel hot path (two clock reads per pack,
        #: against packs that cost fractions of a millisecond at
        #: minimum).  The capacity search forwards these into the
        #: telemetry registry when a facade is armed.
        self.packs_issued = 0
        self.last_pack_wall_ms = 0.0
        self.total_pack_wall_ms = 0.0
        self.last_pack_feasible = False
        self.last_pack_bins = 0
        #: Optional RamConstraint (footnote 4: l_ij <= r_i).
        self._ram = ram
        self._slowest_id = instance.slowest_phone().phone_id
        # Dense, position-indexed views shared with the instance.
        self._b = instance.b_vector()
        self._per_kb_rows = instance.per_kb_rows()
        self._c_slowest = instance.c_row(
            instance.phone_position(self._slowest_id)
        )
        # Fleet-wide best (smallest) per-KB rate per job.  Taking a
        # minimum involves no arithmetic, so numpy is exact here; the
        # values feed the *conservative* height cutoffs below, which
        # only ever skip bins that would certainly reject an item.
        self._min_per_kb = instance.per_kb_matrix().min(axis=0).tolist()
        # The cheapest placement any item could ever need: the smallest
        # first-partition at the fleet's best rate.  Once every opened
        # bin is fuller than (capacity - this), no placement can happen.
        self._universal_min_need = min(
            (
                min(job.input_kb, min_partition_kb)
                * self._min_per_kb[pos]
                * (1.0 - 1e-9)
                for pos, job in enumerate(instance.jobs)
            ),
            default=0.0,
        )

    # -- public API --------------------------------------------------------

    def pack(self, capacity_ms: float) -> PackingResult:
        """Attempt to pack every job within bins of ``capacity_ms``."""
        started = time.perf_counter()
        result = self._pack_impl(capacity_ms)
        self._note_pack(result, started)
        return result

    def _note_pack(self, result: PackingResult, started_s: float) -> None:
        wall_ms = (time.perf_counter() - started_s) * 1000.0
        self.packs_issued += 1
        self.last_pack_wall_ms = wall_ms
        self.total_pack_wall_ms += wall_ms
        self.last_pack_feasible = result.feasible
        self.last_pack_bins = result.opened_bins

    def _pack_impl(self, capacity_ms: float) -> PackingResult:
        if capacity_ms <= 0:
            return PackingResult(feasible=False, capacity_ms=capacity_ms)

        instance = self._instance
        c_s = self._c_slowest
        items = [
            _Item(
                job=job,
                job_pos=pos,
                remaining_kb=job.input_kb,
                key_ms=job.input_kb * c_s[pos],
            )
            for pos, job in enumerate(instance.jobs)
        ]
        items.sort(key=_item_key)
        #: Opened bins, always sorted by (height_ms, phone_id).
        bins: list[_Bin] = []
        unopened = [
            (phone.phone_id, pos) for pos, phone in enumerate(instance.phones)
        ]
        #: Bin-opening epoch; bumping it invalidates all failure marks.
        epoch = 0
        builder = ScheduleBuilder()

        while items:
            if self._pack_into_opened(items, bins, epoch, builder, capacity_ms):
                continue
            if not unopened:
                return PackingResult(feasible=False, capacity_ms=capacity_ms)
            opened = self._open_bin_for(items[0], unopened, bins, capacity_ms)
            if opened is None:
                return PackingResult(feasible=False, capacity_ms=capacity_ms)
            epoch += 1
            # Pack the largest item into the bin just opened.
            if not self._pack_item_into_bin(
                items, 0, opened, bins, builder, capacity_ms
            ):
                # The bin was chosen because the item fits there, so this
                # only happens if no unopened bin accepts the item at all.
                return PackingResult(feasible=False, capacity_ms=capacity_ms)

        max_height = max((b.height_ms for b in bins), default=0.0)
        return PackingResult(
            feasible=True,
            capacity_ms=capacity_ms,
            schedule=builder.build(),
            max_height_ms=max_height,
            opened_bins=len(bins),
        )

    # -- internals -----------------------------------------------------------

    def _exe_cost(self, bin_: _Bin, job: Job) -> float:
        """Executable shipping cost, zero if this bin already holds it."""
        if job.job_id in bin_.shipped_jobs:
            return 0.0
        return job.executable_kb * self._b[bin_.phone_pos]

    def _fit_kb(self, bin_: _Bin, item: _Item, capacity_ms: float) -> float:
        """Largest partition of ``item`` that fits in ``bin_`` (0 if none).

        For atomic items the answer is all-or-nothing.  For breakable
        items, the returned size is capped at the remaining input and
        floored at the minimum partition granularity.
        """
        job = item.job
        headroom = capacity_ms - bin_.height_ms - self._exe_cost(bin_, job)
        if headroom <= 0:
            return 0.0
        per_kb = self._per_kb_rows[bin_.phone_pos][item.job_pos]
        if per_kb <= 0:  # free transfer and compute: everything fits
            max_kb = item.remaining_kb
        else:
            max_kb = headroom / per_kb
        if self._ram is not None:
            # Footnote 4: a partition must fit in the phone's memory.
            max_kb = self._ram.clamp_fit(bin_.phone_id, max_kb)
            if job.is_atomic and max_kb < item.remaining_kb:
                return 0.0
        # Tolerate one part in 10^9 so exact-fit capacities (e.g. the
        # search's upper bound) are not rejected by rounding error.
        if max_kb >= item.remaining_kb * (1.0 - 1e-9):
            return item.remaining_kb
        if job.is_atomic:
            return 0.0
        if max_kb < self._min_partition_kb:
            return 0.0
        # Never leave a sliver smaller than the granularity behind.
        if item.remaining_kb - max_kb < self._min_partition_kb:
            max_kb = item.remaining_kb - self._min_partition_kb
            if max_kb < self._min_partition_kb:
                return 0.0
        return max_kb

    def _pack_into_opened(
        self,
        items: list[_Item],
        bins: list[_Bin],
        epoch: int,
        builder: ScheduleBuilder,
        capacity_ms: float,
    ) -> bool:
        """Line 4: first item in L that fits in any opened bin.

        Packs it into the minimum-height bin that accepts it and returns
        True; returns False when no (item, opened bin) pair fits.  Items
        whose failure mark is current are skipped without re-probing —
        nothing that happened since can have made them fit (see module
        docstring).  ``bins`` is sorted by ``(height, phone_id)``, so
        the first bin that accepts an item *is* Algorithm 1's
        minimum-height fitting bin.
        """
        if not bins:
            return False
        # Global cutoff: the emptiest bin cannot host even the cheapest
        # conceivable placement — nothing fits, skip the whole scan.
        if bins[0].height_ms > capacity_ms - self._universal_min_need:
            return False
        min_partition = self._min_partition_kb
        min_per_kb = self._min_per_kb
        for index, item in enumerate(items):
            if item.failed_epoch == epoch:
                continue
            # Per-item cutoff: accepting this item needs headroom of at
            # least its smallest legal placement at the fleet's best
            # rate (executable cost >= 0 ignored — conservative).  Bins
            # are sorted by height, so past the cutoff every remaining
            # bin certainly rejects and the old full scan would have
            # returned no candidates for them anyway.
            x = item.remaining_kb
            if not item.job.is_atomic and x > min_partition:
                x = min_partition
            h_max = capacity_ms - x * min_per_kb[item.job_pos] * (1.0 - 1e-9)
            fitted = None
            for bin_ in bins:
                if bin_.height_ms > h_max:
                    break
                if self._fit_kb(bin_, item, capacity_ms) > 0:
                    fitted = bin_
                    break
            if fitted is not None:
                return self._pack_item_into_bin(
                    items, index, fitted, bins, builder, capacity_ms
                )
            item.failed_epoch = epoch
        return False

    def _pack_item_into_bin(
        self,
        items: list[_Item],
        index: int,
        bin_: _Bin,
        bins: list[_Bin],
        builder: ScheduleBuilder,
        capacity_ms: float,
    ) -> bool:
        """Pack items[index] (whole if possible) into ``bin_``."""
        item = items[index]
        job = item.job
        size_kb = self._fit_kb(bin_, item, capacity_ms)
        if size_kb <= 0:
            return False
        packed_whole_input = item.is_whole and math.isclose(
            size_kb, item.remaining_kb
        )
        cost = self._exe_cost(bin_, job) + size_kb * (
            self._per_kb_rows[bin_.phone_pos][item.job_pos]
        )
        # The bin's sort key is about to change: pull it out of the
        # sorted index and re-insert it at its new height.  Keys are
        # unique (phone_id breaks height ties), so bisect finds the bin.
        bin_index = bisect_left(bins, _bin_key(bin_), key=_bin_key)
        del bins[bin_index]
        bin_.height_ms += cost
        bin_.shipped_jobs.add(job.job_id)
        insort(bins, bin_, key=_bin_key)
        builder.place(
            bin_.phone_id,
            job.job_id,
            job.task,
            size_kb,
            whole=packed_whole_input,
        )
        if math.isclose(size_kb, item.remaining_kb):
            del items[index]  # line 8: packed as a whole (of what remained)
        else:
            # Line 10: reinsert the remainder.  Only this item's key
            # changed, so one insort restores the exact order a full
            # re-sort would produce (keys are unique — job_id ties).
            del items[index]
            item.remaining_kb -= size_kb
            item.key_ms = item.remaining_kb * self._c_slowest[item.job_pos]
            item.failed_epoch = -1
            insort(items, item, key=_item_key)
        return True

    def _open_bin_for(
        self,
        item: _Item,
        unopened: list[tuple[str, int]],
        bins: list[_Bin],
        capacity_ms: float,
    ) -> _Bin | None:
        """Line 15: open the best unopened bin for the largest item.

        The best bin is the phone that would run the item with the
        minimum Equation-1 cost.  If the item does not fit there (not
        even a minimum partition), the remaining unopened bins are tried
        in increasing order of that cost before giving up.
        """
        job = item.job
        job_pos = item.job_pos
        remaining = item.remaining_kb
        b = self._b
        per_kb_rows = self._per_kb_rows

        def eq1_cost(entry: tuple[str, int]) -> tuple[float, str]:
            phone_id, pos = entry
            return (
                job.executable_kb * b[pos]
                + remaining * per_kb_rows[pos][job_pos],
                phone_id,
            )

        # Fast path: the cheapest phone almost always accepts a freshly
        # opened bin, and min() over the (cost, phone_id) key picks the
        # same phone the full sorted walk would try first.
        cheapest = min(unopened, key=eq1_cost)
        candidate = _Bin(phone_id=cheapest[0], phone_pos=cheapest[1])
        if self._fit_kb(candidate, item, capacity_ms) > 0:
            unopened.remove(cheapest)
            insort(bins, candidate, key=_bin_key)
            return candidate

        for entry in sorted(unopened, key=eq1_cost):
            if entry == cheapest:
                continue
            phone_id, pos = entry
            candidate = _Bin(phone_id=phone_id, phone_pos=pos)
            if self._fit_kb(candidate, item, capacity_ms) > 0:
                unopened.remove(entry)
                insort(bins, candidate, key=_bin_key)
                return candidate
        return None
