"""The two "simple practical schedulers" CWC is evaluated against.

Section 6 ("Comparison with simple practical schedulers") describes two
alternatives implemented at the central server:

* :class:`EqualSplitScheduler` — every breakable job is split into
  ``|P|`` equal pieces, one per phone, ignoring the phones' differing
  bandwidths and CPU speeds; atomic jobs are handed out round-robin.
* :class:`RoundRobinScheduler` — every job (breakable or atomic) is
  assigned whole to phones in round-robin order.

In the paper's prototype run the greedy scheduler finishes in ≈1100 s
versus 1720 s (equal split) and 1805 s (round robin) — about 1.6×
faster — while also producing far fewer input partitions.
"""

from __future__ import annotations

from .instance import SchedulingInstance
from .model import MIN_PARTITION_KB
from .schedule import Schedule, ScheduleBuilder

__all__ = ["EqualSplitScheduler", "RoundRobinScheduler"]


class EqualSplitScheduler:
    """Split breakable jobs |P|-ways; round-robin the atomic jobs.

    The split is oblivious: it does not look at ``b_i`` or ``c_ij`` at
    all, which is precisely the failure mode the paper's Figure 5
    experiment demonstrates.  When a job is too small to give every
    phone at least the minimum partition, it is split across as many
    phones as the granularity allows.
    """

    name = "equal-split"

    def __init__(self, *, min_partition_kb: float = MIN_PARTITION_KB) -> None:
        if min_partition_kb <= 0:
            raise ValueError("min_partition_kb must be > 0")
        self._min_partition_kb = min_partition_kb

    def schedule(self, instance: SchedulingInstance) -> Schedule:
        builder = ScheduleBuilder()
        phones = instance.phones
        rr_index = 0
        for job in instance.jobs:
            if job.is_atomic:
                phone = phones[rr_index % len(phones)]
                rr_index += 1
                builder.place(
                    phone.phone_id, job.job_id, job.task, job.input_kb, whole=True
                )
                continue
            pieces = min(
                len(phones), max(1, int(job.input_kb // self._min_partition_kb))
            )
            if pieces == 1:
                phone = phones[rr_index % len(phones)]
                rr_index += 1
                builder.place(
                    phone.phone_id, job.job_id, job.task, job.input_kb, whole=True
                )
                continue
            share = job.input_kb / pieces
            remaining = job.input_kb
            for i in range(pieces):
                size = share if i < pieces - 1 else remaining
                builder.place(
                    phones[i].phone_id, job.job_id, job.task, size, whole=False
                )
                remaining -= share
        return builder.build()


class RoundRobinScheduler:
    """Assign every job whole, cycling through the phones in order."""

    name = "round-robin"

    def schedule(self, instance: SchedulingInstance) -> Schedule:
        builder = ScheduleBuilder()
        phones = instance.phones
        for index, job in enumerate(instance.jobs):
            phone = phones[index % len(phones)]
            builder.place(
                phone.phone_id, job.job_id, job.task, job.input_kb, whole=True
            )
        return builder.build()
