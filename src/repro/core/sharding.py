"""Sharded pod-parallel scheduling: partition, solve, coordinate.

The monolithic :class:`~repro.core.greedy.CwcScheduler` solves one
global capacity search per round, which couples fleet size to
single-solve cost.  :class:`ShardedScheduler` decouples them:

1. **Partition** the fleet into pods (round-robin by phone position —
   :func:`repro.core.pod.partition_phones`);
2. **Split** the jobs across pods with one of three policies
   (``pod_assign=``):

   * ``'lp'`` — solve the pod-aggregated LP relaxation
     (:func:`repro.core.lp_bound.solve_pod_relaxed_makespan`) and send
     each job to the pod holding the largest fractional allocation
     ``l_pj``; the LP optimum doubles as the certification floor;
   * ``'greedy'`` (default) — longest-processing-time-first against
     per-pod estimated work ``E_j * bmin_p + L_j / agg_pj`` (the job's
     magical-bin time inside the pod) — the dual-guided balance the
     LP's load constraints price, without an LP solve per round;
   * ``'hash'`` — ``crc32(job_id) % pods``: stateless, splitter-free
     placement for comparison (and ``PYTHONHASHSEED``-independent);

3. **Solve** each pod's sub-instance with the existing kernels — on a
   fork process pool when CPUs allow (workers attach the full cost
   matrix through :mod:`repro.core.shm` and slice their pod's rows),
   serially otherwise, with identical results either way;
4. **Coordinate** with a cheap global capacity search over the
   per-pod converged capacities: the global capacity is their max, and
   bounded job-migration repair rounds move one job at a time from the
   argmax pod toward the argmin pod, re-solving only those two pods
   and keeping the move only when the global capacity improves.

Certification: the pod-LP optimum ``T_pod`` is a valid lower bound on
the optimal makespan of the *full* instance (machines were only ever
sped up — see :mod:`repro.core.lp_bound`), giving the sandwich::

    T_pod  <=  T_optimal  <=  T_sharded  <=  shard_bound_ratio * T_pod

``shard_bound_ratio = T_sharded / T_pod`` is reported on every sharded
result (and recorded in ``BENCH_scheduler.json``); the differential
harness asserts it stays within a bounded factor of the monolithic
schedule's own ratio.

With ``pods=1`` (or a fleet too small to cut) the scheduler *is* the
monolithic one: it delegates to an inner :class:`CwcScheduler` built
with identical knobs, so schedules are byte-identical by construction
— the property the CI ``sharded-parity`` job locks in.
"""

from __future__ import annotations

import time
import zlib
from dataclasses import dataclass

import numpy as np

from ..obs.telemetry import NULL_TELEMETRY
from ..obs.tracing import maybe_span
from .capacity import CapacitySearch, _shared_probe_payload
from .greedy import CwcScheduler, SchedulingStats
from .instance import SchedulingInstance
from .pod import (
    PodSolveReport,
    PodSpec,
    assemble_schedule,
    default_pod_workers,
    partition_phones,
    pod_rate_tables,
    resolve_pod_count,
    solve_pod,
)
from .schedule import Schedule

__all__ = ["ShardedScheduler", "ShardedSearchResult"]

_POD_ASSIGN_POLICIES = ("lp", "greedy", "hash")

#: A repair round only fires when the capacity spread justifies two
#: extra pod solves.
_REBALANCE_MIN_GAP = 1.05


@dataclass(frozen=True)
class ShardedSearchResult:
    """Outcome of one sharded scheduling round.

    Field-compatible with :class:`~repro.core.capacity.
    CapacitySearchResult` (so :class:`~repro.core.greedy.
    SchedulingStats` and ``RoundRecord`` consume it unchanged), plus
    the sharding diagnostics.
    """

    schedule: Schedule
    #: Global capacity: max over the pods' converged capacities.
    capacity_ms: float
    #: Global makespan: max over the pods' tallest bins.
    max_height_ms: float
    lower_bound_ms: float
    upper_bound_ms: float
    iterations: int
    packer_passes: int = 0
    bisection_steps: int = 0
    shortcircuit_skips: int = 0
    assumed_feasible: int = 0
    warm_start_used: bool = False
    kernel: str = "python"
    speculative_packs: int = 0
    batch_width: int = 0
    probe_worker_utilisation: float = 1.0
    #: Tracing-only diagnostics (see CapacitySearchResult); pods probe
    #: serially, so sharded rounds only carry the monolithic
    #: delegate's numbers.
    probe_wait_ms: float = 0.0
    probe_exec_ms: float = 0.0
    #: Resolved pod count this round (1 = monolithic delegation).
    pods: int = 1
    #: Job-to-pod policy the round used.
    pod_assign: str = "none"
    #: Slowest single pod solve (the critical path under a pool).
    pod_solve_ms_max: float = 0.0
    #: Total pod solve time (the serial-equivalent cost).
    pod_solve_ms_sum: float = 0.0
    #: ``max_height_ms`` over the certification floor (pod-LP optimum
    #: when available, else the magical-bin bound); 0.0 if no floor.
    shard_bound_ratio: float = 0.0
    #: Pod-LP optimum when it was solved this round, else ``None``.
    lp_floor_ms: float | None = None
    #: Job-migration repair rounds the global search accepted.
    rebalance_moves: int = 0
    #: Per-pod diagnostics, pod-index order.
    pod_reports: tuple[PodSolveReport, ...] = ()


class ShardedScheduler:
    """Pod-parallel CWC scheduling behind the ``Scheduler`` protocol.

    Parameters
    ----------
    pods:
        Pod count, or ``'auto'`` to target one pod per available CPU
        (``REPRO_CPUS`` honoured) with a 4-phone-per-pod floor.  The
        count is clamped to the fleet size each round; whenever it
        resolves to 1 the round delegates to the inner monolithic
        :class:`~repro.core.greedy.CwcScheduler` (byte-identical
        schedules).
    pod_assign:
        Job-to-pod splitter: ``'lp'``, ``'greedy'`` (default), or
        ``'hash'`` (see the module docstring).
    pod_workers:
        Process-pool size for concurrent pod solves; ``'auto'``
        (default) sizes from :func:`~repro.core.capacity.
        available_cpus` and stays in-process on single-CPU hosts.
        ``None``/1 forces the serial path.  Results are identical
        either way.
    rebalance_rounds:
        Max job-migration repair rounds of the global capacity search
        (default 1; 0 disables repair).
    certify:
        Solve the pod-aggregated LP each sharded round to certify the
        makespan (``shard_bound_ratio``).  Default ``True``;
        ``pod_assign='lp'`` gets the floor for free either way.
    epsilon_ms / min_partition_kb / max_iterations / ram / warm_start /
    kernel / shared_mem / telemetry:
        As on :class:`~repro.core.greedy.CwcScheduler`; they configure
        both the inner monolithic scheduler and every per-pod search.
        Pod searches probe serially — the parallelism budget is spent
        across pods, not inside one search.
    """

    name = "cwc-sharded"

    #: Sharded scheduling never requests proactive replication (only
    #: the default capacity-search policy may run sharded at all).
    last_replicas: tuple = ()

    def __init__(
        self,
        *,
        pods: int | str = "auto",
        pod_assign: str = "greedy",
        pod_workers: int | str | None = "auto",
        rebalance_rounds: int = 1,
        certify: bool = True,
        epsilon_ms: float = 1.0,
        min_partition_kb: float | None = None,
        max_iterations: int = 60,
        ram=None,
        warm_start: bool = False,
        kernel: str = "auto",
        shared_mem: bool | str = "auto",
        telemetry=None,
        policy: str = "cwc-greedy",
    ) -> None:
        if policy != "cwc-greedy":
            raise ValueError(
                "ShardedScheduler only runs the default 'cwc-greedy' "
                f"policy (got {policy!r}): pod solves and the LP "
                "certificate assume capacity-search schedules.  Run "
                "alternative policies monolithically (pods=None) via "
                "repro.core.policies.make_policy."
            )
        if pod_assign not in _POD_ASSIGN_POLICIES:
            raise ValueError(
                f"unknown pod_assign {pod_assign!r}; "
                f"expected one of {_POD_ASSIGN_POLICIES}"
            )
        if pods != "auto" and int(pods) < 1:
            raise ValueError(f"pods must be >= 1 or 'auto', got {pods!r}")
        if pod_workers not in (None, "auto") and int(pod_workers) < 1:
            raise ValueError(
                f"pod_workers must be >= 1, 'auto', or None, "
                f"got {pod_workers!r}"
            )
        if rebalance_rounds < 0:
            raise ValueError("rebalance_rounds must be >= 0")
        self._pods = pods
        self._pod_assign = pod_assign
        self._pod_workers = pod_workers
        self._rebalance_rounds = rebalance_rounds
        self._certify = certify
        self._warm_start = warm_start
        self._shared_mem = shared_mem
        #: Monolithic delegate for resolved pod count 1 — byte-identical
        #: to a standalone CwcScheduler with the same knobs.
        self._mono = CwcScheduler(
            epsilon_ms=epsilon_ms,
            min_partition_kb=min_partition_kb,
            max_iterations=max_iterations,
            ram=ram,
            warm_start=warm_start,
            kernel=kernel,
            shared_mem=shared_mem,
            telemetry=telemetry,
        )
        #: Search kwargs for per-pod solves (worker-side constructor
        #: args, so everything here must pickle).
        self._search_kwargs = {
            "epsilon_ms": epsilon_ms,
            "max_iterations": max_iterations,
            "min_partition_kb": min_partition_kb,
            "ram": ram,
            "kernel": kernel,
        }
        #: Long-lived serial pod solver: its array pool recycles packer
        #: buffers across pods and across rounds.  It shares this
        #: scheduler's telemetry (kept out of ``_search_kwargs``, which
        #: must pickle for workers) so serial pod solves trace and
        #: meter like monolithic ones.
        self._local_search = CapacitySearch(
            **self._search_kwargs, telemetry=telemetry
        )
        self._stats = SchedulingStats()
        self._last_result: ShardedSearchResult | None = None
        #: Warm hints per pod index from the previous sharded round.
        self._last_pod_capacities: dict[int, float] = {}
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY

    # -- public surface ---------------------------------------------------

    @property
    def last_result(self) -> ShardedSearchResult | None:
        """Diagnostics from the most recent round."""
        return self._last_result

    @property
    def stats(self) -> SchedulingStats:
        """Counters accumulated over every round scheduled so far."""
        return self._stats

    def schedule(self, instance: SchedulingInstance) -> Schedule:
        """Produce a schedule covering every job in ``instance``."""
        n_pods = resolve_pod_count(self._pods, len(instance.phones))
        if n_pods == 1:
            return self._schedule_monolithic(instance)
        return self._schedule_sharded(instance, n_pods)

    def reset_warm_state(self) -> None:
        """Forget every warm hint (e.g. between runs)."""
        self._mono.reset_warm_state()
        self._last_pod_capacities = {}

    def warm_state(self) -> dict:
        """JSON-safe snapshot of the warm-start caches."""
        mono = self._mono.warm_state()
        return {
            "warm_start": self._warm_start,
            "last_capacity_ms": mono["last_capacity_ms"],
            "pod_capacities": {
                str(index): capacity
                for index, capacity in sorted(
                    self._last_pod_capacities.items()
                )
            },
        }

    def restore_warm_state(self, state: dict) -> None:
        """Reinstate a :meth:`warm_state` snapshot (checkpoint restore)."""
        self._mono.restore_warm_state(state)
        restored: dict[int, float] = {}
        for key, value in (state.get("pod_capacities") or {}).items():
            capacity = float(value)
            if capacity < 0:
                raise ValueError(
                    f"pod capacity must be >= 0, got {capacity!r}"
                )
            restored[int(key)] = capacity
        self._last_pod_capacities = restored

    # -- monolithic delegation --------------------------------------------

    def _schedule_monolithic(self, instance: SchedulingInstance) -> Schedule:
        started = time.perf_counter()
        schedule = self._mono.schedule(instance)
        wall_ms = (time.perf_counter() - started) * 1000.0
        inner = self._mono.last_result
        lower = inner.lower_bound_ms
        result = ShardedSearchResult(
            schedule=schedule,
            capacity_ms=inner.capacity_ms,
            max_height_ms=inner.max_height_ms,
            lower_bound_ms=lower,
            upper_bound_ms=inner.upper_bound_ms,
            iterations=inner.iterations,
            packer_passes=inner.packer_passes,
            bisection_steps=inner.bisection_steps,
            shortcircuit_skips=inner.shortcircuit_skips,
            assumed_feasible=inner.assumed_feasible,
            warm_start_used=inner.warm_start_used,
            kernel=inner.kernel,
            speculative_packs=inner.speculative_packs,
            batch_width=inner.batch_width,
            probe_worker_utilisation=inner.probe_worker_utilisation,
            probe_wait_ms=inner.probe_wait_ms,
            probe_exec_ms=inner.probe_exec_ms,
            pods=1,
            pod_assign="none",
            pod_solve_ms_max=wall_ms,
            pod_solve_ms_sum=wall_ms,
            shard_bound_ratio=(
                inner.max_height_ms / lower if lower > 0 else 0.0
            ),
        )
        self._last_result = result
        self._stats.record(result, wall_ms)
        return schedule

    # -- sharded rounds ---------------------------------------------------

    def _schedule_sharded(
        self, instance: SchedulingInstance, n_pods: int
    ) -> Schedule:
        tel = self._tel
        tracer = tel.tracer if tel.enabled else None
        started = time.perf_counter()
        with maybe_span(
            tracer,
            "sharded_schedule",
            category="scheduler",
            scheduler=self.name,
            pods=n_pods,
            jobs=len(instance.jobs),
            phones=len(instance.phones),
        ) as round_span:
            with maybe_span(tracer, "split", category="pod"):
                pods_phones = partition_phones(
                    len(instance.phones), n_pods
                )
                bmin, cmin, agg = pod_rate_tables(instance, pods_phones)

                lp_floor_ms: float | None = None
                job_pods: np.ndarray | None = None
                if self._pod_assign == "lp":
                    solution = self._solve_pod_lp(
                        instance, pods_phones, bmin, cmin
                    )
                    if solution is not None:
                        lp_floor_ms = solution.makespan_ms
                        # Send each job to the pod the relaxation leans
                        # on hardest; first-max wins for determinism.
                        job_pods = np.argmax(solution.l_kb, axis=0)
                if job_pods is None:
                    if self._pod_assign == "hash":
                        job_pods = _assign_hash(instance, n_pods)
                    else:  # 'greedy', and the 'lp' fallback
                        job_pods = _assign_greedy(instance, bmin, agg)

                specs = _build_specs(pods_phones, job_pods)
            hints = (
                dict(self._last_pod_capacities) if self._warm_start else {}
            )
            with maybe_span(
                tracer, "pod_solves", category="pod", pods=len(specs)
            ) as solves_span:
                reports = self._solve_pods(
                    instance, specs, hints, trace_parent=solves_span
                )
            with maybe_span(
                tracer, "rebalance", category="pod"
            ) as rebalance_span:
                specs, reports, moves = self._global_capacity_search(
                    instance, specs, reports, bmin, agg, hints
                )
                if rebalance_span is not None:
                    rebalance_span.set_attr("moves", moves)

            if lp_floor_ms is None and self._certify:
                solution = self._solve_pod_lp(
                    instance, pods_phones, bmin, cmin
                )
                if solution is not None:
                    lp_floor_ms = solution.makespan_ms

            with maybe_span(tracer, "assemble", category="pod"):
                schedule = assemble_schedule(reports)
            if round_span is not None:
                round_span.set_attr(
                    "capacity_ms",
                    max(report.capacity_ms for report in reports),
                )
            # wall_ms is the scheduling work proper; the result
            # bookkeeping below (dominated by capacity_bounds at fleet
            # scale) stays outside it but inside the root span so the
            # trace decomposition accounts for the whole schedule()
            # call.
            wall_ms = (time.perf_counter() - started) * 1000.0
            with maybe_span(tracer, "finish_round", category="pod"):
                result = self._finish_round(
                    instance,
                    n_pods,
                    specs,
                    reports,
                    schedule,
                    lp_floor_ms,
                    moves,
                    wall_ms,
                )
        self._last_result = result
        self._stats.record(result, wall_ms)
        self._last_pod_capacities = {
            report.index: report.capacity_ms for report in reports
        }
        return schedule

    def _solve_pod_lp(self, instance, pods_phones, bmin, cmin):
        """Pod-aggregated LP, or ``None`` when the solver is unhappy."""
        tel = self._tel
        tracer = tel.tracer if tel.enabled else None
        with maybe_span(tracer, "lp_certify", category="pod"):
            try:
                from .lp_bound import solve_pod_relaxed_makespan

                return solve_pod_relaxed_makespan(
                    instance, pods_phones, tables=(bmin, cmin)
                )
            except Exception:
                return None

    def _solve_pods(
        self,
        instance: SchedulingInstance,
        specs: list[PodSpec],
        hints: dict[int, float],
        *,
        trace_parent=None,
    ) -> list[PodSolveReport]:
        """Solve every pod, on the pool when it pays, serially otherwise.

        The pool path publishes the full cost matrix once (shared
        memory when available) and ships each pod as a few integer
        tuples; any pool failure degrades to the serial path, which
        produces identical reports.  ``trace_parent`` is the open
        ``pod_solves`` span worker-side spans are adopted under.
        """
        tel = self._tel
        tracer = tel.tracer if tel.enabled else None
        workers = self._pod_workers
        if workers == "auto":
            workers = default_pod_workers(len(specs))
        if workers is not None and workers >= 2 and len(specs) >= 2:
            reports = self._solve_pods_pooled(
                instance, specs, hints, workers, trace_parent=trace_parent
            )
            if reports is not None:
                return reports
        return [
            solve_pod(
                instance,
                spec,
                self._local_search,
                warm_hint_ms=hints.get(spec.index),
                tracer=tracer,
            )
            for spec in specs
        ]

    def _solve_pods_pooled(
        self, instance, specs, hints, workers, *, trace_parent=None
    ) -> list[PodSolveReport] | None:
        tel = self._tel
        tracer = tel.tracer if tel.enabled else None
        shared = None
        try:
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            from .pod import _pod_worker_init, _pod_worker_solve

            if self._shared_mem in ("auto", True):
                try:
                    from .shm import SharedMatrix

                    shared = SharedMatrix(instance.c_matrix())
                except Exception:
                    shared = None  # inline payload fallback
            payload = _shared_probe_payload(instance, shared)
            with ProcessPoolExecutor(
                max_workers=min(workers, len(specs)),
                mp_context=multiprocessing.get_context("fork"),
                initializer=_pod_worker_init,
                initargs=(
                    payload,
                    self._search_kwargs,
                    tracer.run_id if tracer is not None else None,
                ),
            ) as pool:
                futures = [
                    pool.submit(
                        _pod_worker_solve,
                        (
                            spec.index,
                            spec.phone_positions,
                            spec.job_positions,
                            hints.get(spec.index),
                        ),
                    )
                    for spec in specs
                ]
                reports = [future.result() for future in futures]
        except Exception:
            return None  # serial fallback, identical reports
        finally:
            if shared is not None:
                shared.close_and_unlink()
        if tracer is not None:
            # Re-home each worker's span segment under the pod_solves
            # span, then strip the dicts so pod_reports stays slim.
            import dataclasses

            rehomed = []
            for report in reports:
                if report.spans:
                    tracer.adopt(report.spans, parent=trace_parent)
                    report = dataclasses.replace(report, spans=())
                rehomed.append(report)
            reports = rehomed
        return reports

    def _global_capacity_search(
        self, instance, specs, reports, bmin, agg, hints
    ):
        """Min-max repair over per-pod capacities (bounded, monotone).

        The global capacity is the max over pods; each repair round
        moves the single job that best fills half the gap from the
        argmax pod to the argmin pod, re-solves exactly those two pods
        (warm-hinted with their previous capacities), and keeps the
        move only when the global capacity strictly improves.  Repair
        is deterministic: ties break on job position.
        """
        moves = 0
        if self._rebalance_rounds < 1 or len(reports) < 2:
            return specs, reports, moves
        exe, load = instance.job_load_arrays()
        for _ in range(self._rebalance_rounds):
            capacities = [report.capacity_ms for report in reports]
            hi_k = max(range(len(reports)), key=lambda k: capacities[k])
            lo_k = min(range(len(reports)), key=lambda k: capacities[k])
            gap = capacities[hi_k] - capacities[lo_k]
            if (
                hi_k == lo_k
                or capacities[hi_k]
                <= capacities[lo_k] * _REBALANCE_MIN_GAP
            ):
                break
            hi_spec, lo_spec = specs[hi_k], specs[lo_k]
            job_pos = _pick_migration_job(
                hi_spec, lo_spec, exe, load, bmin, agg, gap
            )
            if job_pos is None:
                break
            new_hi = PodSpec(
                index=hi_spec.index,
                phone_positions=hi_spec.phone_positions,
                job_positions=tuple(
                    j for j in hi_spec.job_positions if j != job_pos
                ),
            )
            new_lo = PodSpec(
                index=lo_spec.index,
                phone_positions=lo_spec.phone_positions,
                job_positions=tuple(
                    sorted(lo_spec.job_positions + (job_pos,))
                ),
            )
            if not new_hi.job_positions:
                break  # never empty a pod: its report would vanish
            tel = self._tel
            tracer = tel.tracer if tel.enabled else None
            resolved = [
                solve_pod(
                    instance,
                    spec,
                    self._local_search,
                    warm_hint_ms=reports[k].capacity_ms,
                    tracer=tracer,
                )
                for spec, k in ((new_hi, hi_k), (new_lo, lo_k))
            ]
            old_max = max(capacities)
            trial = list(reports)
            trial[hi_k], trial[lo_k] = resolved
            new_max = max(report.capacity_ms for report in trial)
            if new_max >= old_max:
                break  # the move did not help; keep the solved pods
            specs = list(specs)
            specs[hi_k], specs[lo_k] = new_hi, new_lo
            reports = trial
            moves += 1
        return specs, reports, moves

    def _finish_round(
        self,
        instance,
        n_pods,
        specs,
        reports,
        schedule,
        lp_floor_ms,
        moves,
        wall_ms,
    ) -> ShardedSearchResult:
        capacity = max(report.capacity_ms for report in reports)
        makespan = max(report.max_height_ms for report in reports)
        floor = lp_floor_ms
        if floor is None:
            # Diagnostic fallback only: the magical-bin bracket is not
            # a certified floor (see the differential harness).
            floor = instance.capacity_bounds()[0]
        ratio = makespan / floor if floor > 0 else 0.0
        kernels = {report.kernel for report in reports}
        tel = self._tel
        if tel.enabled:
            for spec, report in zip(specs, reports):
                pod = str(report.index)
                tel.observe("pod_solve_ms", report.wall_ms, pod=pod)
                tel.observe(
                    "pod_capacity_ms", report.capacity_ms, pod=pod
                )
                tel.inc(
                    "pod_jobs_total",
                    float(len(spec.job_positions)),
                    pod=pod,
                )
            tel.set_gauge("shard_bound_ratio", ratio)
            tel.set_gauge("shard_pods", float(n_pods))
            tel.inc("shard_rebalance_moves_total", float(moves))
            tel.observe("schedule_wall_ms", wall_ms, scheduler=self.name)
        bounds = instance.capacity_bounds()
        return ShardedSearchResult(
            schedule=schedule,
            capacity_ms=capacity,
            max_height_ms=makespan,
            lower_bound_ms=bounds[0],
            upper_bound_ms=bounds[1],
            iterations=sum(r.packer_passes for r in reports),
            packer_passes=sum(r.packer_passes for r in reports),
            bisection_steps=sum(r.bisection_steps for r in reports),
            shortcircuit_skips=sum(r.shortcircuit_skips for r in reports),
            assumed_feasible=sum(r.assumed_feasible for r in reports),
            warm_start_used=any(r.warm_start_used for r in reports),
            kernel=kernels.pop() if len(kernels) == 1 else "mixed",
            speculative_packs=sum(r.speculative_packs for r in reports),
            batch_width=0,
            probe_worker_utilisation=1.0,
            pods=n_pods,
            pod_assign=self._pod_assign,
            pod_solve_ms_max=max(r.wall_ms for r in reports),
            pod_solve_ms_sum=sum(r.wall_ms for r in reports),
            shard_bound_ratio=ratio,
            lp_floor_ms=lp_floor_ms,
            rebalance_moves=moves,
            pod_reports=tuple(
                sorted(reports, key=lambda r: r.index)
            ),
        )


# -- job-to-pod splitters -------------------------------------------------


def _assign_hash(instance: SchedulingInstance, n_pods: int) -> np.ndarray:
    """``crc32(job_id) % n_pods`` — stateless and hash-seed independent."""
    return np.fromiter(
        (
            zlib.crc32(job.job_id.encode("utf-8")) % n_pods
            for job in instance.jobs
        ),
        dtype=np.intp,
        count=len(instance.jobs),
    )


def _assign_greedy(
    instance: SchedulingInstance, bmin: np.ndarray, agg: np.ndarray
) -> np.ndarray:
    """LPT against per-pod estimated work (the LP's load prices).

    ``est[p, j] = E_j * bmin_p + L_j / agg_pj`` is job ``j``'s
    magical-bin completion time inside pod ``p`` — exactly the terms
    the pod LP's load constraint prices.  Jobs are placed largest
    first (by their best-pod estimate) onto the pod minimising
    ``load_p + est[p, j]``; ties break on pod index, then job
    position, so the split is deterministic.
    """
    n_pods, n_jobs = agg.shape
    exe, load = instance.job_load_arrays()
    est = np.full((n_pods, n_jobs), np.inf)
    np.divide(load[None, :], agg, out=est, where=agg > 0)
    est += exe[None, :] * bmin[:, None]
    est[~(agg > 0)] = np.inf
    best = est.min(axis=0)
    # A job no pod can price (all-zero rates: degenerate b = c = 0
    # phones) costs ~nothing to run; deal it round-robin by position.
    unpriced = ~np.isfinite(best)
    order = np.lexsort((np.arange(n_jobs), -np.where(unpriced, 0.0, best)))
    pod_load = np.zeros(n_pods)
    out = np.empty(n_jobs, dtype=np.intp)
    for j in order:
        if unpriced[j]:
            out[j] = j % n_pods
            continue
        candidate = pod_load + est[:, j]
        p = int(np.argmin(candidate))
        out[j] = p
        pod_load[p] += est[p, j]
    return out


def _build_specs(
    pods_phones: tuple[tuple[int, ...], ...], job_pods: np.ndarray
) -> list[PodSpec]:
    """Materialise non-empty pod specs from the splitter's verdict."""
    specs: list[PodSpec] = []
    for p, phone_positions in enumerate(pods_phones):
        job_positions = tuple(np.flatnonzero(job_pods == p).tolist())
        if job_positions:
            specs.append(
                PodSpec(
                    index=p,
                    phone_positions=phone_positions,
                    job_positions=job_positions,
                )
            )
    return specs


def _pick_migration_job(
    hi_spec: PodSpec,
    lo_spec: PodSpec,
    exe: np.ndarray,
    load: np.ndarray,
    bmin: np.ndarray,
    agg: np.ndarray,
    gap: float,
) -> int | None:
    """The job whose move best fills half the capacity gap.

    Scores each of the overloaded pod's jobs by its estimated work on
    the *receiving* pod and picks the one closest to ``gap / 2`` —
    moving much more would overshoot and just swap which pod is the
    bottleneck.  Jobs the receiving pod cannot price (zero aggregate
    rate) are skipped.  Returns ``None`` when no job qualifies.
    """
    lo = lo_spec.index
    best_pos: int | None = None
    best_score = np.inf
    target = gap / 2.0
    for j in hi_spec.job_positions:
        rate = agg[lo, j]
        if not rate > 0:
            continue
        est = exe[j] * bmin[lo] + load[j] / rate
        score = abs(est - target)
        if score < best_score:
            best_score = score
            best_pos = j
    return best_pos
