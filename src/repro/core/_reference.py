"""Frozen pre-optimisation scheduler path (reference implementation).

This module preserves, verbatim in behaviour, the original Algorithm-1
packer and capacity bisection as they existed before the scheduler
hot-path overhaul: every ``b_i + c_ij`` cost is re-derived through dict
lookups, the job table is scanned linearly on every :func:`_ref_cost`
call, the item list is fully re-sorted after every partial placement,
all opened bins are re-scanned per placement, and the capacity bounds
are recomputed from scratch on every call.

It exists for two reasons and must not be "improved":

* **golden-schedule equivalence** — the optimised
  :class:`~repro.core.packing.GreedyPacker` and
  :class:`~repro.core.capacity.CapacitySearch` are required to produce
  schedules identical to this reference on any instance
  (``tests/core/test_golden_schedule.py``);
* **speedup accounting** — ``benchmarks/test_bench_fleet_scale.py``
  times this reference against the optimised path and records the
  ratio in ``BENCH_scheduler.json``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .instance import SchedulingInstance
from .model import MIN_PARTITION_KB, Job, completion_time
from .packing import PackingResult
from .schedule import InfeasibleScheduleError, ScheduleBuilder

__all__ = [
    "reference_capacity_bounds",
    "ReferenceGreedyPacker",
    "ReferenceCapacitySearch",
]


def _ref_job(instance: SchedulingInstance, job_id: str) -> Job:
    """The original linear-scan job lookup."""
    for job in instance.jobs:
        if job.job_id == job_id:
            return job
    raise KeyError(f"no job {job_id!r} in instance")


def _ref_cost(
    instance: SchedulingInstance,
    phone_id: str,
    job_id: str,
    input_kb: float | None = None,
) -> float:
    """Equation (1) through the original dict-chain lookups."""
    job = _ref_job(instance, job_id)
    x = job.input_kb if input_kb is None else input_kb
    return completion_time(
        job.executable_kb,
        x,
        instance.b_ms_per_kb[phone_id],
        instance.c_ms_per_kb[(phone_id, job_id)],
    )


def reference_capacity_bounds(
    instance: SchedulingInstance,
) -> tuple[float, float]:
    """The original (lower, upper) bracket, recomputed on every call."""
    upper = max(
        sum(
            _ref_cost(instance, phone.phone_id, job.job_id)
            for job in instance.jobs
        )
        for phone in instance.phones
    )
    lower = 0.0
    for job in instance.jobs:
        aggregate_rate = sum(
            1.0
            / (
                instance.b_ms_per_kb[phone.phone_id]
                + instance.c_ms_per_kb[(phone.phone_id, job.job_id)]
            )
            for phone in instance.phones
            if instance.b_ms_per_kb[phone.phone_id]
            + instance.c_ms_per_kb[(phone.phone_id, job.job_id)]
            > 0
        )
        if aggregate_rate > 0:
            lower += job.input_kb / aggregate_rate
    lower = min(lower, upper)
    return lower, upper


@dataclass(slots=True)
class _Item:
    job: Job
    remaining_kb: float
    key_ms: float = field(default=0.0)

    @property
    def is_whole(self) -> bool:
        return math.isclose(self.remaining_kb, self.job.input_kb)


@dataclass(slots=True)
class _Bin:
    phone_id: str
    height_ms: float = 0.0
    shipped_jobs: set[str] = field(default_factory=set)


class ReferenceGreedyPacker:
    """The original Algorithm-1 packer (sorted list + full bin rescan)."""

    def __init__(
        self,
        instance: SchedulingInstance,
        *,
        min_partition_kb: float = MIN_PARTITION_KB,
        ram=None,
    ) -> None:
        if min_partition_kb <= 0:
            raise ValueError("min_partition_kb must be > 0")
        self._instance = instance
        self._min_partition_kb = min_partition_kb
        self._ram = ram
        slowest = min(
            instance.phones, key=lambda p: (p.cpu_mhz, p.phone_id)
        )
        self._slowest_id = slowest.phone_id

    def pack(self, capacity_ms: float) -> PackingResult:
        if capacity_ms <= 0:
            return PackingResult(feasible=False, capacity_ms=capacity_ms)

        instance = self._instance
        items = [
            _Item(job=job, remaining_kb=job.input_kb) for job in instance.jobs
        ]
        self._resort(items)
        bins: list[_Bin] = []
        unopened = [phone.phone_id for phone in instance.phones]
        builder = ScheduleBuilder()

        while items:
            placed = self._pack_into_opened(items, bins, builder, capacity_ms)
            if placed:
                continue
            if not unopened:
                return PackingResult(feasible=False, capacity_ms=capacity_ms)
            opened = self._open_bin_for(items[0], unopened, bins, capacity_ms)
            if opened is None:
                return PackingResult(feasible=False, capacity_ms=capacity_ms)
            if not self._pack_item_into_bin(
                items, 0, opened, builder, capacity_ms
            ):
                return PackingResult(feasible=False, capacity_ms=capacity_ms)

        max_height = max((b.height_ms for b in bins), default=0.0)
        return PackingResult(
            feasible=True,
            capacity_ms=capacity_ms,
            schedule=builder.build(),
            max_height_ms=max_height,
            opened_bins=len(bins),
        )

    def _resort(self, items: list[_Item]) -> None:
        for item in items:
            c_s = self._instance.c_ms_per_kb[
                (self._slowest_id, item.job.job_id)
            ]
            item.key_ms = item.remaining_kb * c_s
        items.sort(key=lambda item: (-item.key_ms, item.job.job_id))

    def _exe_cost(self, bin_: _Bin, job: Job) -> float:
        if job.job_id in bin_.shipped_jobs:
            return 0.0
        return job.executable_kb * self._instance.b_ms_per_kb[bin_.phone_id]

    def _per_kb(self, phone_id: str, job: Job) -> float:
        return (
            self._instance.b_ms_per_kb[phone_id]
            + self._instance.c_ms_per_kb[(phone_id, job.job_id)]
        )

    def _fit_kb(self, bin_: _Bin, item: _Item, capacity_ms: float) -> float:
        job = item.job
        headroom = capacity_ms - bin_.height_ms - self._exe_cost(bin_, job)
        if headroom <= 0:
            return 0.0
        per_kb = self._per_kb(bin_.phone_id, job)
        if per_kb <= 0:
            max_kb = item.remaining_kb
        else:
            max_kb = headroom / per_kb
        if self._ram is not None:
            max_kb = self._ram.clamp_fit(bin_.phone_id, max_kb)
            if job.is_atomic and max_kb < item.remaining_kb:
                return 0.0
        if max_kb >= item.remaining_kb * (1.0 - 1e-9):
            return item.remaining_kb
        if job.is_atomic:
            return 0.0
        if max_kb < self._min_partition_kb:
            return 0.0
        if item.remaining_kb - max_kb < self._min_partition_kb:
            max_kb = item.remaining_kb - self._min_partition_kb
            if max_kb < self._min_partition_kb:
                return 0.0
        return max_kb

    def _pack_into_opened(
        self,
        items: list[_Item],
        bins: list[_Bin],
        builder: ScheduleBuilder,
        capacity_ms: float,
    ) -> bool:
        if not bins:
            return False
        for index, item in enumerate(items):
            candidates = [
                bin_
                for bin_ in bins
                if self._fit_kb(bin_, item, capacity_ms) > 0
            ]
            if not candidates:
                continue
            target = min(candidates, key=lambda b: (b.height_ms, b.phone_id))
            return self._pack_item_into_bin(
                items, index, target, builder, capacity_ms
            )
        return False

    def _pack_item_into_bin(
        self,
        items: list[_Item],
        index: int,
        bin_: _Bin,
        builder: ScheduleBuilder,
        capacity_ms: float,
    ) -> bool:
        item = items[index]
        job = item.job
        size_kb = self._fit_kb(bin_, item, capacity_ms)
        if size_kb <= 0:
            return False
        packed_whole_input = item.is_whole and math.isclose(
            size_kb, item.remaining_kb
        )
        cost = self._exe_cost(bin_, job) + size_kb * self._per_kb(
            bin_.phone_id, job
        )
        bin_.height_ms += cost
        bin_.shipped_jobs.add(job.job_id)
        builder.place(
            bin_.phone_id,
            job.job_id,
            job.task,
            size_kb,
            whole=packed_whole_input,
        )
        if math.isclose(size_kb, item.remaining_kb):
            del items[index]
        else:
            item.remaining_kb -= size_kb
            self._resort(items)
        return True

    def _open_bin_for(
        self,
        item: _Item,
        unopened: list[str],
        bins: list[_Bin],
        capacity_ms: float,
    ) -> _Bin | None:
        job = item.job

        def eq1_cost(phone_id: str) -> float:
            return _ref_cost(
                self._instance, phone_id, job.job_id, item.remaining_kb
            )

        for phone_id in sorted(unopened, key=lambda pid: (eq1_cost(pid), pid)):
            candidate = _Bin(phone_id=phone_id)
            if self._fit_kb(candidate, item, capacity_ms) > 0:
                unopened.remove(phone_id)
                bins.append(candidate)
                return candidate
        return None


class ReferenceCapacitySearch:
    """The original bisection: fresh bounds, a pack at every step."""

    def __init__(
        self,
        *,
        epsilon_ms: float = 1.0,
        max_iterations: int = 60,
        min_partition_kb: float | None = None,
        ram=None,
    ) -> None:
        if epsilon_ms <= 0:
            raise ValueError("epsilon_ms must be > 0")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        self._epsilon_ms = epsilon_ms
        self._max_iterations = max_iterations
        self._min_partition_kb = min_partition_kb
        self._ram = ram

    def run(self, instance: SchedulingInstance):
        from .capacity import CapacitySearchResult

        packer_kwargs = {"ram": self._ram}
        if self._min_partition_kb is not None:
            packer_kwargs["min_partition_kb"] = self._min_partition_kb
        packer = ReferenceGreedyPacker(instance, **packer_kwargs)

        lower, upper = reference_capacity_bounds(instance)
        best: PackingResult | None = None
        iterations = 0

        seed = packer.pack(upper * (1.0 + 1e-9) + 1e-9)
        iterations += 1
        if not seed.feasible:
            raise InfeasibleScheduleError(
                "greedy packing failed even at the upper-bound capacity "
                f"({upper:.3f} ms); the instance is malformed or an atomic "
                "job violates a resource constraint on every phone"
            )
        best = seed

        while upper - lower > self._epsilon_ms and iterations < self._max_iterations:
            mid = (lower + upper) / 2.0
            attempt = packer.pack(mid)
            iterations += 1
            if attempt.feasible:
                upper = mid
                best = attempt
            else:
                lower = mid

        assert best is not None and best.schedule is not None
        bounds = reference_capacity_bounds(instance)
        return CapacitySearchResult(
            schedule=best.schedule,
            capacity_ms=best.capacity_ms,
            max_height_ms=best.max_height_ms,
            lower_bound_ms=bounds[0],
            upper_bound_ms=bounds[1],
            iterations=iterations,
            packer_passes=iterations,
            bisection_steps=iterations,
        )
