"""Schedules: the output of every CWC scheduler.

A :class:`Schedule` maps each phone to an ordered list of
:class:`Assignment` records.  Each assignment is one partition ``l_ij``
of a job's input (possibly the whole input).  Cost accounting follows
the paper's quadratic program: the executable shipping term
``E_j * b_i`` is paid once per (phone, job) pair — ``u_ij`` is an
indicator — while every KB of input pays ``b_i + c_ij``.

The number of partitions a job was split into (Figure 12b) and the
predicted makespan (compared against the measured makespan in the
prototype evaluation, Figure 12a) are both derived here.
"""

from __future__ import annotations

import math
from collections import defaultdict
from collections.abc import Iterable
from dataclasses import dataclass

from .instance import SchedulingInstance

__all__ = ["Assignment", "Schedule", "ScheduleBuilder", "InfeasibleScheduleError"]


class InfeasibleScheduleError(Exception):
    """Raised when a scheduler cannot produce a valid schedule."""


@dataclass(frozen=True, slots=True)
class Assignment:
    """One input partition of one job placed on one phone.

    ``input_kb`` is ``l_ij`` for this partition; ``whole`` records
    whether this partition is the job's entire input (used for the
    partition-count statistics of Figure 12b, where an unsplit job is
    reported as having zero partitions).
    """

    phone_id: str
    job_id: str
    task: str
    input_kb: float
    whole: bool

    def __post_init__(self) -> None:
        if not math.isfinite(self.input_kb) or self.input_kb <= 0:
            raise ValueError(f"input_kb must be finite and > 0, got {self.input_kb!r}")


class Schedule:
    """An ordered placement of job partitions onto phones."""

    def __init__(self, assignments: Iterable[Assignment]) -> None:
        self._assignments = tuple(assignments)
        per_phone: dict[str, list[Assignment]] = defaultdict(list)
        for assignment in self._assignments:
            per_phone[assignment.phone_id].append(assignment)
        self._per_phone = {
            phone_id: tuple(items) for phone_id, items in per_phone.items()
        }

    # -- structure ---------------------------------------------------------

    @property
    def assignments(self) -> tuple[Assignment, ...]:
        return self._assignments

    @property
    def phone_ids(self) -> tuple[str, ...]:
        return tuple(self._per_phone)

    def for_phone(self, phone_id: str) -> tuple[Assignment, ...]:
        """Ordered assignments for one phone (empty if none)."""
        return self._per_phone.get(phone_id, ())

    def __len__(self) -> int:
        return len(self._assignments)

    def __iter__(self):
        return iter(self._assignments)

    # -- statistics ----------------------------------------------------------

    def assigned_kb(self, job_id: str) -> float:
        return sum(a.input_kb for a in self._assignments if a.job_id == job_id)

    def partition_counts(self) -> dict[str, int]:
        """Number of partitions per job, in the paper's convention.

        A job assigned whole to a single phone counts as **0** partitions
        (Figure 12b: "an input partition of 0 indicates that the task was
        atomically assigned to a single phone"); a job split into *n*
        pieces counts as *n*.
        """
        raw: dict[str, int] = defaultdict(int)
        whole: dict[str, bool] = {}
        for a in self._assignments:
            raw[a.job_id] += 1
            whole[a.job_id] = a.whole and raw[a.job_id] == 1
        return {
            job_id: 0 if (count == 1 and whole[job_id]) else count
            for job_id, count in raw.items()
        }

    def unsplit_fraction(self) -> float:
        """Fraction of jobs that were not partitioned (≈0.9 in the paper)."""
        counts = self.partition_counts()
        if not counts:
            return 1.0
        return sum(1 for c in counts.values() if c == 0) / len(counts)

    # -- cost accounting -------------------------------------------------

    def predicted_finish_ms(self, instance: SchedulingInstance, phone_id: str) -> float:
        """Predicted completion time of one phone's whole queue.

        The executable term is paid once per (phone, job) pair, matching
        the ``u_ij`` indicator in the paper's program SCH.
        """
        total = 0.0
        shipped: set[str] = set()
        b = instance.b(phone_id)
        for a in self.for_phone(phone_id):
            job = instance.job(a.job_id)
            if a.job_id not in shipped:
                total += job.executable_kb * b
                shipped.add(a.job_id)
            total += a.input_kb * (b + instance.c(phone_id, a.job_id))
        return total

    def predicted_makespan_ms(self, instance: SchedulingInstance) -> float:
        """Predicted makespan ``T`` — the maximum over phone finish times."""
        if not self._per_phone:
            return 0.0
        return max(
            self.predicted_finish_ms(instance, phone_id)
            for phone_id in self._per_phone
        )

    # -- validation --------------------------------------------------------

    def validate(
        self, instance: SchedulingInstance, *, tol_kb: float = 1e-6
    ) -> None:
        """Check the SCH constraints; raise ``InfeasibleScheduleError``.

        * every job's input is fully covered (``sum_i l_ij = L_j``);
        * atomic jobs are placed whole on exactly one phone
          (``sum_i u_ij = 1``);
        * every assignment references a phone and job in the instance.
        """
        known_phones = {p.phone_id for p in instance.phones}
        for a in self._assignments:
            if a.phone_id not in known_phones:
                raise InfeasibleScheduleError(
                    f"assignment references unknown phone {a.phone_id!r}"
                )
            instance.job(a.job_id)  # raises KeyError if unknown
        for job in instance.jobs:
            assigned = self.assigned_kb(job.job_id)
            if abs(assigned - job.input_kb) > tol_kb:
                raise InfeasibleScheduleError(
                    f"job {job.job_id!r}: assigned {assigned} KB of "
                    f"{job.input_kb} KB input"
                )
            if job.is_atomic:
                pieces = [a for a in self._assignments if a.job_id == job.job_id]
                if len(pieces) != 1 or not pieces[0].whole:
                    raise InfeasibleScheduleError(
                        f"atomic job {job.job_id!r} must be one whole assignment, "
                        f"got {len(pieces)} pieces"
                    )


class ScheduleBuilder:
    """Mutable accumulator used by schedulers while placing partitions."""

    def __init__(self) -> None:
        self._assignments: list[Assignment] = []

    def place(
        self,
        phone_id: str,
        job_id: str,
        task: str,
        input_kb: float,
        *,
        whole: bool,
    ) -> Assignment:
        assignment = Assignment(
            phone_id=phone_id,
            job_id=job_id,
            task=task,
            input_kb=input_kb,
            whole=whole,
        )
        self._assignments.append(assignment)
        return assignment

    def build(self) -> Schedule:
        return Schedule(self._assignments)
