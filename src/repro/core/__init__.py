"""CWC's core contribution: makespan scheduling for smartphone fleets.

Public surface:

* data model — :class:`Job`, :class:`JobKind`, :class:`PhoneSpec`,
  :class:`NetworkTechnology`, :func:`completion_time`;
* prediction — :class:`TaskProfile`, :class:`RuntimePredictor`;
* instances and schedules — :class:`SchedulingInstance`,
  :class:`Schedule`, :class:`Assignment`;
* schedulers — :class:`CwcScheduler` (the paper's greedy CBP scheduler),
  :class:`ShardedScheduler` (pod-parallel CWC for large fleets),
  :class:`EqualSplitScheduler` and :class:`RoundRobinScheduler`
  (the evaluation baselines);
* bounds — :func:`solve_relaxed_makespan` (the Fig. 13 LP lower bound)
  and :func:`solve_pod_relaxed_makespan` (its pod-aggregated coarsening);
* failure handling — :class:`FailedTaskList`, :class:`Checkpoint`.
"""

from .availability import AvailabilityAwareScheduler
from .baselines import EqualSplitScheduler, RoundRobinScheduler
from .constraints import RamConstraint, validate_ram
from .capacity import (
    CapacitySearch,
    CapacitySearchResult,
    capacity_bounds,
    resolve_kernel,
)
from .greedy import CwcScheduler, Scheduler
from .instance import SchedulingInstance
from .lp_bound import (
    PodRelaxedSolution,
    RelaxedSolution,
    solve_pod_relaxed_makespan,
    solve_relaxed_makespan,
)
from .migration import Checkpoint, FailedTaskList, FailureKind
from .model import (
    MIN_PARTITION_KB,
    Job,
    JobKind,
    NetworkTechnology,
    PhoneSpec,
    completion_time,
)
from .packing import GreedyPacker, PackingResult
from .packing_vec import VectorGreedyPacker
from .pod import PodSolveReport, PodSpec
from .prediction import RuntimePredictor, TaskProfile
from .sharding import ShardedScheduler, ShardedSearchResult
from .whatif import makespan_by_fleet_size, minimum_fleet_size
from .serialize import (
    instance_from_dict,
    instance_to_dict,
    job_from_dict,
    job_to_dict,
    phone_from_dict,
    phone_to_dict,
    schedule_from_dict,
    schedule_to_dict,
)
from .schedule import (
    Assignment,
    InfeasibleScheduleError,
    Schedule,
    ScheduleBuilder,
)

__all__ = [
    "MIN_PARTITION_KB",
    "Assignment",
    "AvailabilityAwareScheduler",
    "RamConstraint",
    "validate_ram",
    "instance_from_dict",
    "instance_to_dict",
    "job_from_dict",
    "job_to_dict",
    "phone_from_dict",
    "phone_to_dict",
    "schedule_from_dict",
    "schedule_to_dict",
    "CapacitySearch",
    "CapacitySearchResult",
    "Checkpoint",
    "CwcScheduler",
    "EqualSplitScheduler",
    "FailedTaskList",
    "FailureKind",
    "GreedyPacker",
    "InfeasibleScheduleError",
    "Job",
    "JobKind",
    "NetworkTechnology",
    "PackingResult",
    "PhoneSpec",
    "PodRelaxedSolution",
    "PodSolveReport",
    "PodSpec",
    "RelaxedSolution",
    "RoundRobinScheduler",
    "RuntimePredictor",
    "Schedule",
    "ScheduleBuilder",
    "Scheduler",
    "SchedulingInstance",
    "ShardedScheduler",
    "ShardedSearchResult",
    "TaskProfile",
    "VectorGreedyPacker",
    "capacity_bounds",
    "completion_time",
    "makespan_by_fleet_size",
    "minimum_fleet_size",
    "resolve_kernel",
    "solve_pod_relaxed_makespan",
    "solve_relaxed_makespan",
]
