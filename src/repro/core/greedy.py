"""The CWC scheduler: greedy CBP packing inside a capacity search.

This is the paper's primary contribution (Section 5).  Given a
:class:`~repro.core.instance.SchedulingInstance`, :class:`CwcScheduler`
produces a :class:`~repro.core.schedule.Schedule` whose predicted
makespan the binary capacity search has minimised, taking into account
*both* each phone's CPU speed (through ``c_ij``) and its wireless
bandwidth (through ``b_i``) — the bandwidth term being the key
departure from desktop systems such as Condor.

The scheduler also plays bookkeeper for the hot path: it times each
``schedule()`` call, accumulates pack/bisection counters across rounds
(:class:`SchedulingStats`), and — when ``warm_start=True`` — feeds each
round's converged capacity into the next round's search as a verified
warm hint (see :mod:`repro.core.capacity`).  Warm starting never changes
the schedules produced; it only reduces the number of real Algorithm-1
packs at rescheduling instants.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Protocol, runtime_checkable

from ..obs.telemetry import NULL_TELEMETRY
from ..obs.tracing import maybe_span
from .capacity import CapacitySearch, CapacitySearchResult
from .instance import SchedulingInstance
from .schedule import Schedule

__all__ = ["Scheduler", "CwcScheduler", "SchedulingStats"]


@runtime_checkable
class Scheduler(Protocol):
    """Anything that can turn a scheduling instance into a schedule."""

    #: Human-readable name used in experiment output tables.
    name: str

    def schedule(self, instance: SchedulingInstance) -> Schedule:
        """Produce a schedule covering every job in ``instance``."""
        ...


@dataclass
class SchedulingStats:
    """Hot-path counters accumulated across ``schedule()`` calls."""

    rounds: int = 0
    wall_ms: float = 0.0
    packer_passes: int = 0
    bisection_steps: int = 0
    shortcircuit_skips: int = 0
    assumed_feasible: int = 0
    warm_start_hits: int = 0
    speculative_packs: int = 0
    last_wall_ms: float = 0.0
    #: Packing backend the most recent round resolved to.
    kernel: str = ""
    #: Candidate-block width the most recent round's search resolved to.
    batch_width: int = 1
    #: Fraction of speculative probes whose verdicts the bisection
    #: consumed in the most recent round.  1.0 when probing was serial
    #: (no pool ⇒ every pack is consumed), matching
    #: :class:`~repro.core.capacity.CapacitySearchResult` and
    #: ``RoundRecord`` — the convention everywhere is "no pool means
    #: nothing speculated, so nothing was wasted".
    probe_worker_utilisation: float = 1.0
    #: Wall ms blocked on pool verdicts across rounds (tracing-only
    #: diagnostic; stays 0.0 unless a tracer is armed).
    probe_wait_ms: float = 0.0
    #: Wall ms probe workers spent in consumed packs across rounds
    #: (tracing-only diagnostic; stays 0.0 unless a tracer is armed).
    probe_exec_ms: float = 0.0

    def record(self, result: CapacitySearchResult, wall_ms: float) -> None:
        self.rounds += 1
        self.wall_ms += wall_ms
        self.last_wall_ms = wall_ms
        self.packer_passes += result.packer_passes
        self.bisection_steps += result.bisection_steps
        self.shortcircuit_skips += result.shortcircuit_skips
        self.assumed_feasible += result.assumed_feasible
        self.warm_start_hits += 1 if result.warm_start_used else 0
        self.speculative_packs += result.speculative_packs
        self.kernel = result.kernel
        self.batch_width = result.batch_width
        self.probe_worker_utilisation = result.probe_worker_utilisation
        self.probe_wait_ms += result.probe_wait_ms
        self.probe_exec_ms += result.probe_exec_ms

    def as_dict(self) -> dict:
        return {
            "rounds": self.rounds,
            "wall_ms": self.wall_ms,
            "packer_passes": self.packer_passes,
            "bisection_steps": self.bisection_steps,
            "shortcircuit_skips": self.shortcircuit_skips,
            "assumed_feasible": self.assumed_feasible,
            "warm_start_hits": self.warm_start_hits,
            "speculative_packs": self.speculative_packs,
            "kernel": self.kernel,
            "batch_width": self.batch_width,
            "probe_worker_utilisation": self.probe_worker_utilisation,
            "probe_wait_ms": self.probe_wait_ms,
            "probe_exec_ms": self.probe_exec_ms,
        }


class CwcScheduler:
    """The paper's greedy makespan scheduler.

    Parameters
    ----------
    epsilon_ms:
        Convergence threshold of the capacity bisection.
    min_partition_kb:
        Smallest input partition the packer may create.
    warm_start:
        Seed each capacity search with the previous round's converged
        capacity.  Produces identical schedules with fewer packer
        passes at rescheduling instants; off by default so one-shot
        callers keep the exact legacy behaviour.
    kernel:
        Packing backend for the capacity probes: ``'python'`` (exact
        scalar reference), ``'numpy'`` (vectorized, byte-identical
        schedules), or ``'auto'`` (default: pick by instance size).
    probe_workers:
        When >= 2, probe candidate capacities speculatively on a
        process pool; schedules are identical to the serial search.
    batch_width:
        Candidate capacities probed per speculative block when the
        worker pool is active (``'auto'`` sizes it from the pool).
        Serial searches ignore it; schedules never change.
    shared_mem:
        Publish the dense cost matrix to probe workers through a
        ``multiprocessing.shared_memory`` segment instead of pickling
        it per worker (``'auto'``: on whenever the pool is active).
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` facade, also
        threaded into the capacity search.  Records per-round wall
        time, item/bin counts, and the search's probe metrics; the
        disabled default costs one boolean check per round.

    Examples
    --------
    >>> from repro.core import CwcScheduler, SchedulingInstance
    >>> scheduler = CwcScheduler()
    >>> schedule = scheduler.schedule(instance)  # doctest: +SKIP
    >>> schedule.predicted_makespan_ms(instance)  # doctest: +SKIP
    """

    name = "cwc-greedy"

    #: The default policy never requests proactive replication; the
    #: attribute exists so ``CwcScheduler`` satisfies the pluggable
    #: :class:`~repro.core.policies.SchedulingPolicy` protocol and the
    #: server can read replica directives duck-typed off any policy.
    last_replicas: tuple = ()

    def __init__(
        self,
        *,
        epsilon_ms: float = 1.0,
        min_partition_kb: float | None = None,
        max_iterations: int = 60,
        ram=None,
        warm_start: bool = False,
        kernel: str = "auto",
        probe_workers: int | None = None,
        batch_width: int | str = "auto",
        shared_mem: bool | str = "auto",
        telemetry=None,
    ) -> None:
        self._search = CapacitySearch(
            epsilon_ms=epsilon_ms,
            max_iterations=max_iterations,
            min_partition_kb=min_partition_kb,
            ram=ram,
            kernel=kernel,
            probe_workers=probe_workers,
            batch_width=batch_width,
            shared_mem=shared_mem,
            telemetry=telemetry,
        )
        self._warm_start = warm_start
        self._last_result: CapacitySearchResult | None = None
        self._last_capacity_ms: float | None = None
        self._stats = SchedulingStats()
        self._tel = telemetry if telemetry is not None else NULL_TELEMETRY

    def schedule(self, instance: SchedulingInstance) -> Schedule:
        hint = self._last_capacity_ms if self._warm_start else None
        tel = self._tel
        tracer = tel.tracer if tel.enabled else None
        started = time.perf_counter()
        with maybe_span(
            tracer,
            "schedule",
            category="scheduler",
            scheduler=self.name,
            jobs=len(instance.jobs),
            phones=len(instance.phones),
        ):
            result = self._search.run(instance, warm_hint_ms=hint)
        wall_ms = (time.perf_counter() - started) * 1000.0
        self._last_result = result
        self._last_capacity_ms = result.capacity_ms
        self._stats.record(result, wall_ms)
        if tel.enabled:
            tel.observe("schedule_wall_ms", wall_ms, scheduler=self.name)
            tel.inc("schedule_items_total", float(len(instance.jobs)))
            tel.inc("schedule_bins_total", float(len(instance.phones)))
            tel.set_gauge(
                "schedule_last_capacity_ms", result.capacity_ms
            )
        return result.schedule

    @property
    def last_result(self) -> CapacitySearchResult | None:
        """Diagnostics from the most recent capacity search."""
        return self._last_result

    @property
    def stats(self) -> SchedulingStats:
        """Counters accumulated over every round scheduled so far."""
        return self._stats

    def reset_warm_state(self) -> None:
        """Forget the previous round's capacity (e.g. between runs)."""
        self._last_capacity_ms = None

    def warm_state(self) -> dict:
        """JSON-safe snapshot of the warm-start cache."""
        return {
            "warm_start": self._warm_start,
            "last_capacity_ms": self._last_capacity_ms,
        }

    def restore_warm_state(self, state: dict) -> None:
        """Reinstate a :meth:`warm_state` snapshot (checkpoint restore)."""
        capacity = state.get("last_capacity_ms")
        if capacity is not None:
            capacity = float(capacity)
            if capacity < 0:
                raise ValueError(
                    f"last_capacity_ms must be >= 0, got {capacity!r}"
                )
        self._last_capacity_ms = capacity
