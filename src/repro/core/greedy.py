"""The CWC scheduler: greedy CBP packing inside a capacity search.

This is the paper's primary contribution (Section 5).  Given a
:class:`~repro.core.instance.SchedulingInstance`, :class:`CwcScheduler`
produces a :class:`~repro.core.schedule.Schedule` whose predicted
makespan the binary capacity search has minimised, taking into account
*both* each phone's CPU speed (through ``c_ij``) and its wireless
bandwidth (through ``b_i``) — the bandwidth term being the key
departure from desktop systems such as Condor.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from .capacity import CapacitySearch, CapacitySearchResult
from .instance import SchedulingInstance
from .schedule import Schedule

__all__ = ["Scheduler", "CwcScheduler"]


@runtime_checkable
class Scheduler(Protocol):
    """Anything that can turn a scheduling instance into a schedule."""

    #: Human-readable name used in experiment output tables.
    name: str

    def schedule(self, instance: SchedulingInstance) -> Schedule:
        """Produce a schedule covering every job in ``instance``."""
        ...


class CwcScheduler:
    """The paper's greedy makespan scheduler.

    Parameters
    ----------
    epsilon_ms:
        Convergence threshold of the capacity bisection.
    min_partition_kb:
        Smallest input partition the packer may create.

    Examples
    --------
    >>> from repro.core import CwcScheduler, SchedulingInstance
    >>> scheduler = CwcScheduler()
    >>> schedule = scheduler.schedule(instance)  # doctest: +SKIP
    >>> schedule.predicted_makespan_ms(instance)  # doctest: +SKIP
    """

    name = "cwc-greedy"

    def __init__(
        self,
        *,
        epsilon_ms: float = 1.0,
        min_partition_kb: float | None = None,
        max_iterations: int = 60,
        ram=None,
    ) -> None:
        self._search = CapacitySearch(
            epsilon_ms=epsilon_ms,
            max_iterations=max_iterations,
            min_partition_kb=min_partition_kb,
            ram=ram,
        )
        self._last_result: CapacitySearchResult | None = None

    def schedule(self, instance: SchedulingInstance) -> Schedule:
        result = self._search.run(instance)
        self._last_result = result
        return result.schedule

    @property
    def last_result(self) -> CapacitySearchResult | None:
        """Diagnostics from the most recent capacity search."""
        return self._last_result
