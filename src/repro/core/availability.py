"""Availability-aware scheduling — the Section 3.1 extension.

CWC's base scheduler treats every plugged-in phone as equally likely to
finish its queue; failures are handled reactively (checkpoint, migrate,
reschedule).  The paper's feasibility study points at a proactive
option: per-user unplug profiles predict device-specific failures, so
"tasks can be migrated to phones that are less likely to fail at the
time of consideration."

:class:`AvailabilityAwareScheduler` implements that idea as a wrapper
around any base scheduler:

* a phone's survival probability ``s_i`` over the scheduling window
  comes from an
  :class:`~repro.profiling.forecast.AvailabilityForecast`;
* phones below ``min_survival`` are excluded outright (they would
  almost surely hand their work back);
* the remaining phones' per-KB costs are inflated by the expected
  rework factor ``1 / s_i ** risk_aversion`` — work placed on a flaky
  phone is expected to be partially repeated, so it is accounted as
  proportionally more expensive — and the base scheduler runs on the
  adjusted instance.

The returned schedule is valid for the *original* instance (same jobs,
same phones); only the placement decisions change.  The
``test_bench_availability`` benchmark measures the payoff: lower
rescheduling overhead under realistic overnight failure patterns.
"""

from __future__ import annotations

from .greedy import Scheduler
from .instance import SchedulingInstance
from .schedule import InfeasibleScheduleError, Schedule

__all__ = ["AvailabilityAwareScheduler"]


class AvailabilityAwareScheduler:
    """Bias any scheduler toward phones unlikely to unplug mid-window.

    Parameters
    ----------
    base:
        The scheduler that does the actual packing (e.g.
        :class:`~repro.core.greedy.CwcScheduler`).
    forecast:
        Survival-probability source
        (:class:`~repro.profiling.forecast.AvailabilityForecast`).
    start_hour / expected_duration_hours:
        The scheduling window in the owners' local time.
    min_survival:
        Phones whose survival probability falls below this are not
        scheduled at all (0 disables exclusion).
    risk_aversion:
        Exponent on the expected-rework inflation; 0 disables cost
        adjustment, 1 charges flaky phones the full expected rework.
    """

    def __init__(
        self,
        base: Scheduler,
        forecast,
        *,
        start_hour: float,
        expected_duration_hours: float,
        min_survival: float = 0.2,
        risk_aversion: float = 1.0,
    ) -> None:
        if expected_duration_hours <= 0:
            raise ValueError("expected_duration_hours must be > 0")
        if not 0.0 <= min_survival < 1.0:
            raise ValueError(f"min_survival must lie in [0, 1), got {min_survival!r}")
        if risk_aversion < 0:
            raise ValueError(f"risk_aversion must be >= 0, got {risk_aversion!r}")
        self._base = base
        self._forecast = forecast
        self._start_hour = start_hour
        self._duration_hours = expected_duration_hours
        self._min_survival = min_survival
        self._risk_aversion = risk_aversion
        self.name = f"availability({base.name})"

    def survival(self, phone_id: str) -> float:
        return self._forecast.survival_probability(
            phone_id,
            start_hour=self._start_hour,
            duration_hours=self._duration_hours,
        )

    def schedule(self, instance: SchedulingInstance) -> Schedule:
        survivals = {
            phone.phone_id: self.survival(phone.phone_id)
            for phone in instance.phones
        }
        eligible = tuple(
            phone
            for phone in instance.phones
            if survivals[phone.phone_id] >= self._min_survival
        )
        if not eligible:
            raise InfeasibleScheduleError(
                "no phone meets the minimum survival probability "
                f"{self._min_survival} for the window"
            )

        def inflation(phone_id: str) -> float:
            survival = max(survivals[phone_id], 1e-6)
            return (1.0 / survival) ** self._risk_aversion

        adjusted = SchedulingInstance(
            jobs=instance.jobs,
            phones=eligible,
            b_ms_per_kb={
                phone.phone_id: instance.b(phone.phone_id)
                * inflation(phone.phone_id)
                for phone in eligible
            },
            c_ms_per_kb={
                (phone.phone_id, job.job_id): instance.c(
                    phone.phone_id, job.job_id
                )
                * inflation(phone.phone_id)
                for phone in eligible
                for job in instance.jobs
            },
        )
        schedule = self._base.schedule(adjusted)
        # Placements are valid for the original instance: the same jobs
        # went to a subset of the same phones.
        schedule.validate(instance)
        return schedule
