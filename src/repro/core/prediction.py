"""Execution-time prediction (Section 4.1).

CWC must know ``c_ij`` — the time for phone *i* to process one KB of job
*j*'s input — for every (phone, task) pair, but profiling each pair is
too expensive.  The paper instead profiles each *task* once on the
slowest phone in the fleet (clock speed ``S`` MHz, measured per-KB time
``T_s``) and scales by clock ratio: a phone at ``A`` MHz is predicted to
take ``T_s * S / A`` per KB.

The prediction is refined online: when a phone returns a result it also
reports how long the task actually took locally, and the scheduler
updates its estimate for that (phone, task) pair so the next scheduling
round uses the measured reality instead of the clock-ratio guess.  The
paper does not specify the update rule; we use an exponentially weighted
moving average with configurable weight ``alpha`` (``alpha=1`` replaces
the estimate with the latest observation, ``alpha=0`` disables learning;
the ablation bench sweeps this).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .model import PhoneSpec

__all__ = ["TaskProfile", "RuntimePredictor"]


@dataclass(frozen=True, slots=True)
class TaskProfile:
    """Profiling result for one task on the reference (slowest) phone.

    ``base_ms_per_kb`` is ``T_s`` — the measured per-KB local execution
    time on the reference phone; ``base_mhz`` is ``S`` — that phone's
    clock speed.
    """

    task: str
    base_ms_per_kb: float
    base_mhz: float

    def __post_init__(self) -> None:
        if not self.task:
            raise ValueError("task must be a non-empty string")
        if not math.isfinite(self.base_ms_per_kb) or self.base_ms_per_kb <= 0:
            raise ValueError(
                f"base_ms_per_kb must be finite and > 0, got {self.base_ms_per_kb!r}"
            )
        if not math.isfinite(self.base_mhz) or self.base_mhz <= 0:
            raise ValueError(f"base_mhz must be finite and > 0, got {self.base_mhz!r}")

    def scaled_ms_per_kb(self, cpu_mhz: float) -> float:
        """Clock-ratio scaling: ``T_s * S / A`` for a phone at ``A`` MHz."""
        if cpu_mhz <= 0:
            raise ValueError(f"cpu_mhz must be > 0, got {cpu_mhz!r}")
        return self.base_ms_per_kb * self.base_mhz / cpu_mhz

    def expected_speedup(self, cpu_mhz: float) -> float:
        """Predicted speedup of a phone at ``cpu_mhz`` over the reference.

        This is the quantity on the x-axis of Figure 6: ``A / S``.
        """
        if cpu_mhz <= 0:
            raise ValueError(f"cpu_mhz must be > 0, got {cpu_mhz!r}")
        return cpu_mhz / self.base_mhz


class RuntimePredictor:
    """Predicts ``c_ij`` for every (phone, task) pair and learns online.

    Parameters
    ----------
    profiles:
        One :class:`TaskProfile` per task name, from profiling on the
        slowest phone.
    alpha:
        EWMA weight for online updates in ``[0, 1]``.  After a phone
        reports a measured per-KB time ``m`` for a task, the estimate
        becomes ``(1 - alpha) * old + alpha * m``.
    """

    def __init__(self, profiles: dict[str, TaskProfile], alpha: float = 0.5) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"alpha must be in [0, 1], got {alpha!r}")
        self._profiles = dict(profiles)
        self._alpha = alpha
        # Learned overrides: (phone_id, task) -> ms/KB estimate.
        self._learned: dict[tuple[str, str], float] = {}

    @classmethod
    def from_reference_phone(
        cls,
        reference: PhoneSpec,
        base_times_ms_per_kb: dict[str, float],
        alpha: float = 0.5,
    ) -> "RuntimePredictor":
        """Build a predictor from per-task measurements on one phone."""
        profiles = {
            task: TaskProfile(task=task, base_ms_per_kb=t, base_mhz=reference.cpu_mhz)
            for task, t in base_times_ms_per_kb.items()
        }
        return cls(profiles, alpha=alpha)

    @property
    def alpha(self) -> float:
        return self._alpha

    @property
    def tasks(self) -> frozenset[str]:
        return frozenset(self._profiles)

    def profile(self, task: str) -> TaskProfile:
        try:
            return self._profiles[task]
        except KeyError:
            raise KeyError(f"no profile for task {task!r}") from None

    def predict_ms_per_kb(self, phone: PhoneSpec, task: str) -> float:
        """Current ``c_ij`` estimate for ``phone`` running ``task``.

        Returns the learned estimate if this pair has reported a runtime
        before, else the clock-scaled initial prediction.
        """
        learned = self._learned.get((phone.phone_id, task))
        if learned is not None:
            return learned
        return self.profile(task).scaled_ms_per_kb(phone.cpu_mhz)

    def observe(self, phone: PhoneSpec, task: str, measured_ms_per_kb: float) -> float:
        """Fold a reported local execution rate into the estimate.

        Returns the updated estimate.  Called by the central server when
        a phone reports a task completion along with the time the task
        actually took locally (Section 4.1, last paragraph).
        """
        if not math.isfinite(measured_ms_per_kb) or measured_ms_per_kb <= 0:
            raise ValueError(
                "measured_ms_per_kb must be finite and > 0, "
                f"got {measured_ms_per_kb!r}"
            )
        key = (phone.phone_id, task)
        old = self.predict_ms_per_kb(phone, task)
        new = (1.0 - self._alpha) * old + self._alpha * measured_ms_per_kb
        self._learned[key] = new
        return new

    def forget(self, phone_id: str | None = None) -> None:
        """Drop learned estimates (all of them, or one phone's)."""
        if phone_id is None:
            self._learned.clear()
            return
        self._learned = {
            key: value for key, value in self._learned.items() if key[0] != phone_id
        }

    def learned_pairs(self) -> dict[tuple[str, str], float]:
        """Snapshot of the (phone, task) pairs refined by observation."""
        return dict(self._learned)

    def load_learned(self, pairs: dict[tuple[str, str], float]) -> None:
        """Replace the learned estimates wholesale.

        The restore half of :meth:`learned_pairs`: a resumed campaign
        reinstates the predictor's memory from a checkpoint so prediction
        error keeps decaying across a crash instead of resetting.
        """
        for (phone_id, task), value in pairs.items():
            if not isinstance(phone_id, str) or not isinstance(task, str):
                raise ValueError(f"learned key must be (phone_id, task) strings, got {(phone_id, task)!r}")
            if not math.isfinite(value) or value <= 0:
                raise ValueError(
                    f"learned estimate for {(phone_id, task)!r} must be finite and > 0, got {value!r}"
                )
        self._learned = {
            (phone_id, task): float(value)
            for (phone_id, task), value in pairs.items()
        }
