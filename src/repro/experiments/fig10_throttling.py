"""Figure 10: charging times under different CPU schemes.

Paper anchors (HTC Sensation): ≈100 minutes to full charge with no
tasks; ≈135 minutes (+35 %) under continuous CPU load; with the MIMD
throttle the charge time is almost identical to the ideal case, at the
cost of ≈24.5 % extra computation time versus running continuously.
The HTC G2 shows no significant charging effect even under load.
"""

from __future__ import annotations

from ..analysis.tables import render_table
from ..power.battery import HTC_G2, HTC_SENSATION, PowerProfile
from ..power.charging import compute_penalty, simulate_charging
from ..power.throttle import ContinuousPolicy, MimdThrottle, NoTaskPolicy
from .base import ExperimentReport

__all__ = ["run", "charging_comparison"]


def charging_comparison(profile: PowerProfile, *, dt_s: float = 1.0):
    """(ideal, continuous, mimd) charging traces for one phone model."""
    ideal = simulate_charging(profile, NoTaskPolicy(), dt_s=dt_s)
    continuous = simulate_charging(profile, ContinuousPolicy(), dt_s=dt_s)
    mimd = simulate_charging(profile, MimdThrottle(), dt_s=dt_s)
    return ideal, continuous, mimd


def run(*, dt_s: float = 1.0) -> ExperimentReport:
    """Simulate the three charging schemes on both phone models."""
    rows = []
    measured: dict[str, float] = {}
    for profile in (HTC_SENSATION, HTC_G2):
        ideal, continuous, mimd = charging_comparison(profile, dt_s=dt_s)
        heavy_delay = continuous.duration_s / ideal.duration_s - 1.0
        mimd_delay = mimd.duration_s / ideal.duration_s - 1.0
        penalty = compute_penalty(mimd, continuous)
        rows.extend(
            (
                (
                    profile.name,
                    trace.policy_name,
                    f"{trace.duration_s / 60:.1f}",
                    f"{trace.duty_factor:.2f}",
                )
                for trace in (ideal, continuous, mimd)
            )
        )
        prefix = profile.name.replace("-", "_")
        measured[f"{prefix}_heavy_delay"] = heavy_delay
        measured[f"{prefix}_mimd_delay"] = mimd_delay
        measured[f"{prefix}_compute_penalty"] = penalty

    rendered = render_table(
        ("phone", "scheme", "full charge (min)", "CPU duty"),
        rows,
        title="Figure 10 — charging 0->100% under different schemes",
    )

    return ExperimentReport(
        experiment_id="fig10",
        title="Charging-profile preservation via MIMD throttling",
        paper_claim=(
            "Sensation: 100 min ideal, 135 min continuous (+35%), MIMD almost "
            "ideal with ~24.5% compute-time penalty; G2: no significant effect"
        ),
        measured=measured,
        rendered=rendered,
    )
