"""Figure 5: why bandwidth must be part of scheduling decisions.

The Section 3.1 experiment: a server ships 600 files to 6 phones with
*identical CPU clock speeds* but very different wireless bandwidths;
each phone finds the largest integer in its file and returns the
result.  Files go to idle phones first-come-first-served; when all
phones are busy, files queue.

Paper anchors: with all 6 phones, 90 % of files finish within 1200 ms
of being dispatched; dropping the two slowest-connection phones
improves the 90th percentile to ≈700 ms even though queueing delay
rises — i.e. using *more* phones made per-task latency worse, the
opposite of what happens in an Ethernet cluster.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from ..analysis.stats import EmpiricalCdf, percentile
from ..analysis.tables import render_cdf_series, render_table
from ..core.prediction import TaskProfile
from ..netmodel.measurement import measure_fleet
from ..workloads.mixes import REFERENCE_MHZ, fig5_testbed, fig5_workload
from .base import ExperimentReport

__all__ = ["run", "fifo_dispatch"]

#: Per-KB time of the "find the largest integer" scan on the reference
#: phone — a cheap linear pass, far lighter than the evaluation tasks.
_MAXINT_PROFILE = TaskProfile(
    task="maxint", base_ms_per_kb=3.0, base_mhz=REFERENCE_MHZ
)


@dataclass(frozen=True)
class FifoOutcome:
    """Result of one FIFO-dispatch run."""

    turnaround_ms: tuple[float, ...]
    drain_time_ms: float
    files_per_phone: dict[str, int]


def fifo_dispatch(
    service_ms_per_phone: dict[str, float], n_files: int
) -> FifoOutcome:
    """Work-conserving FIFO: each idle phone takes the next file.

    ``service_ms_per_phone`` is the constant per-file service time
    (copy + execute) of each phone; turnaround is measured from the
    moment a file is dispatched to a phone, matching the paper's
    observation that the 4-phone configuration lowers turnaround while
    raising queueing delay.
    """
    if n_files < 1:
        raise ValueError("n_files must be >= 1")
    if not service_ms_per_phone:
        raise ValueError("need at least one phone")
    heap = [(0.0, phone_id) for phone_id in sorted(service_ms_per_phone)]
    heapq.heapify(heap)
    turnarounds: list[float] = []
    counts = {phone_id: 0 for phone_id in service_ms_per_phone}
    drain = 0.0
    for _ in range(n_files):
        free_at, phone_id = heapq.heappop(heap)
        service = service_ms_per_phone[phone_id]
        finish = free_at + service
        turnarounds.append(service)
        counts[phone_id] += 1
        drain = max(drain, finish)
        heapq.heappush(heap, (finish, phone_id))
    return FifoOutcome(
        turnaround_ms=tuple(turnarounds),
        drain_time_ms=drain,
        files_per_phone=counts,
    )


def run(*, n_files: int = 600, file_kb: float = 100.0, seed: int = 5) -> ExperimentReport:
    """Run the 6-phone and 4-fast-phone halves of the experiment."""
    testbed = fig5_testbed(seed=seed)
    jobs = fig5_workload(n_files=n_files, file_kb=file_kb)
    b = measure_fleet(testbed.links)

    service = {
        phone.phone_id: jobs[0].executable_kb * b[phone.phone_id]
        + file_kb * (b[phone.phone_id] + _MAXINT_PROFILE.scaled_ms_per_kb(phone.cpu_mhz))
        for phone in testbed.phones
    }

    all_outcome = fifo_dispatch(service, n_files)
    fast_ids = sorted(service, key=lambda pid: service[pid])[:4]
    fast_outcome = fifo_dispatch(
        {pid: service[pid] for pid in fast_ids}, n_files
    )

    p90_all = percentile(list(all_outcome.turnaround_ms), 90.0)
    p90_fast = percentile(list(fast_outcome.turnaround_ms), 90.0)

    rendered = "\n\n".join(
        (
            render_table(
                ("phone", "b_i (ms/KB)", "service (ms/file)", "files done (6-phone run)"),
                [
                    (
                        pid,
                        f"{b[pid]:.1f}",
                        f"{service[pid]:.0f}",
                        all_outcome.files_per_phone[pid],
                    )
                    for pid in sorted(service)
                ],
                title="Figure 5 setup — identical CPUs, heterogeneous links",
            ),
            render_cdf_series(
                EmpiricalCdf(all_outcome.turnaround_ms).points(),
                label="turnaround ms (6 phones)",
            ),
            render_cdf_series(
                EmpiricalCdf(fast_outcome.turnaround_ms).points(),
                label="turnaround ms (4 fast phones)",
            ),
        )
    )

    return ExperimentReport(
        experiment_id="fig05",
        title="File processing times: all phones vs fast-link phones",
        paper_claim=(
            "6 phones: 90% of files < 1200 ms; 4 fast-link phones: 90th "
            "percentile ~700 ms, with higher queueing delay"
        ),
        measured={
            "p90_all_phones_ms": p90_all,
            "p90_fast_phones_ms": p90_fast,
            "drain_all_ms": all_outcome.drain_time_ms,
            "drain_fast_ms": fast_outcome.drain_time_ms,
        },
        rendered=rendered,
    )
