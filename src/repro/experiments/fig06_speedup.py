"""Figure 6: predicted vs measured speedup of the CPU-scaling model.

The predictor profiles each task once on the slowest phone (HTC G2,
806 MHz) and scales by clock ratio.  Figure 6 compares the *expected*
speedup ``X/806`` against the *measured* speedup ``t_s/t_i`` for every
phone and all three tasks: points cluster around the ``y = x`` line,
with a few phones measurably faster than their clock speed predicts
(the rightmost points above the line).
"""

from __future__ import annotations

import math

from ..analysis.tables import render_table
from ..analysis.validation import validation_summary
from ..sim.entities import FleetGroundTruth
from ..workloads.mixes import paper_task_profiles, paper_testbed
from .base import ExperimentReport

__all__ = ["run", "speedup_points"]


def speedup_points(
    *, seed: int = 2012, deviation_sigma: float = 0.04
) -> list[tuple[str, str, float, float]]:
    """(phone, task, expected speedup, measured speedup) per pair."""
    testbed = paper_testbed(seed=seed)
    profiles = paper_task_profiles()
    truth = FleetGroundTruth(
        profiles, deviation_sigma=deviation_sigma, seed=seed
    )
    reference = min(testbed.phones, key=lambda p: p.cpu_mhz)
    points = []
    for task, profile in sorted(profiles.items()):
        for phone in testbed.phones:
            expected = profile.expected_speedup(phone.cpu_mhz)
            measured = truth.measured_speedup(phone, reference, task)
            points.append((phone.phone_id, task, expected, measured))
    return points


def run(*, seed: int = 2012) -> ExperimentReport:
    """Regenerate the Fig. 6 scatter and its agreement statistics."""
    points = speedup_points(seed=seed)
    errors = [measured / expected - 1.0 for _, _, expected, measured in points]
    rms_error = math.sqrt(sum(e * e for e in errors) / len(errors))
    above = sum(1 for e in errors if e > 0)
    outliers = sum(1 for e in errors if e > 0.2)
    validation = validation_summary(
        [(expected, measured) for _, _, expected, measured in points]
    )

    rows = [
        (phone_id, task, f"{expected:.2f}", f"{measured:.2f}")
        for phone_id, task, expected, measured in points
        if task == "primes"  # one task's column keeps the table readable
    ]
    rendered = render_table(
        ("phone", "task", "expected speedup", "measured speedup"),
        rows,
        title="Figure 6 — expected (clock-ratio) vs measured speedup (primes)",
    )

    return ExperimentReport(
        experiment_id="fig06",
        title="Predicted vs measured task speedup",
        paper_claim=(
            "points cluster around y = x; a few phones measure faster than "
            "the clock-ratio prediction"
        ),
        measured={
            "pairs": float(len(points)),
            "rms_relative_error": rms_error,
            "fraction_above_line": above / len(points),
            "fraction_fast_outliers": outliers / len(points),
            "regression_slope": validation.slope,
            "r_squared_vs_identity": validation.r2,
            "mape": validation.mape,
        },
        rendered=rendered,
    )
