"""Figure 2: charging-interval statistics of the 15-user study.

Paper anchors: the median charging interval is ≈30 minutes by day and
≈7 hours at night, with fewer (but much longer) night intervals;
night-interval data transfer stays under 2 MB for ≈80 % of intervals;
users average at least 3 hours of *idle* night charging, with the most
regular users (3, 4, 8) at 8–9 hours.
"""

from __future__ import annotations

from ..analysis.stats import EmpiricalCdf
from ..analysis.tables import render_cdf_series, render_table
from ..profiling.analysis import (
    IDLE_TRANSFER_LIMIT_BYTES,
    extract_intervals,
    idle_night_hours_by_user,
    night_day_split,
)
from ..profiling.behavior import generate_study
from .base import ExperimentReport

__all__ = ["run"]

_MB = 1024 * 1024


def run(*, days: int = 28, seed: int = 31) -> ExperimentReport:
    """Generate the synthetic study and compute the Fig. 2a–c statistics."""
    logs = generate_study(days=days, seed=seed)
    intervals_by_user = {
        user_id: extract_intervals(records) for user_id, records in logs.items()
    }
    all_intervals = [
        interval
        for intervals in intervals_by_user.values()
        for interval in intervals
    ]
    night, day = night_day_split(all_intervals)
    if not night or not day:
        raise RuntimeError("study generated no night or no day intervals")

    night_cdf = EmpiricalCdf([interval.duration_hours for interval in night])
    day_cdf = EmpiricalCdf([interval.duration_hours for interval in day])
    transfer_cdf = EmpiricalCdf(
        [interval.bytes_transferred / _MB for interval in night]
    )
    idle_hours = idle_night_hours_by_user(intervals_by_user)

    mean_idle_values = [mean for mean, _ in idle_hours.values()]
    rows = [
        (user_id, f"{mean:.1f}", f"{std:.1f}")
        for user_id, (mean, std) in sorted(idle_hours.items())
    ]
    rendered = "\n\n".join(
        (
            render_cdf_series(
                night_cdf.points(), label="night interval hours"
            ),
            render_cdf_series(day_cdf.points(), label="day interval hours"),
            render_table(
                ("metric", "night", "day"),
                [
                    (
                        "interval count",
                        len(night),
                        len(day),
                    ),
                    (
                        "median duration (h)",
                        f"{night_cdf.median():.2f}",
                        f"{day_cdf.median():.2f}",
                    ),
                ],
                title="Figure 2a — charging intervals by period",
            ),
            render_table(
                ("threshold", "fraction of night intervals"),
                [
                    ("< 1 MB", f"{transfer_cdf.fraction_below(1.0):.2f}"),
                    ("< 2 MB", f"{transfer_cdf.fraction_below(2.0):.2f}"),
                    ("< 5 MB", f"{transfer_cdf.fraction_below(5.0):.2f}"),
                ],
                title="Figure 2b — data transferred during night intervals",
            ),
            render_table(
                ("user", "mean idle night hours", "std"),
                rows,
                title="Figure 2c — idle night charging per user "
                f"(idle = < {IDLE_TRANSFER_LIMIT_BYTES // _MB} MB)",
            ),
        )
    )

    return ExperimentReport(
        experiment_id="fig02",
        title="Charging-behaviour study (15 users)",
        paper_claim=(
            "median night interval ~7 h vs ~30 min by day; <2 MB transferred "
            "in 80% of night intervals; >=3 h idle night charging on average, "
            "8-9 h for the most regular users"
        ),
        measured={
            "median_night_hours": night_cdf.median(),
            "median_day_hours": day_cdf.median(),
            "night_intervals": float(len(night)),
            "day_intervals": float(len(day)),
            "fraction_night_under_2mb": transfer_cdf.fraction_below(2.0),
            "min_mean_idle_hours": min(mean_idle_values),
            "mean_idle_hours": sum(mean_idle_values) / len(mean_idle_values),
            "max_mean_idle_hours": max(mean_idle_values),
        },
        rendered=rendered,
    )
