"""Common experiment-driver scaffolding.

Every paper figure/table has a driver module exposing a ``run()`` that
returns an :class:`ExperimentReport`: the experiment id, what the paper
reports, what the reproduction measured, and a rendered text block with
the same rows/series as the paper's plot.  The benchmark harness and
the ``python -m repro.experiments`` entry point both consume these.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["ExperimentReport"]


@dataclass
class ExperimentReport:
    """Structured outcome of one experiment driver."""

    experiment_id: str
    title: str
    #: The anchor values the paper reports for this figure/table.
    paper_claim: str
    #: Key measured quantities, name -> value (machine-checkable).
    measured: dict[str, float] = field(default_factory=dict)
    #: Rendered tables/series mirroring the paper's plot.
    rendered: str = ""

    def __str__(self) -> str:
        lines = [
            f"=== {self.experiment_id}: {self.title} ===",
            f"paper: {self.paper_claim}",
        ]
        if self.measured:
            lines.append("measured:")
            for name, value in self.measured.items():
                lines.append(f"  {name} = {value:.4g}")
        if self.rendered:
            lines.append(self.rendered)
        return "\n".join(lines)
