"""Figure 12: prototype evaluation on the 18-phone testbed.

Three parts, as in the paper:

* **12a** — run the 150-task workload under the greedy scheduler and
  the two simple alternatives.  Paper anchors: greedy ≈1100 s measured
  makespan with the prediction only ≈20 s off; equal split 1720 s;
  round robin 1805 s (greedy ≈1.6× faster); the spread between the
  earliest- and last-finishing phone ≈20 % of the makespan (phones
  faster than their clock speed finish early).
* **12b** — CDF of the number of input partitions per task.  Paper
  anchor: ≈90 % of tasks stay unsplit even though only 33 % (the photo
  blurs) are atomic by definition.
* **12c** — re-run with three phones unplugged at random instants; the
  failed work is rescheduled at the next scheduling instant, adding
  ≈113 s beyond the original makespan.
"""

from __future__ import annotations

import random

from ..analysis.gantt import render_timeline
from ..analysis.stats import EmpiricalCdf
from ..analysis.tables import render_cdf_series, render_table
from ..core.baselines import EqualSplitScheduler, RoundRobinScheduler
from ..core.greedy import CwcScheduler
from ..core.prediction import RuntimePredictor
from ..netmodel.measurement import measure_fleet
from ..sim.entities import FleetGroundTruth
from ..sim.failures import FailurePlan, PlannedFailure
from ..sim.server import CentralServer, RunResult
from ..sim.validation import check_run_invariants
from ..workloads.mixes import (
    evaluation_workload,
    paper_task_profiles,
    paper_testbed,
)
from .base import ExperimentReport

__all__ = ["run", "run_scheduler", "run_with_failures"]


def _make_server(scheduler, *, seed: int, failure_plan: FailurePlan | None = None):
    testbed = paper_testbed(seed=seed)
    profiles = paper_task_profiles()
    truth = FleetGroundTruth(profiles, deviation_sigma=0.03, seed=seed)
    predictor = RuntimePredictor(profiles)
    measured_b = measure_fleet(testbed.links)
    server = CentralServer(
        testbed.phones,
        truth,
        predictor,
        scheduler,
        measured_b,
        failure_plan=failure_plan,
    )
    return server, testbed


def run_scheduler(scheduler, *, seed: int = 2012, workload_seed: int = 150) -> RunResult:
    """One full simulated run of the 150-task workload."""
    server, _ = _make_server(scheduler, seed=seed)
    jobs = evaluation_workload(seed=workload_seed)
    result = server.run(jobs)
    check_run_invariants(result, jobs)
    return result


def run_with_failures(
    *,
    seed: int = 2012,
    workload_seed: int = 150,
    n_failures: int = 3,
    failure_seed: int = 17,
) -> RunResult:
    """The Fig. 12c run: unplug ``n_failures`` phones mid-execution."""
    testbed = paper_testbed(seed=seed)
    rng = random.Random(failure_seed)
    victims = rng.sample([p.phone_id for p in testbed.phones], n_failures)
    # A no-failure dry run bounds the failure instants to the active window.
    baseline = run_scheduler(CwcScheduler(), seed=seed, workload_seed=workload_seed)
    horizon = baseline.measured_makespan_ms
    plan = FailurePlan(
        PlannedFailure(
            phone_id=victim,
            time_ms=rng.uniform(0.1, 0.7) * horizon,
            online=True,
        )
        for victim in victims
    )
    server, _ = _make_server(CwcScheduler(), seed=seed, failure_plan=plan)
    jobs = evaluation_workload(seed=workload_seed)
    return server.run(jobs)


def run(*, seed: int = 2012, workload_seed: int = 150) -> ExperimentReport:
    """Regenerate all three parts of Figure 12."""
    schedulers = (CwcScheduler(), EqualSplitScheduler(), RoundRobinScheduler())
    results: dict[str, RunResult] = {}
    for scheduler in schedulers:
        results[scheduler.name] = run_scheduler(
            scheduler, seed=seed, workload_seed=workload_seed
        )

    greedy = results["cwc-greedy"]
    greedy_makespan = greedy.measured_makespan_ms
    rows_a = []
    for name, result in results.items():
        rows_a.append(
            (
                name,
                f"{result.measured_makespan_ms / 1000:.0f}",
                f"{result.predicted_makespan_ms / 1000:.0f}",
                f"{result.measured_makespan_ms / greedy_makespan:.2f}x",
            )
        )

    # Phone finish-time spread under the greedy schedule (Fig. 12a text).
    finishes = [
        greedy.trace.finish_time_ms(pid)
        for pid in greedy.trace.phone_ids()
        if greedy.trace.finish_time_ms(pid) > 0
    ]
    spread = (max(finishes) - min(finishes)) / greedy_makespan

    # 12b: partition counts under each scheduler.
    partition_counts = greedy.rounds[0].schedule.partition_counts()
    unsplit = sum(1 for c in partition_counts.values() if c == 0) / len(
        partition_counts
    )
    equal_split_counts = results["equal-split"].rounds[0].schedule.partition_counts()
    equal_split_mean_partitions = sum(equal_split_counts.values()) / len(
        equal_split_counts
    )

    # 12c: failure run.
    failure_result = run_with_failures(seed=seed, workload_seed=workload_seed)
    overhead_ms = failure_result.reschedule_overhead_ms

    # A subset of phones keeps the timeline readable, as in the paper.
    timeline_ids = greedy.trace.phone_ids()[:8]
    rendered = "\n\n".join(
        (
            render_table(
                ("scheduler", "measured makespan (s)", "predicted (s)", "vs greedy"),
                rows_a,
                title="Figure 12a — makespans of the three schedulers",
            ),
            "Figure 12a — greedy task-execution timeline (8 phones)\n"
            + render_timeline(greedy.trace, phone_ids=timeline_ids),
            "Figure 12c — timeline with 3 injected failures\n"
            + render_timeline(
                failure_result.trace,
                phone_ids=failure_result.trace.phone_ids()[:8],
            ),
            render_table(
                ("statistic", "value"),
                [
                    ("tasks unsplit under greedy", f"{unsplit * 100:.0f}%"),
                    (
                        "mean partitions per task (equal split)",
                        f"{equal_split_mean_partitions:.1f}",
                    ),
                    ("phone finish-time spread", f"{spread * 100:.0f}% of makespan"),
                ],
                title="Figure 12b — input partitioning",
            ),
            "Figure 12b — CDF of input partitions per task (greedy)\n"
            + render_cdf_series(
                EmpiricalCdf(
                    [float(count) for count in partition_counts.values()]
                ).points(),
                label="partitions",
                sample_fractions=(0.25, 0.5, 0.75, 0.9, 0.95, 1.0),
            ),
            render_table(
                ("statistic", "value"),
                [
                    ("failures injected", len(failure_result.trace.failures)),
                    (
                        "makespan with failures (s)",
                        f"{failure_result.measured_makespan_ms / 1000:.0f}",
                    ),
                    ("rescheduling overhead (s)", f"{overhead_ms / 1000:.0f}"),
                    ("scheduling rounds", len(failure_result.rounds)),
                    ("unfinished jobs", len(failure_result.unfinished_jobs)),
                ],
                title="Figure 12c — failure recovery",
            ),
        )
    )

    prediction_error = abs(
        greedy.predicted_makespan_ms - greedy_makespan
    )
    return ExperimentReport(
        experiment_id="fig12",
        title="Prototype evaluation (18 phones, 150 tasks)",
        paper_claim=(
            "greedy ~1100 s (prediction within ~20 s), equal split 1720 s, "
            "round robin 1805 s (~1.6x); ~90% of tasks unsplit; 3-phone "
            "failure run adds ~113 s of rescheduling overhead"
        ),
        measured={
            "greedy_makespan_s": greedy_makespan / 1000,
            "greedy_prediction_error_s": prediction_error / 1000,
            "equal_split_ratio": results["equal-split"].measured_makespan_ms
            / greedy_makespan,
            "round_robin_ratio": results["round-robin"].measured_makespan_ms
            / greedy_makespan,
            "unsplit_fraction": unsplit,
            "finish_spread_fraction": spread,
            "reschedule_overhead_s": overhead_ms / 1000,
        },
        rendered=rendered,
    )
