"""Figure 3: availability of smartphones for CWC task scheduling.

Paper anchors: across all users, fewer than 30 % of unplug ("failure")
events fall between midnight and 8 AM (Fig. 3a); per-user unplug
likelihood is very low between midnight and 6 AM, rises between 6 and
9 AM as people wake up, and stays high through the day (Figs. 3b, 3c).
"""

from __future__ import annotations

from ..analysis.tables import render_table
from ..profiling.analysis import hourly_unplug_likelihood, unplug_hour_cdf
from ..profiling.behavior import generate_study
from .base import ExperimentReport

__all__ = ["run"]


def run(
    *,
    days: int = 28,
    seed: int = 31,
    representative_users: tuple[str, str] = ("user-03", "user-07"),
) -> ExperimentReport:
    """Compute the unplug-activity profiles of Figure 3."""
    logs = generate_study(days=days, seed=seed)
    all_records = [record for records in logs.values() for record in records]

    cdf = unplug_hour_cdf(all_records)
    cdf_rows = [(f"{hour:02d}:00", f"{cdf[hour]:.2f}") for hour in range(24)]

    profiles = {}
    for user_id in representative_users:
        if user_id not in logs:
            raise KeyError(f"study has no user {user_id!r}")
        profiles[user_id] = hourly_unplug_likelihood(logs[user_id], days=days)

    profile_rows = [
        (f"{hour:02d}:00",)
        + tuple(f"{profiles[user][hour]:.2f}" for user in representative_users)
        for hour in range(24)
    ]

    night_likelihoods = [
        profiles[user][hour]
        for user in representative_users
        for hour in range(0, 6)
    ]
    morning_likelihoods = [
        profiles[user][hour]
        for user in representative_users
        for hour in range(6, 9)
    ]

    rendered = "\n\n".join(
        (
            render_table(
                ("by end of hour", "cumulative unplug fraction"),
                cdf_rows,
                title="Figure 3a — CDF of unplug events over the day (all users)",
            ),
            render_table(
                ("hour",) + representative_users,
                profile_rows,
                title="Figures 3b/3c — per-user unplug likelihood by hour",
            ),
        )
    )

    return ExperimentReport(
        experiment_id="fig03",
        title="Unplug (failure) activity by hour",
        paper_claim=(
            "<30% of unplug events before 8 AM; per-user likelihood near zero "
            "between midnight and 6 AM, rising between 6 and 9 AM"
        ),
        measured={
            "cumulative_unplug_by_8am": cdf[7],
            "max_night_likelihood_representatives": max(night_likelihoods),
            "max_morning_likelihood_representatives": max(morning_likelihoods),
        },
        rendered=rendered,
    )
