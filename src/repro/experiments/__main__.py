"""Command-line entry point: ``python -m repro.experiments [ids...]``.

With no arguments, runs every experiment; otherwise runs the named ids
(e.g. ``python -m repro.experiments fig12 fig13``).
"""

from __future__ import annotations

import sys

from .registry import EXPERIMENTS, run_experiment


def main(argv: list[str]) -> int:
    ids = argv or sorted(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}", file=sys.stderr)
        print(f"known: {', '.join(sorted(EXPERIMENTS))}", file=sys.stderr)
        return 2
    for experiment_id in ids:
        report = run_experiment(experiment_id)
        print(report)
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
