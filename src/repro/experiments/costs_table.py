"""Section 3.2's energy-cost comparison table.

Paper anchors: an Intel Core 2 Duo server (26.8 W, PUE 2.5) costs
≈$74.5/year in energy at 12.7 ¢/kWh; a Nehalem server up to ≈$689/year;
a smartphone (1.2 W, no cooling) ≈$1.33/year — an order of magnitude
cheaper, and ≈20 phones fit in one server's energy envelope.
"""

from __future__ import annotations

from ..analysis.costs import (
    CORE2DUO_SERVER,
    NEHALEM_SERVER,
    TEGRA3_PHONE,
    EnergyCostModel,
    paper_cost_table,
)
from ..analysis.tables import render_table
from .base import ExperimentReport

__all__ = ["run"]


def run() -> ExperimentReport:
    """Regenerate the Section 3.2 cost table."""
    model = EnergyCostModel()
    rows = [
        (name, f"{watts:.1f}", f"${cost:.2f}")
        for name, watts, cost in paper_cost_table(model)
    ]
    rendered = render_table(
        ("device", "effective watts (incl. PUE)", "energy cost / year"),
        rows,
        title="Section 3.2 — yearly energy costs (12.7 c/kWh)",
    )

    return ExperimentReport(
        experiment_id="costs",
        title="Energy-cost comparison: servers vs smartphones",
        paper_claim=(
            "Core 2 Duo server ~$74.5/yr; Nehalem up to ~$689/yr; smartphone "
            "~$1.33/yr; ~20 phones per server energy envelope"
        ),
        measured={
            "core2duo_server_per_year": model.yearly_cost(CORE2DUO_SERVER),
            "nehalem_server_per_year": model.yearly_cost(NEHALEM_SERVER),
            "phone_per_year": model.yearly_cost(TEGRA3_PHONE),
            "phones_per_core2duo_envelope": model.replacement_fleet_size(
                CORE2DUO_SERVER, TEGRA3_PHONE
            ),
        },
        rendered=rendered,
    )
