"""Figure 4: WiFi network stability at the three houses.

Paper anchor: 600-second iperf sessions from charging phones at three
locations show very low bandwidth variation for WiFi links, so
infrequent periodic measurements suffice; cellular links are noted to
be far less stable.
"""

from __future__ import annotations

from ..analysis.tables import render_table
from ..core.model import NetworkTechnology
from ..netmodel.links import WirelessLink
from ..netmodel.measurement import measure_link
from .base import ExperimentReport

__all__ = ["run"]

_LOCATIONS = (
    ("house-1 (802.11g, interference)", NetworkTechnology.WIFI_G, 0.75),
    ("house-2 (802.11g, interference)", NetworkTechnology.WIFI_G, 0.85),
    ("house-3 (802.11a, clean)", NetworkTechnology.WIFI_A, 1.0),
)


def run(*, duration_s: float = 600.0, seed: int = 4) -> ExperimentReport:
    """Run the 600 s bandwidth test at each house, plus a cellular foil."""
    rows = []
    wifi_cvs = []
    for index, (label, technology, interference) in enumerate(_LOCATIONS):
        link = WirelessLink.for_technology(
            technology, interference_factor=interference, seed=seed + index
        )
        measurement = measure_link(link, duration_s=duration_s)
        wifi_cvs.append(measurement.coefficient_of_variation)
        rows.append(
            (
                label,
                f"{measurement.mean_kbps:.0f}",
                f"{measurement.std_kbps:.1f}",
                f"{measurement.coefficient_of_variation * 100:.1f}%",
            )
        )

    cellular = measure_link(
        WirelessLink.for_technology(NetworkTechnology.THREE_G, seed=seed + 99),
        duration_s=duration_s,
    )
    rows.append(
        (
            "3G cellular (for contrast)",
            f"{cellular.mean_kbps:.0f}",
            f"{cellular.std_kbps:.1f}",
            f"{cellular.coefficient_of_variation * 100:.1f}%",
        )
    )

    rendered = render_table(
        ("location / link", "mean KB/s", "std KB/s", "coeff. of variation"),
        rows,
        title=f"Figure 4 — {duration_s:.0f} s iperf sessions while charging",
    )

    return ExperimentReport(
        experiment_id="fig04",
        title="WiFi bandwidth stability",
        paper_claim=(
            "WiFi bandwidth variation over 600 s is very low at all three "
            "houses; cellular links are much less stable"
        ),
        measured={
            "max_wifi_cv": max(wifi_cvs),
            "cellular_cv": cellular.coefficient_of_variation,
        },
        rendered=rendered,
    )
