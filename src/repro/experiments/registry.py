"""Registry of all experiment drivers, keyed by experiment id.

``python -m repro.experiments`` (see ``__main__``) runs any subset and
prints the reports; the benchmark harness imports the same entries so
benches and manual runs can never drift apart.
"""

from __future__ import annotations

from collections.abc import Callable

from . import (
    costs_table,
    fig01_coremark,
    fig02_charging,
    fig03_availability,
    fig04_wifi_stability,
    fig05_bandwidth_variability,
    fig06_speedup,
    fig10_throttling,
    fig11_testbed,
    fig12_prototype,
    fig13_lp_gap,
)
from .base import ExperimentReport

__all__ = ["EXPERIMENTS", "run_experiment", "run_all"]

EXPERIMENTS: dict[str, Callable[[], ExperimentReport]] = {
    "fig01": fig01_coremark.run,
    "fig02": fig02_charging.run,
    "fig03": fig03_availability.run,
    "fig04": fig04_wifi_stability.run,
    "fig05": fig05_bandwidth_variability.run,
    "fig06": fig06_speedup.run,
    "fig10": fig10_throttling.run,
    "fig11": fig11_testbed.run,
    "fig12": fig12_prototype.run,
    "fig13": fig13_lp_gap.run,
    "costs": costs_table.run,
}


def run_experiment(experiment_id: str) -> ExperimentReport:
    """Run one experiment by id (e.g. ``"fig12"``)."""
    try:
        driver = EXPERIMENTS[experiment_id]
    except KeyError:
        known = ", ".join(sorted(EXPERIMENTS))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {known}"
        ) from None
    return driver()


def run_all() -> list[ExperimentReport]:
    """Run every experiment in id order."""
    return [EXPERIMENTS[key]() for key in sorted(EXPERIMENTS)]
