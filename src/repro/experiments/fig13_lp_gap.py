"""Figure 13: greedy scheduler vs the LP-relaxation lower bound.

The paper generates 1000 random configurations — ``b_i`` uniform in
[1, 70] ms/KB (the measured extremes), ``c_ij`` from the testbed
phones, the same 150-task workload — and compares the greedy makespan
with the LP relaxation's.  Anchor: the greedy median is ≈18 % worse
than the (loose) lower bound, i.e. within ≈18 % of optimal or better.
"""

from __future__ import annotations

import random

from ..analysis.stats import EmpiricalCdf, percentile
from ..analysis.tables import render_cdf_series, render_table
from ..core.greedy import CwcScheduler
from ..core.instance import SchedulingInstance
from ..core.lp_bound import solve_relaxed_makespan
from ..core.prediction import RuntimePredictor
from ..workloads.mixes import (
    evaluation_workload,
    paper_task_profiles,
    paper_testbed,
)
from .base import ExperimentReport

__all__ = ["run", "random_configuration_gaps"]


def random_configuration_gaps(
    *,
    configurations: int = 1000,
    seed: int = 13,
    workload_seed: int = 150,
    b_range_ms: tuple[float, float] = (1.0, 70.0),
) -> list[tuple[float, float]]:
    """(greedy makespan, relaxed makespan) per random configuration."""
    if configurations < 1:
        raise ValueError("configurations must be >= 1")
    testbed = paper_testbed()
    jobs = evaluation_workload(seed=workload_seed)
    predictor = RuntimePredictor(paper_task_profiles())
    scheduler = CwcScheduler()
    rng = random.Random(seed)
    pairs: list[tuple[float, float]] = []
    for _ in range(configurations):
        b = {
            phone.phone_id: rng.uniform(*b_range_ms) for phone in testbed.phones
        }
        instance = SchedulingInstance.build(jobs, testbed.phones, b, predictor)
        greedy_makespan = scheduler.schedule(instance).predicted_makespan_ms(
            instance
        )
        relaxed = solve_relaxed_makespan(instance).makespan_ms
        pairs.append((greedy_makespan, relaxed))
    return pairs


def run(*, configurations: int = 200, seed: int = 13) -> ExperimentReport:
    """Regenerate the Fig. 13 CDFs and the median optimality gap.

    Defaults to 200 configurations (≈1 minute); pass 1000 to match the
    paper exactly — the statistics are stable well before that.
    """
    pairs = random_configuration_gaps(configurations=configurations, seed=seed)
    gaps = [greedy / relaxed - 1.0 for greedy, relaxed in pairs]
    violations = sum(1 for greedy, relaxed in pairs if greedy < relaxed - 1e-6)

    greedy_cdf = EmpiricalCdf([greedy / 1000 for greedy, _ in pairs])
    relaxed_cdf = EmpiricalCdf([relaxed / 1000 for _, relaxed in pairs])

    rendered = "\n\n".join(
        (
            render_cdf_series(greedy_cdf.points(), label="greedy makespan (s)"),
            render_cdf_series(relaxed_cdf.points(), label="relaxed makespan (s)"),
            render_table(
                ("statistic", "value"),
                [
                    ("configurations", len(pairs)),
                    ("median gap", f"{percentile(gaps, 50.0) * 100:.1f}%"),
                    ("p90 gap", f"{percentile(gaps, 90.0) * 100:.1f}%"),
                    ("bound violations", violations),
                ],
                title="Figure 13 — greedy vs LP-relaxation makespans",
            ),
        )
    )

    return ExperimentReport(
        experiment_id="fig13",
        title="Scheduler optimality gap over random configurations",
        paper_claim=(
            "median greedy makespan ~18% above the LP-relaxation lower bound "
            "over 1000 random b_i configurations"
        ),
        measured={
            "configurations": float(len(pairs)),
            "median_gap": percentile(gaps, 50.0),
            "p90_gap": percentile(gaps, 90.0),
            "max_gap": max(gaps),
            "bound_violations": float(violations),
        },
        rendered=rendered,
    )
