"""Figure 1: benchmarking smartphone CPUs against the Intel Core 2 Duo.

The paper's claims, read off the published-CoreMark bar chart:
the Nvidia Tegra 3 outperforms the Core 2 Duo, while the Core 2 Duo
outperforms every other smartphone CPU by more than 50 %.
"""

from __future__ import annotations

from ..analysis.tables import render_table
from ..profiling.coremark import PUBLISHED_SCORES, coremark_ratios, python_coremark
from .base import ExperimentReport

__all__ = ["run"]

_REFERENCE = "Intel Core 2 Duo (T7500)"


def run(*, run_microbench: bool = False) -> ExperimentReport:
    """Regenerate the Figure 1 comparison table.

    ``run_microbench`` additionally times the pure-Python
    CoreMark-flavoured kernels on the host (useful for relative-speed
    sanity, not for comparing against the published numbers).
    """
    ratios = coremark_ratios()
    rows = [
        (score.cpu, f"{score.score:,.0f}", f"{ratios[score.cpu]:.2f}x")
        for score in sorted(PUBLISHED_SCORES, key=lambda s: -s.score)
    ]
    rendered = render_table(
        ("CPU", "CoreMark score", "vs Core 2 Duo"),
        rows,
        title="Figure 1 — published CoreMark scores",
    )

    tegra3_ratio = ratios["Nvidia Tegra 3"]
    others = [
        ratio
        for cpu, ratio in ratios.items()
        if cpu not in (_REFERENCE, "Nvidia Tegra 3")
    ]
    measured = {
        "tegra3_vs_core2duo": tegra3_ratio,
        "best_other_vs_core2duo": max(others),
        "core2duo_margin_over_others": 1.0 / max(others),
    }
    if run_microbench:
        measured["host_python_coremark_iters_per_s"] = python_coremark()

    return ExperimentReport(
        experiment_id="fig01",
        title="Smartphone CPUs vs Intel Core 2 Duo (CoreMark)",
        paper_claim=(
            "Tegra 3 outperforms the Core 2 Duo; the Core 2 Duo beats the "
            "other smartphone CPUs by more than 50%"
        ),
        measured=measured,
        rendered=rendered,
    )
