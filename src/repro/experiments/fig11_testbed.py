"""Figure 11: the phone-location map — i.e. the testbed layout.

The paper's Figure 11 is a map of the three houses the 18 phones were
distributed across.  The reproducible content is the layout itself:
three houses within a 2-mile radius, six phones each, two on the
house's WiFi (802.11g at two interference-prone houses, 802.11a at the
clean one) and four on cellular technologies from EDGE to 4G.  This
driver renders that layout and verifies its invariants.
"""

from __future__ import annotations

from ..analysis.tables import render_table
from ..core.model import NetworkTechnology
from ..netmodel.measurement import measure_fleet
from ..workloads.mixes import paper_testbed
from .base import ExperimentReport

__all__ = ["run"]

_WIFI = {NetworkTechnology.WIFI_A, NetworkTechnology.WIFI_G}


def run(*, seed: int = 2012) -> ExperimentReport:
    """Render the 18-phone, 3-house deployment of Figure 11."""
    testbed = paper_testbed(seed=seed)
    b = measure_fleet(testbed.links)

    rows = []
    houses: dict[str, list] = {}
    for phone in testbed.phones:
        houses.setdefault(phone.location, []).append(phone)
    for house in sorted(houses):
        for phone in houses[house]:
            rows.append(
                (
                    house,
                    phone.phone_id,
                    f"{phone.cpu_mhz:.0f} MHz",
                    phone.network.value,
                    f"{b[phone.phone_id]:.1f}",
                )
            )

    rendered = render_table(
        ("house", "phone", "CPU", "network", "b_i (ms/KB)"),
        rows,
        title="Figure 11 — phone deployment across the three houses",
    )

    wifi_per_house = {
        house: sum(1 for p in phones if p.network in _WIFI)
        for house, phones in houses.items()
    }
    return ExperimentReport(
        experiment_id="fig11",
        title="Testbed deployment map",
        paper_claim=(
            "18 phones across 3 houses within a 2-mile radius; 2 WiFi + 4 "
            "cellular (EDGE to 4G) per house; 802.11a clean at one house, "
            "802.11g with interference at the other two"
        ),
        measured={
            "houses": float(len(houses)),
            "phones": float(len(testbed.phones)),
            "wifi_per_house": float(
                sum(wifi_per_house.values()) / len(wifi_per_house)
            ),
            "b_min_ms_per_kb": min(b.values()),
            "b_max_ms_per_kb": max(b.values()),
        },
        rendered=rendered,
    )
