"""Experiment drivers: one module per paper figure/table.

See DESIGN.md's experiment index for the figure → module → bench map,
and EXPERIMENTS.md for paper-reported vs measured values.
"""

from .base import ExperimentReport
from .registry import EXPERIMENTS, run_all, run_experiment
from .report import generate_markdown_report

__all__ = [
    "EXPERIMENTS",
    "ExperimentReport",
    "generate_markdown_report",
    "run_all",
    "run_experiment",
]
