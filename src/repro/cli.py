"""Command-line interface: ``python -m repro <command>``.

Nine commands cover the operator workflows:

* ``experiments`` — run paper-figure drivers, print their reports, and
  optionally write a markdown report;
* ``schedule`` — compute a schedule for a fleet + job queue given as
  JSON files (the deployable path: measure, schedule, ship);
* ``study`` — generate a synthetic charging-behaviour study and print
  the Figure 2 summary (optionally writing the raw logs);
* ``simulate`` — run the full 18-phone prototype simulation, with
  optional random unplug failures or a full chaos plan (``--chaos`` /
  ``--chaos-seed``), optional server hardening (``--harden`` /
  ``--verify``), and print the night's summary plus, when chaos or
  defences are in play, the resilience report; ``--nights N`` switches
  to a multi-night continuous campaign with night-boundary checkpoints
  (``--checkpoint-dir`` / ``--resume`` / ``--kill-after-night``),
  fleet churn (``--churn``), and a capacity-planning report;
* ``whatif`` — fleet sizing: how many phones meet a makespan deadline;
* ``power`` — charging curves under no-task / continuous / MIMD;
* ``report`` — render a telemetry RunReport bundle written by
  ``simulate --telemetry DIR`` (top-N slowest phones, fault counts,
  round-latency percentiles);
* ``trace`` — the span flight recorder: capture a traced fuzz
  scenario (``--seed``, optionally ``--pods N`` for the sharded
  scheduler), validate the span invariants and the Chrome trace-event
  export, print the top-N self-time table and optionally the critical
  path, and write ``trace.json`` + ``profile.txt`` (``--out DIR``);
  or point it at an existing bundle directory to render its
  ``trace.json``;
* ``fuzz`` — deterministic scenario fuzzing: seed-derived random
  fleets, job mixes, arrivals, and chaos plans run through the full
  simulation under the invariant oracle; failures shrink to minimal
  replayable ``fuzz-<seed>.json`` artifacts (``--replay``),
  ``--differential N`` cross-checks the packing kernels on N fuzzed
  instances, ``--sharded N`` cross-checks the pod-parallel scheduler
  against the monolithic one, and ``--crash-restore``
  kill/restore-drills each scenario through the durability layer,
  asserting byte-identical recovery.

``schedule`` and ``simulate`` take ``--pods N|auto`` +
``--pod-assign lp|greedy|hash`` to shard the fleet into concurrently
solved pods (the greedy scheduler only; ``--pods 1`` is byte-identical
to the monolithic search).

Commands accept ``--output`` to write machine-readable results so they
can feed other tools.
"""

from __future__ import annotations

import argparse
import json
import random
import sys

from .analysis.stats import EmpiricalCdf
from .core.baselines import EqualSplitScheduler, RoundRobinScheduler
from .core.greedy import CwcScheduler
from .core.instance import SchedulingInstance
from .core.prediction import RuntimePredictor, TaskProfile
from .core.serialize import (
    job_from_dict,
    phone_from_dict,
    schedule_to_dict,
)
from .experiments.registry import EXPERIMENTS, run_experiment
from .netmodel.measurement import measure_fleet
from .profiling.analysis import extract_intervals, night_day_split
from .profiling.behavior import generate_study
from .profiling.logs import serialize_log
from .sim.chaos import ChaosMonkey, ChaosPlan, ResiliencePolicy
from .sim.entities import FleetGroundTruth
from .sim.failures import FailurePlan, PlannedFailure
from .sim.metrics import compute_resilience_report
from .sim.server import CentralServer
from .workloads.mixes import (
    evaluation_workload,
    paper_task_profiles,
    paper_testbed,
)

__all__ = ["main", "build_parser"]

_SCHEDULERS = {
    "greedy": CwcScheduler,
    "equal-split": EqualSplitScheduler,
    "round-robin": RoundRobinScheduler,
}


def _batch_width(text: str):
    """``--batch-width`` value: 'auto' or a positive int."""
    if text == "auto":
        return text
    try:
        width = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'auto' or a positive integer, got {text!r}"
        ) from None
    if width < 1:
        raise argparse.ArgumentTypeError("batch width must be >= 1")
    return width


def _shared_mem(text: str):
    """``--shared-mem`` value: 'auto', 'on', or 'off'."""
    if text == "auto":
        return text
    if text in ("on", "off"):
        return text == "on"
    raise argparse.ArgumentTypeError(
        f"expected 'auto', 'on', or 'off', got {text!r}"
    )


def _pods(text: str):
    """``--pods`` value: 'auto' or a positive int."""
    if text == "auto":
        return text
    try:
        count = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected 'auto' or a positive integer, got {text!r}"
        ) from None
    if count < 1:
        raise argparse.ArgumentTypeError("pod count must be >= 1")
    return count


def _add_pod_arguments(parser) -> None:
    """Fleet-sharding knobs shared by ``schedule`` and ``simulate``."""
    parser.add_argument(
        "--pods", type=_pods, metavar="N|auto",
        help="shard the fleet into N pods solved concurrently and "
        "coordinated by a global capacity search (greedy scheduler "
        "only; 'auto' sizes the pod count from the CPU budget, and "
        "--pods 1 is byte-identical to the monolithic scheduler)",
    )
    parser.add_argument(
        "--pod-assign", choices=("lp", "greedy", "hash"),
        default="greedy",
        help="job-to-pod splitter: LP-guided ('lp'), longest-"
        "processing-time greedy ('greedy', default), or stable "
        "hashing ('hash'); ignored without --pods",
    )


def _add_probe_arguments(parser) -> None:
    """Speculative-probe knobs shared by ``schedule`` and ``simulate``."""
    parser.add_argument(
        "--probe-workers", type=int, metavar="N",
        help="probe candidate capacities speculatively on N worker "
        "processes (greedy scheduler only; schedules are identical to "
        "the serial search)",
    )
    parser.add_argument(
        "--batch-width", type=_batch_width, default="auto", metavar="K",
        help="candidate capacities probed per speculative block "
        "('auto' sizes the block from the worker pool; ignored without "
        "--probe-workers)",
    )
    parser.add_argument(
        "--shared-mem", type=_shared_mem, default="auto",
        metavar="auto|on|off",
        help="publish the dense cost matrix to probe workers through "
        "POSIX shared memory instead of pickling it per worker "
        "(default auto: on whenever the pool is active)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser for all four subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CWC (Computing While Charging) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    experiments = sub.add_parser(
        "experiments", help="run paper-figure experiment drivers"
    )
    experiments.add_argument(
        "ids",
        nargs="*",
        help=f"experiment ids (default: all of {', '.join(sorted(EXPERIMENTS))})",
    )
    experiments.add_argument(
        "--output", help="additionally write a markdown report here"
    )

    schedule = sub.add_parser(
        "schedule", help="compute a schedule from fleet/jobs JSON files"
    )
    schedule.add_argument("--phones", required=True, help="phones JSON file")
    schedule.add_argument("--jobs", required=True, help="jobs JSON file")
    schedule.add_argument(
        "--b", help="optional {phone_id: b_ms_per_kb} JSON file; "
        "defaults to simulated bandwidth measurements by network type",
    )
    schedule.add_argument(
        "--profiles",
        help="optional {task: {base_ms_per_kb, base_mhz}} JSON file; "
        "defaults to the paper's task profiles",
    )
    schedule.add_argument(
        "--scheduler", choices=sorted(_SCHEDULERS), default="greedy"
    )
    schedule.add_argument(
        "--kernel", choices=("auto", "python", "numpy"), default="auto",
        help="packing backend for the capacity search (greedy scheduler "
        "only; both produce byte-identical schedules, 'auto' picks by "
        "instance size)",
    )
    _add_probe_arguments(schedule)
    _add_pod_arguments(schedule)
    schedule.add_argument("--output", help="write the schedule as JSON here")

    study = sub.add_parser(
        "study", help="generate a synthetic charging-behaviour study"
    )
    study.add_argument("--days", type=int, default=28)
    study.add_argument("--seed", type=int, default=31)
    study.add_argument("--output", help="write raw logs (TSV) here")

    simulate = sub.add_parser(
        "simulate", help="run the full prototype simulation"
    )
    simulate.add_argument("--seed", type=int, default=2012)
    simulate.add_argument(
        "--failures", type=int, default=0, help="random phones to unplug"
    )
    simulate.add_argument(
        "--scheduler", choices=sorted(_SCHEDULERS), default="greedy"
    )
    simulate.add_argument(
        "--chaos",
        help="chaos spec JSON file (the ChaosPlan.to_dict format): "
        "failures, slowdowns, bandwidth, crashes, corruptions",
    )
    simulate.add_argument(
        "--chaos-seed", type=int,
        help="sample a chaos plan from this seed (flapping, stragglers, "
        "degraded links, crashes, corruptions) and inject it",
    )
    simulate.add_argument(
        "--chaos-duration-s", type=float, default=600.0,
        help="window (seconds) a sampled chaos plan spreads its faults "
        "over (default: 600)",
    )
    simulate.add_argument(
        "--harden", action="store_true",
        help="enable the resilient server profile: straggler detection "
        "with speculation, dispatch timeouts, bounded retries",
    )
    simulate.add_argument(
        "--verify", action="store_true",
        help="verify every result by duplicate execution (implies --harden)",
    )
    simulate.add_argument(
        "--warm-start", action="store_true",
        help="warm-start each rescheduling instant's capacity search "
        "from the previous round's capacity (greedy scheduler only; "
        "schedules are unchanged, packer passes drop)",
    )
    simulate.add_argument(
        "--kernel", choices=("auto", "python", "numpy"), default="auto",
        help="packing backend for the capacity search (greedy scheduler "
        "only; both produce byte-identical schedules, 'auto' picks by "
        "instance size)",
    )
    _add_probe_arguments(simulate)
    _add_pod_arguments(simulate)
    simulate.add_argument("--output", help="write the run summary JSON here")
    simulate.add_argument(
        "--telemetry", metavar="DIR",
        help="arm the unified telemetry subsystem and write the "
        "RunReport bundle (report.json, events.jsonl, series CSVs, "
        "prometheus.txt) to DIR",
    )
    simulate.add_argument(
        "--trace", action="store_true",
        help="also arm the span tracer (requires --telemetry): the "
        "bundle gains trace.json (Chrome trace-event, Perfetto-"
        "loadable) and profile.txt (self-time table + critical path)",
    )
    simulate.add_argument(
        "--nights", type=int, metavar="N",
        help="run a continuous multi-night campaign (Poisson arrivals, "
        "fleet churn, night-boundary checkpoints) instead of a single "
        "run, and print the capacity-planning report",
    )
    simulate.add_argument(
        "--checkpoint-dir", metavar="DIR",
        help="durable snapshot store for night-boundary checkpoints "
        "(campaign mode only)",
    )
    simulate.add_argument(
        "--resume", action="store_true",
        help="restore the latest campaign checkpoint from "
        "--checkpoint-dir and continue instead of starting over",
    )
    simulate.add_argument(
        "--kill-after-night", type=int, metavar="K",
        help="crash drill: abort the campaign after night K completes "
        "and its checkpoint is durable (resume later with --resume)",
    )
    simulate.add_argument(
        "--churn", action="store_true",
        help="enable nightly fleet churn: departures, enrollments, "
        "charging-habit drift (campaign mode only)",
    )
    simulate.add_argument(
        "--arrival-rate", type=float, default=40.0, metavar="PER_HOUR",
        help="Poisson rate shaping how the night's jobs spread over "
        "the charging window (campaign mode; default: 40/h)",
    )
    simulate.add_argument(
        "--jobs-per-night", type=int, default=12, metavar="N",
        help="jobs entering the stream each night (campaign mode; "
        "default: 12) — the capacity-planning volume knob",
    )

    report_cmd = sub.add_parser(
        "report", help="render a telemetry RunReport bundle"
    )
    report_cmd.add_argument(
        "run_dir", help="bundle directory written by simulate --telemetry"
    )
    report_cmd.add_argument(
        "--top", type=int, default=5,
        help="slowest phones to list (default: 5)",
    )
    report_cmd.add_argument(
        "--no-validate", action="store_true",
        help="skip envelope-schema validation of events.jsonl on load",
    )

    trace_cmd = sub.add_parser(
        "trace",
        help="capture or render a span trace (flight recorder + profiler)",
    )
    trace_cmd.add_argument(
        "run_dir", nargs="?",
        help="render an existing trace: a bundle directory holding "
        "trace.json, or a trace.json path; omit to capture a fresh "
        "traced run instead",
    )
    trace_cmd.add_argument(
        "--seed", type=int, default=42,
        help="fuzz-scenario seed for capture mode (default: 42); the "
        "scenario's fleet, jobs, arrivals, and chaos plan all derive "
        "from it",
    )
    trace_cmd.add_argument(
        "--pods", type=int, metavar="N",
        help="capture through the sharded scheduler with N pods "
        "instead of the monolithic search",
    )
    trace_cmd.add_argument(
        "--out", metavar="DIR",
        help="write trace.json (Chrome trace-event) and profile.txt "
        "to DIR (capture mode only)",
    )
    trace_cmd.add_argument(
        "--top", type=int, default=10,
        help="self-time table rows to print (default: 10)",
    )
    trace_cmd.add_argument(
        "--critical-path", action="store_true",
        help="also print the wall-clock critical path from the run root",
    )
    trace_cmd.add_argument(
        "--clock", choices=("wall", "sim"), default="wall",
        help="profile on the wall clock (default) or the simulated clock",
    )

    whatif = sub.add_parser(
        "whatif", help="fleet sizing: phones needed to meet a deadline"
    )
    whatif.add_argument("--phones", required=True, help="phones JSON file")
    whatif.add_argument("--jobs", required=True, help="jobs JSON file")
    whatif.add_argument(
        "--deadline-s", type=float, required=True,
        help="makespan deadline in seconds",
    )
    whatif.add_argument(
        "--b", help="optional {phone_id: b_ms_per_kb} JSON file"
    )

    power = sub.add_parser(
        "power", help="charging curves under no-task/continuous/MIMD"
    )
    power.add_argument(
        "--phone-model",
        choices=("sensation", "g2"),
        default="sensation",
    )
    power.add_argument("--start-percent", type=float, default=0.0)

    fuzz = sub.add_parser(
        "fuzz",
        help="fuzz random fleets/chaos through the sim under the "
        "invariant oracle",
    )
    fuzz.add_argument(
        "--runs", type=int, default=50,
        help="number of fuzzed scenarios (default: 50)",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0,
        help="campaign master seed; every per-scenario seed derives "
        "from it deterministically (default: 0)",
    )
    fuzz.add_argument(
        "--out-dir", default="fuzz-artifacts",
        help="directory for replayable fuzz-<seed>.json failure "
        "artifacts (default: fuzz-artifacts)",
    )
    fuzz.add_argument(
        "--replay", metavar="ARTIFACT",
        help="re-execute one fuzz-<seed>.json artifact instead of "
        "running a campaign",
    )
    fuzz.add_argument(
        "--differential", type=int, default=0, metavar="N",
        help="additionally differential-check N fuzzed instances "
        "across the reference/python/numpy kernels, warm and cold",
    )
    fuzz.add_argument(
        "--sharded", type=int, default=0, metavar="N",
        help="additionally run the sharded differential on N fuzzed "
        "instances: --pods 1 must be byte-identical to the monolithic "
        "schedule and multi-pod makespans must stay inside the "
        "pod-aggregated LP sandwich",
    )
    fuzz.add_argument(
        "--no-minimize", action="store_true",
        help="write failing scenarios as-is instead of shrinking them",
    )
    fuzz.add_argument(
        "--crash-restore", action="store_true",
        help="run the crash/restore drill instead: each scenario is "
        "killed at a random scheduling instant, restored from its "
        "latest snapshot, and the continuation must be byte-identical "
        "to the uninterrupted baseline with zero invariant violations",
    )
    fuzz.add_argument(
        "--store-root", metavar="DIR",
        help="keep per-scenario snapshot stores under DIR "
        "(--crash-restore only; default: a temporary directory)",
    )
    fuzz.add_argument(
        "--probe-workers", type=int, metavar="N",
        help="run every drill leg through the speculative probe pool "
        "(--crash-restore only): digests are unchanged, and the "
        "campaign additionally asserts no cwc-probe-* shared-memory "
        "segment survives the killed runs",
    )
    fuzz.add_argument("--output", help="write the campaign report JSON here")

    tournament = sub.add_parser(
        "tournament",
        help="race scheduling policies on shared fuzzed chaos scenarios "
        "under the invariant oracle",
    )
    tournament.add_argument(
        "--policies", default="all",
        help="comma-separated policy names, or 'all' "
        "(default: every registered policy)",
    )
    tournament.add_argument(
        "--regimes", default="calm,churn",
        help="comma-separated chaos regime names (default: calm,churn)",
    )
    tournament.add_argument(
        "--runs", type=int, default=25,
        help="scenarios per regime; every policy runs each one "
        "(default: 25)",
    )
    tournament.add_argument(
        "--seed", type=int, default=0,
        help="tournament master seed (default: 0)",
    )
    tournament.add_argument(
        "--out-dir", metavar="DIR",
        help="write a replayable tournament-<seed>.json artifact here",
    )
    tournament.add_argument(
        "--replay", metavar="ARTIFACT",
        help="re-run a tournament-<seed>.json artifact's exact config; "
        "exits 2 if the digest diverges",
    )
    tournament.add_argument(
        "--output", help="write the tournament report JSON here"
    )

    return parser


def _load_json(path: str):
    with open(path, encoding="utf-8") as handle:
        return json.load(handle)


def _cmd_experiments(args) -> int:
    ids = args.ids or sorted(EXPERIMENTS)
    unknown = [i for i in ids if i not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment ids: {', '.join(unknown)}", file=sys.stderr)
        return 2
    reports = []
    for experiment_id in ids:
        report = run_experiment(experiment_id)
        reports.append(report)
        print(report)
        print()
    if getattr(args, "output", None):
        from .experiments.report import generate_markdown_report

        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(generate_markdown_report(reports))
        print(f"report written to {args.output}")
    return 0


def _cmd_schedule(args) -> int:
    phones = tuple(phone_from_dict(p) for p in _load_json(args.phones))
    jobs = tuple(job_from_dict(j) for j in _load_json(args.jobs))

    if args.profiles:
        profiles = {
            task: TaskProfile(
                task=task,
                base_ms_per_kb=float(spec["base_ms_per_kb"]),
                base_mhz=float(spec["base_mhz"]),
            )
            for task, spec in _load_json(args.profiles).items()
        }
    else:
        profiles = paper_task_profiles()
    predictor = RuntimePredictor(profiles)

    if args.b:
        b = {pid: float(v) for pid, v in _load_json(args.b).items()}
    else:
        from .netmodel.links import WirelessLink

        links = {
            phone.phone_id: WirelessLink.for_technology(
                phone.network, seed=hash(phone.phone_id) % 2**31
            )
            for phone in phones
        }
        b = measure_fleet(links)

    instance = SchedulingInstance.build(jobs, phones, b, predictor)
    scheduler_cls = _SCHEDULERS[args.scheduler]
    if scheduler_cls is CwcScheduler:
        if args.pods is not None:
            from .core.sharding import ShardedScheduler

            scheduler = ShardedScheduler(
                pods=args.pods,
                pod_assign=args.pod_assign,
                pod_workers=args.probe_workers or "auto",
                kernel=args.kernel,
                shared_mem=args.shared_mem,
            )
        else:
            scheduler = scheduler_cls(
                kernel=args.kernel,
                probe_workers=args.probe_workers,
                batch_width=args.batch_width,
                shared_mem=args.shared_mem,
            )
    else:
        if args.pods is not None:
            print(
                "note: --pods only applies to the greedy scheduler",
                file=sys.stderr,
            )
        scheduler = scheduler_cls()
    schedule = scheduler.schedule(instance)
    schedule.validate(instance)

    makespan_s = schedule.predicted_makespan_ms(instance) / 1000
    print(
        f"{scheduler.name}: {len(schedule)} partitions over "
        f"{len(schedule.phone_ids)} phones, predicted makespan "
        f"{makespan_s:.1f} s, unsplit {schedule.unsplit_fraction() * 100:.0f}%"
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(schedule_to_dict(schedule), handle, indent=1)
        print(f"schedule written to {args.output}")
    return 0


def _cmd_study(args) -> int:
    study = generate_study(days=args.days, seed=args.seed)
    all_intervals = [
        interval
        for records in study.values()
        for interval in extract_intervals(records)
    ]
    night, day = night_day_split(all_intervals)
    night_hours = EmpiricalCdf([i.duration_hours for i in night])
    day_hours = EmpiricalCdf([i.duration_hours for i in day])
    print(
        f"{len(study)} users x {args.days} days: {len(night)} night "
        f"intervals (median {night_hours.median():.1f} h), {len(day)} day "
        f"intervals (median {day_hours.median() * 60:.0f} min)"
    )
    if args.output:
        records = [r for logs in study.values() for r in logs]
        records.sort(key=lambda r: (r.user_id, r.timestamp_s))
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(serialize_log(records))
        print(f"{len(records)} log records written to {args.output}")
    return 0


def _cmd_simulate_campaign(args) -> int:
    """Continuous multi-night operation (``simulate --nights N``)."""
    from .sim.campaign import ContinuousCampaign, capacity_planning_report
    from .sim.churn import FleetChurnModel

    if args.resume and not args.checkpoint_dir:
        print("--resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    if args.kill_after_night is not None and not args.checkpoint_dir:
        print("--kill-after-night requires --checkpoint-dir", file=sys.stderr)
        return 2

    churn = FleetChurnModel() if args.churn else None
    campaign = ContinuousCampaign(
        seed=args.seed,
        jobs_per_night=args.jobs_per_night,
        arrival_rate_per_hour=args.arrival_rate,
        churn=churn,
        kernel=args.kernel,
        probe_workers=args.probe_workers,
        batch_width=args.batch_width,
        shared_mem=args.shared_mem,
        warm_start=True,
        checkpoint_dir=args.checkpoint_dir,
        pods=args.pods,
        pod_assign=args.pod_assign,
        pod_workers=args.probe_workers or "auto",
    )

    class _Killed(RuntimeError):
        pass

    def _kill_hook(_campaign, night_index, _record):
        if (
            args.kill_after_night is not None
            and night_index >= args.kill_after_night
        ):
            raise _Killed(night_index)

    try:
        result = campaign.run(
            args.nights,
            resume=args.resume,
            on_night=_kill_hook if args.kill_after_night is not None else None,
        )
    except _Killed as exc:
        print(
            f"killed after night {exc.args[0]} (checkpoint is durable; "
            f"rerun with --resume to continue)"
        )
        return 3

    report = capacity_planning_report(
        result, window_hours=campaign.window_hours
    )
    if result.resumed_from_night is not None:
        print(f"resumed from checkpoint at night {result.resumed_from_night}")
    print(
        f"{report['nights']} night(s) ({report['active_nights']} active), "
        f"{report['total_submitted']} jobs submitted, "
        f"{report['total_jobs_completed']} completed, "
        f"{report['total_failures']} phone failure(s)"
    )
    header = (
        f"{'night':>5} {'fleet':>5} {'+join':>5} {'-left':>5} "
        f"{'subm':>5} {'carry':>5} {'done':>5} {'unfin':>5} {'util':>6}"
    )
    print(header)
    for row in report["rows"]:
        print(
            f"{row['night']:>5} {row['fleet_size']:>5} {row['joined']:>5} "
            f"{row['departed']:>5} {row['submitted']:>5} "
            f"{row['carried_over']:>5} {row['jobs_completed']:>5} "
            f"{row['unfinished']:>5} {row['window_utilization']:>6.2f}"
        )
    print(
        f"mean window utilization {report['mean_window_utilization']:.2f}, "
        f"throughput {report['throughput_jobs_per_night']:.1f} jobs/night, "
        f"backlog {report['final_backlog']} "
        f"(trend {report['backlog_trend']:+d}), "
        f"keeps up: {report['keeps_up']}"
    )
    if args.output:
        payload = {
            "campaign": result.to_dict(),
            "capacity_report": report,
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=1)
            handle.write("\n")
        print(f"summary written to {args.output}")
    return 0 if report["keeps_up"] else 1


def _cmd_simulate(args) -> int:
    if args.nights is not None:
        return _cmd_simulate_campaign(args)
    if args.resume or args.checkpoint_dir or args.kill_after_night is not None:
        print(
            "--resume/--checkpoint-dir/--kill-after-night require --nights",
            file=sys.stderr,
        )
        return 2
    testbed = paper_testbed(seed=args.seed)
    profiles = paper_task_profiles()
    truth = FleetGroundTruth(profiles, deviation_sigma=0.03, seed=args.seed)
    predictor = RuntimePredictor(profiles)
    b = measure_fleet(testbed.links)

    plan = FailurePlan.none()
    if args.failures:
        rng = random.Random(args.seed)
        victims = rng.sample(
            [p.phone_id for p in testbed.phones], args.failures
        )
        plan = FailurePlan(
            PlannedFailure(v, rng.uniform(30_000.0, 400_000.0), online=True)
            for v in victims
        )

    chaos = ChaosPlan.none()
    if args.chaos:
        chaos = chaos.merged(ChaosPlan.from_dict(_load_json(args.chaos)))
    if args.chaos_seed is not None:
        monkey = ChaosMonkey(
            flap_probability=0.15,
            straggler_probability=0.15,
            straggler_factor_range=(3.0, 8.0),
            bandwidth_probability=0.1,
            crash_rate=0.2,
            corruption_rate=0.1,
        )
        sampled = monkey.sample_plan(
            [p.phone_id for p in testbed.phones],
            duration_ms=args.chaos_duration_s * 1000.0,
            rng=random.Random(args.chaos_seed),
        )
        chaos = chaos.merged(sampled)

    policy = None
    if args.harden or args.verify:
        policy = ResiliencePolicy.hardened(verify_results=args.verify)

    if args.trace and not args.telemetry:
        print("--trace requires --telemetry", file=sys.stderr)
        return 2
    telemetry = None
    if args.telemetry:
        from .obs import Telemetry

        telemetry = Telemetry.create(
            run_id=f"simulate-seed{args.seed}", tracing=args.trace
        )

    scheduler_cls = _SCHEDULERS[args.scheduler]
    if scheduler_cls is CwcScheduler:
        if args.pods is not None:
            from .core.sharding import ShardedScheduler

            scheduler = ShardedScheduler(
                pods=args.pods,
                pod_assign=args.pod_assign,
                pod_workers=args.probe_workers or "auto",
                warm_start=args.warm_start,
                kernel=args.kernel,
                shared_mem=args.shared_mem,
                telemetry=telemetry,
            )
        else:
            scheduler = scheduler_cls(
                warm_start=args.warm_start,
                kernel=args.kernel,
                probe_workers=args.probe_workers,
                batch_width=args.batch_width,
                shared_mem=args.shared_mem,
                telemetry=telemetry,
            )
    else:
        if args.warm_start:
            print(
                "note: --warm-start only applies to the greedy scheduler",
                file=sys.stderr,
            )
        if args.pods is not None:
            print(
                "note: --pods only applies to the greedy scheduler",
                file=sys.stderr,
            )
        scheduler = scheduler_cls()
    server = CentralServer(
        testbed.phones,
        truth,
        predictor,
        scheduler,
        b,
        failure_plan=plan,
        chaos=chaos,
        resilience=policy,
        telemetry=telemetry,
    )
    jobs = evaluation_workload()
    result = server.run(jobs)
    from .sim.validation import check_run_invariants

    check_run_invariants(result, jobs)
    summary = {
        "scheduler": args.scheduler,
        "predicted_makespan_s": result.predicted_makespan_ms / 1000,
        "measured_makespan_s": result.measured_makespan_ms / 1000,
        "rounds": len(result.rounds),
        "failures": len(result.trace.failures),
        "reschedule_overhead_s": result.reschedule_overhead_ms / 1000,
        "completions": len(result.trace.completions),
        "unfinished_jobs": len(result.unfinished_jobs),
    }
    for key, value in summary.items():
        print(f"{key}: {value}")
    stats = getattr(scheduler, "stats", None)
    if stats is not None and stats.rounds:
        summary["scheduling"] = stats.as_dict()
        warm_rounds = sum(1 for r in result.rounds if r.warm_started)
        print(
            f"scheduling wall-clock: {stats.wall_ms:.1f} ms over "
            f"{stats.rounds} round(s) "
            f"({stats.packer_passes} packer passes, "
            f"{stats.bisection_steps} bisection steps, "
            f"{warm_rounds} warm-start hit(s))"
        )
    report = None
    if not chaos.is_empty or policy is not None:
        report = compute_resilience_report(result)
        for line in report.summary_lines():
            print(line)
        summary["resilience"] = report.to_dict()
    if telemetry is not None:
        from .obs import build_run_report

        bundle = build_run_report(
            telemetry,
            meta={
                "seed": args.seed,
                "scheduler": args.scheduler,
                "hardened": bool(args.harden or args.verify),
                "chaos": not chaos.is_empty,
            },
            resilience=report.to_dict() if report is not None else None,
        )
        bundle_dir = bundle.write(args.telemetry)
        summary["telemetry_bundle"] = str(bundle_dir)
        print(f"telemetry bundle written to {bundle_dir}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=1)
        print(f"summary written to {args.output}")
    return 0


def _cmd_report(args) -> int:
    from .obs import load_run_report, render_report_lines

    try:
        loaded = load_run_report(
            args.run_dir, validate=not args.no_validate
        )
    except Exception as exc:  # noqa: BLE001 - operator-facing diagnostics
        print(f"failed to load run report: {exc}", file=sys.stderr)
        return 2
    for line in render_report_lines(loaded, top_n=args.top):
        print(line)
    return 0


def _cmd_trace(args) -> int:
    from pathlib import Path

    from .obs.profile import (
        critical_path,
        render_critical_path_lines,
        render_profile_lines,
        self_time_table,
    )
    from .obs.trace_export import (
        chrome_trace,
        load_chrome_trace,
        spans_from_chrome,
        write_chrome_trace,
    )
    from .verify.oracle import Oracle

    if args.run_dir:
        path = Path(args.run_dir)
        if path.is_dir():
            path = path / "trace.json"
        try:
            spans = spans_from_chrome(load_chrome_trace(path))
        except (OSError, ValueError) as exc:
            print(f"failed to load trace: {exc}", file=sys.stderr)
            return 2
        # No event log here, so only the structural span invariants run.
        oracle = Oracle(include=("span-tree", "span-nesting"))
        violations = oracle.check_run(None, (), spans=spans, collect=True)
        print(f"{path}: {len(spans)} span(s)")
    else:
        from .obs import Telemetry
        from .verify.fuzz import (
            build_scenario_server,
            generate_scenario,
            scenario_workload,
        )

        scenario = generate_scenario(args.seed)
        telemetry = Telemetry.create(
            run_id=f"trace-{args.seed}", tracing=True
        )
        server = build_scenario_server(
            scenario, telemetry=telemetry, pods=args.pods
        )
        initial, arrivals = scenario_workload(scenario)
        result = server.run(initial, arrivals=arrivals)
        violations = Oracle().check_run(
            result,
            scenario.jobs,
            events=telemetry.bus.events,
            spans=telemetry.tracer.spans,
            collect=True,
        )
        spans = telemetry.tracer.to_dicts()
        # Exercise the export round-trip so a capture run is also a
        # validation run (what CI's trace-smoke job leans on).
        exported = chrome_trace(spans, run_id=telemetry.run_id)
        restored = spans_from_chrome(exported)
        if restored != spans:
            print("trace.json round-trip mismatch", file=sys.stderr)
            return 1
        print(
            f"traced seed {args.seed}: {len(spans)} span(s) over "
            f"{len(result.rounds)} round(s), "
            f"{len({s['process'] for s in spans})} process lane(s), "
            f"export round-trip ok"
        )
        if args.out:
            out = Path(args.out)
            out.mkdir(parents=True, exist_ok=True)
            write_chrome_trace(
                out / "trace.json", spans, run_id=telemetry.run_id
            )
            profile_lines = render_profile_lines(
                self_time_table(spans, clock=args.clock), clock=args.clock
            )
            profile_lines.append("")
            profile_lines.extend(
                render_critical_path_lines(
                    critical_path(spans, clock=args.clock), clock=args.clock
                )
            )
            (out / "profile.txt").write_text(
                "\n".join(profile_lines) + "\n", encoding="utf-8"
            )
            print(f"trace artifacts written to {out}")

    for violation in violations:
        print(f"  {violation}", file=sys.stderr)
    if violations:
        return 1

    rows = self_time_table(spans, clock=args.clock)
    for line in render_profile_lines(rows, top=args.top, clock=args.clock):
        print(line)
    if args.critical_path:
        for line in render_critical_path_lines(
            critical_path(spans, clock=args.clock), clock=args.clock
        ):
            print(line)
    return 0


def _resolve_b(args, phones):
    """Measured-b file if given, else simulate per-technology links."""
    if getattr(args, "b", None):
        return {pid: float(v) for pid, v in _load_json(args.b).items()}
    from .netmodel.links import WirelessLink

    links = {
        phone.phone_id: WirelessLink.for_technology(
            phone.network, seed=hash(phone.phone_id) % 2**31
        )
        for phone in phones
    }
    return measure_fleet(links)


def _cmd_whatif(args) -> int:
    from .core.whatif import makespan_by_fleet_size, minimum_fleet_size

    phones = tuple(phone_from_dict(p) for p in _load_json(args.phones))
    jobs = tuple(job_from_dict(j) for j in _load_json(args.jobs))
    predictor = RuntimePredictor(paper_task_profiles())
    b = _resolve_b(args, phones)
    # Prefer fast links first: the sensible fleet-growth order.
    ranked = tuple(sorted(phones, key=lambda p: b[p.phone_id]))
    deadline_ms = args.deadline_s * 1000.0

    size = minimum_fleet_size(
        jobs, ranked, b, predictor, deadline_ms=deadline_ms
    )
    curve = makespan_by_fleet_size(
        jobs, ranked, b, predictor,
        sizes=tuple(range(1, len(ranked) + 1, max(1, len(ranked) // 6))),
    )
    for count, makespan_ms in sorted(curve.items()):
        print(f"{count:3d} phones -> predicted makespan {makespan_ms / 1000:8.1f} s")
    if size is None:
        print(
            f"no prefix of this fleet meets the {args.deadline_s:.0f} s deadline"
        )
        return 1
    print(f"minimum fleet for {args.deadline_s:.0f} s deadline: {size} phones")
    return 0


def _cmd_power(args) -> int:
    from .power.battery import HTC_G2, HTC_SENSATION
    from .power.charging import compute_penalty, simulate_charging
    from .power.throttle import ContinuousPolicy, MimdThrottle, NoTaskPolicy

    profile = HTC_SENSATION if args.phone_model == "sensation" else HTC_G2
    start = args.start_percent
    if not 0.0 <= start < 100.0:
        print("start-percent must lie in [0, 100)", file=sys.stderr)
        return 2
    ideal = simulate_charging(profile, NoTaskPolicy(), start_percent=start)
    heavy = simulate_charging(profile, ContinuousPolicy(), start_percent=start)
    mimd = simulate_charging(profile, MimdThrottle(), start_percent=start)
    print(f"{profile.name} charging {start:.0f}% -> 100%:")
    for trace in (ideal, heavy, mimd):
        print(
            f"  {trace.policy_name:10s} {trace.duration_s / 60:6.1f} min "
            f"(CPU duty {trace.duty_factor:.2f})"
        )
    print(
        f"  MIMD compute penalty vs continuous: "
        f"{compute_penalty(mimd, heavy) * 100:.1f}%"
    )
    return 0


def _cmd_fuzz(args) -> int:
    from .verify import (
        differential_check,
        generate_instance,
        replay_artifact,
        run_campaign,
    )
    from .verify.fuzz import derive_seeds

    if args.replay:
        replay = replay_artifact(args.replay)
        outcome = replay.outcome
        print(f"replayed {args.replay}")
        print(f"  scenario digest : {outcome.digest}")
        print(f"  digest matches  : {replay.digest_matches}")
        print(f"  verdict         : {'clean' if outcome.ok else 'FAILING'}")
        for violation in outcome.violations:
            print(f"  {violation}")
        if not replay.digest_matches:
            print("  artifact digest does not match its scenario",
                  file=sys.stderr)
            return 2
        if not replay.reproduced:
            print("  replay verdict differs from the recorded one",
                  file=sys.stderr)
            return 1
        return 0

    if args.runs < 1:
        print("--runs must be >= 1", file=sys.stderr)
        return 2

    if args.crash_restore:
        from .verify.fuzz import run_crash_restore_campaign

        report = run_crash_restore_campaign(
            args.runs,
            seed=args.seed,
            store_root=args.store_root,
            probe_workers=args.probe_workers,
        )
        print(
            f"crash/restore-drilled {report.runs} scenarios from seed "
            f"{report.seed}: {report.kills} killed mid-run, "
            f"{report.cold_restarts} cold restart(s), "
            f"{len(report.failures)} failing"
        )
        print(f"campaign digest: {report.campaign_digest}")
        if report.leaked_shm:
            print(
                "leaked shared-memory segments: "
                + ", ".join(report.leaked_shm),
                file=sys.stderr,
            )
        for outcome in report.failures:
            print(
                f"  seed {outcome.seed} (killed at instant "
                f"{outcome.kill_instant}):"
            )
            if outcome.error:
                print(f"    error: {outcome.error}")
            if not outcome.identical:
                print("    restored run diverged from the baseline")
            if not outcome.state_verified:
                print("    snapshot state verification did not run")
            for violation in outcome.violations:
                print(f"    {violation}")
        if args.output:
            payload = {
                "mode": "crash-restore",
                "runs": report.runs,
                "seed": report.seed,
                "campaign_digest": report.campaign_digest,
                "kills": report.kills,
                "cold_restarts": report.cold_restarts,
                "leaked_shm": list(report.leaked_shm),
                "failures": [
                    {
                        "seed": outcome.seed,
                        "kill_instant": outcome.kill_instant,
                        "identical": outcome.identical,
                        "state_verified": outcome.state_verified,
                        "error": outcome.error,
                        "violations": [str(v) for v in outcome.violations],
                    }
                    for outcome in report.failures
                ],
            }
            with open(args.output, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, indent=2)
                handle.write("\n")
            print(f"report written to {args.output}")
        return 0 if report.ok else 1

    report = run_campaign(
        args.runs,
        seed=args.seed,
        out_dir=args.out_dir,
        minimize=not args.no_minimize,
    )
    print(
        f"fuzzed {report.runs} scenarios from seed {report.seed}: "
        f"{len(report.failures)} failing"
    )
    print(f"campaign digest: {report.campaign_digest}")
    for outcome in report.failures:
        print(f"  seed {outcome.scenario.seed}:")
        for violation in outcome.violations:
            print(f"    {violation}")
    for artifact in report.artifacts:
        print(f"  artifact: {artifact}")

    differential_failures = 0
    if args.differential > 0:
        for instance_seed in derive_seeds(args.seed, args.differential):
            try:
                differential_check(generate_instance(instance_seed))
            except AssertionError as exc:
                differential_failures += 1
                print(f"  differential seed {instance_seed}: {exc}")
        print(
            f"differential-checked {args.differential} instances: "
            f"{differential_failures} mismatching"
        )

    sharded_failures = 0
    if args.sharded > 0:
        from .verify import sharded_differential_check

        for instance_seed in derive_seeds(args.seed + 1, args.sharded):
            try:
                sharded_differential_check(generate_instance(instance_seed))
            except AssertionError as exc:
                sharded_failures += 1
                print(f"  sharded seed {instance_seed}: {exc}")
        print(
            f"sharded-checked {args.sharded} instances: "
            f"{sharded_failures} mismatching"
        )

    if args.output:
        payload = {
            "runs": report.runs,
            "seed": report.seed,
            "campaign_digest": report.campaign_digest,
            "failures": [
                {
                    "seed": outcome.scenario.seed,
                    "digest": outcome.digest,
                    "violations": [str(v) for v in outcome.violations],
                }
                for outcome in report.failures
            ],
            "artifacts": list(report.artifacts),
            "differential_instances": args.differential,
            "differential_failures": differential_failures,
            "sharded_instances": args.sharded,
            "sharded_failures": sharded_failures,
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"report written to {args.output}")
    return 1 if (
        report.failures or differential_failures or sharded_failures
    ) else 0


def _cmd_tournament(args) -> int:
    from .core.policies import POLICY_NAMES
    from .verify.tournament import (
        replay_tournament,
        run_tournament,
        write_tournament_artifact,
    )

    if args.replay:
        replay = replay_tournament(args.replay)
        report = replay.report
        print(f"replayed {args.replay}")
        print(f"  recorded digest : {replay.recorded_digest}")
        print(f"  rerun digest    : {report.digest}")
        print(f"  digest matches  : {replay.digest_matches}")
        print(f"  violations      : {report.violation_count}")
        if not replay.digest_matches:
            print("  tournament rerun diverged from the artifact",
                  file=sys.stderr)
            return 2
        return 0 if report.ok else 1

    if args.runs < 1:
        print("--runs must be >= 1", file=sys.stderr)
        return 2
    policies = (
        POLICY_NAMES
        if args.policies == "all"
        else tuple(p.strip() for p in args.policies.split(",") if p.strip())
    )
    regimes = tuple(
        r.strip() for r in args.regimes.split(",") if r.strip()
    )
    try:
        report = run_tournament(
            args.runs, policies=policies, regimes=regimes, seed=args.seed
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    for line in report.summary_lines():
        print(line)
    if args.out_dir:
        path = write_tournament_artifact(report, args.out_dir)
        print(f"artifact: {path}")
    if args.output:
        payload = {
            "seed": report.seed,
            "runs": report.runs,
            "policies": list(report.policies),
            "regimes": list(report.regimes),
            "digest": report.digest,
            "violations": report.violation_count,
            "cells": [cell.to_dict() for cell in report.cells],
            "winners": {
                regime: {
                    metric: dict(verdict)
                    for metric, verdict in metrics.items()
                }
                for regime, metrics in report.winners.items()
            },
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"report written to {args.output}")
    return 0 if report.ok else 1


_COMMANDS = {
    "experiments": _cmd_experiments,
    "schedule": _cmd_schedule,
    "study": _cmd_study,
    "simulate": _cmd_simulate,
    "whatif": _cmd_whatif,
    "power": _cmd_power,
    "report": _cmd_report,
    "trace": _cmd_trace,
    "fuzz": _cmd_fuzz,
    "tournament": _cmd_tournament,
}


def main(argv: list[str] | None = None) -> int:
    """Entry point: parse arguments and dispatch to the subcommand."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
