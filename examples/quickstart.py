#!/usr/bin/env python3
"""Quickstart: schedule and simulate a CWC workload in ~40 lines.

Builds the paper's 18-phone testbed, creates a small mixed workload,
asks the greedy scheduler for a makespan-minimising schedule, and runs
it on the discrete-event simulator — printing what the central server
would log overnight.

Run:  python examples/quickstart.py
"""

from repro.core import CwcScheduler, EqualSplitScheduler, RoundRobinScheduler
from repro.core.instance import SchedulingInstance
from repro.core.prediction import RuntimePredictor
from repro.netmodel import measure_fleet
from repro.sim import CentralServer, FleetGroundTruth
from repro.workloads import (
    evaluation_workload,
    paper_task_profiles,
    paper_testbed,
)


def main() -> None:
    # 1. The fleet: 18 phones across three houses, WiFi + cellular.
    testbed = paper_testbed()
    print(f"fleet: {len(testbed.phones)} phones")

    # 2. Bandwidth measurement (the iperf step) gives b_i per phone.
    b = measure_fleet(testbed.links)
    print(f"b_i range: {min(b.values()):.1f} - {max(b.values()):.1f} ms/KB")

    # 3. The runtime predictor scales one-off task profiles by CPU clock.
    predictor = RuntimePredictor(paper_task_profiles())

    # 4. A workload: 50 prime counts + 50 word counts + 50 photo blurs.
    jobs = evaluation_workload(instances_per_task=10)  # small for a demo
    instance = SchedulingInstance.build(jobs, testbed.phones, b, predictor)

    # 5. Compare the CWC greedy scheduler against the two baselines.
    for scheduler in (CwcScheduler(), EqualSplitScheduler(), RoundRobinScheduler()):
        schedule = scheduler.schedule(instance)
        makespan_s = schedule.predicted_makespan_ms(instance) / 1000
        print(
            f"{scheduler.name:12s} predicted makespan {makespan_s:7.1f} s  "
            f"(unsplit jobs: {schedule.unsplit_fraction() * 100:.0f}%)"
        )

    # 6. Execute the greedy schedule on the event-driven simulator.
    truth = FleetGroundTruth(paper_task_profiles(), deviation_sigma=0.03, seed=7)
    server = CentralServer(
        testbed.phones, truth, RuntimePredictor(paper_task_profiles()),
        CwcScheduler(), b,
    )
    result = server.run(jobs)
    print(
        f"\nsimulated run: predicted {result.predicted_makespan_ms / 1000:.1f} s, "
        f"measured {result.measured_makespan_ms / 1000:.1f} s, "
        f"{len(result.trace.completions)} partitions completed"
    )


if __name__ == "__main__":
    main()
