#!/usr/bin/env python3
"""An overnight CWC deployment end to end: who charges, who fails, what
gets done, and what it costs.

Combines every substrate the way an operator would:

1. generate the charging-behaviour study and pick tonight's usable
   window from it (Section 3.1);
2. derive per-hour unplug probabilities and sample realistic failures
   for the window (Figure 3);
3. run the 150-task evaluation workload on the simulated fleet with
   those failures, letting the server migrate interrupted work;
4. check the MIMD throttle would preserve charging for the phones;
5. price the night against the equivalent server time (Section 3.2).

Run:  python examples/overnight_window.py
"""

import random

from repro.analysis import (
    CORE2DUO_SERVER,
    TEGRA3_PHONE,
    EnergyCostModel,
)
from repro.core import CwcScheduler
from repro.core.prediction import RuntimePredictor
from repro.netmodel import measure_fleet
from repro.power import (
    HTC_SENSATION,
    MimdThrottle,
    NoTaskPolicy,
    plan_fleet_power,
    simulate_charging,
)
from repro.profiling import (
    extract_intervals,
    generate_study,
    hourly_unplug_likelihood,
    idle_night_hours_by_user,
)
from repro.sim import CentralServer, FleetGroundTruth, RandomUnplugModel
from repro.workloads import (
    evaluation_workload,
    paper_task_profiles,
    paper_testbed,
)


def main() -> None:
    # --- 1. How long is tonight's usable window? ----------------------
    study = generate_study(days=28, seed=31)
    intervals = {
        user: extract_intervals(records) for user, records in study.items()
    }
    idle_hours = idle_night_hours_by_user(intervals)
    fleet_mean = sum(mean for mean, _ in idle_hours.values()) / len(idle_hours)
    print(
        f"study: {len(study)} users, mean idle night window "
        f"{fleet_mean:.1f} h"
    )

    # --- 2. Failure risk for the midnight-to-6AM window ----------------
    all_records = [r for records in study.values() for r in records]
    hourly = hourly_unplug_likelihood(
        all_records, days=28 * len(study)
    )
    unplug_model = RandomUnplugModel(hourly)
    testbed = paper_testbed()
    plan = unplug_model.sample_plan(
        [p.phone_id for p in testbed.phones],
        start_hour=0.0,
        duration_hours=6.0,
        rng=random.Random(99),
    )
    print(
        f"failure forecast: {len(plan)} of {len(testbed.phones)} phones "
        f"expected to unplug during the window"
    )

    # --- 3. Run the workload with those failures -----------------------
    # Each phone's throttling penalty comes from its battery state: a
    # phone plugged in at 30% spends longer throttled than one at 80%.
    charge_rng = random.Random(5)
    power_plans = plan_fleet_power(
        {p.phone_id: HTC_SENSATION for p in testbed.phones},
        {p.phone_id: charge_rng.uniform(10.0, 90.0) for p in testbed.phones},
        window_hours=6.0,
    )
    profiles = paper_task_profiles()
    truth = FleetGroundTruth(profiles, deviation_sigma=0.03, seed=3)
    predictor = RuntimePredictor(profiles)
    b = measure_fleet(testbed.links)
    server = CentralServer(
        testbed.phones,
        truth,
        predictor,
        CwcScheduler(),
        b,
        failure_plan=plan,
        compute_slowdown={
            pid: power_plan.slowdown for pid, power_plan in power_plans.items()
        },
    )
    jobs = evaluation_workload()
    result = server.run(jobs)
    hours_used = result.measured_makespan_ms / 3_600_000.0
    print(
        f"workload: {len(jobs)} tasks finished in {hours_used:.2f} h "
        f"({len(result.rounds)} scheduling rounds, "
        f"{len(result.trace.failures)} failures migrated, "
        f"{len(result.unfinished_jobs)} unfinished)"
    )
    assert hours_used < fleet_mean, "workload must fit the idle window"

    # --- 4. Does computing delay anyone's full charge? ----------------
    ideal = simulate_charging(HTC_SENSATION, NoTaskPolicy())
    throttled = simulate_charging(HTC_SENSATION, MimdThrottle())
    delay = throttled.duration_s / ideal.duration_s - 1.0
    print(
        f"charging impact with MIMD throttle: +{delay * 100:.1f}% "
        f"time-to-full (duty {throttled.duty_factor:.2f})"
    )

    # --- 5. What did the night cost? -----------------------------------
    model = EnergyCostModel()
    phone_night = model.yearly_cost(TEGRA3_PHONE, duty=hours_used / 24) / 365
    server_night = model.yearly_cost(CORE2DUO_SERVER, duty=hours_used / 24) / 365
    print(
        f"energy for the night: fleet "
        f"${phone_night * len(testbed.phones) * 100:.2f}c vs one server "
        f"${server_night * 100:.2f}c (per-device-night, US commercial rate)"
    )


if __name__ == "__main__":
    main()
