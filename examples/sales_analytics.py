#!/usr/bin/env python3
"""Overnight sales analytics — the paper's department-store scenario.

Section 3.2: "a department store gathers the sales records from several
locations.  These records can be partitioned and shipped to phones to
quantify what types of goods are sold the most."

This example runs the scenario for real: it generates per-store sales
logs, lets the CWC scheduler partition them across the fleet, *actually
executes* the counting task on each partition through the phone
sandbox (the reflection-loaded executable), aggregates the partial
results at the server, and verifies the distributed answer equals a
single-machine run.  A mid-run phone unplug exercises checkpoint
migration: the interrupted partition resumes on another phone without
recounting what was already processed.

Run:  python examples/sales_analytics.py
"""

import random

from repro.core import CwcScheduler, Job, JobKind
from repro.core.instance import SchedulingInstance
from repro.core.prediction import RuntimePredictor, TaskProfile
from repro.netmodel import measure_fleet
from repro.runtime import Finished, PhoneSandbox, TaskRegistry
from repro.workloads import paper_testbed, text_size_kb
from repro.workloads.datagen import split_text_by_kb

PRODUCTS = ("lumber", "paint", "tools", "garden", "lighting")


def generate_sales_log(store: int, n_records: int, rng: random.Random) -> str:
    """One store's day of sales: 'store product quantity' per line."""
    lines = [
        f"store-{store} {rng.choice(PRODUCTS)} {rng.randint(1, 5)}"
        for _ in range(n_records)
    ]
    return "\n".join(lines)


def main() -> None:
    rng = random.Random(2012)
    testbed = paper_testbed()
    b = measure_fleet(testbed.links)

    # The analytics query: how often is each product sold?  One word-count
    # job per product, over the concatenation of all store logs.
    sales = "\n".join(generate_sales_log(s, 20_000, rng) for s in range(8))
    print(f"sales data: {text_size_kb(sales):.0f} KB across 8 stores")

    registry = TaskRegistry()
    sandboxes = {
        phone.phone_id: PhoneSandbox(registry) for phone in testbed.phones
    }
    for product in PRODUCTS:
        # Dynamic loading — the phones learn the task at runtime.
        registry.load(
            "repro.workloads.wordcount:WordCountTask",
            product,
            name=f"count-{product}",
        )

    # Profile once on the slowest phone (the paper's T_s measurement),
    # then let clock scaling predict everyone else.
    reference = min(testbed.phones, key=lambda p: p.cpu_mhz)
    profiles = {
        f"count-{product}": TaskProfile(
            task=f"count-{product}", base_ms_per_kb=8.0,
            base_mhz=reference.cpu_mhz,
        )
        for product in PRODUCTS
    }
    predictor = RuntimePredictor(profiles)

    jobs = tuple(
        Job(
            job_id=f"count-{product}",
            task=f"count-{product}",
            kind=JobKind.BREAKABLE,
            executable_kb=30.0,
            input_kb=text_size_kb(sales),
        )
        for product in PRODUCTS
    )
    instance = SchedulingInstance.build(jobs, testbed.phones, b, predictor)
    schedule = CwcScheduler().schedule(instance)
    print(
        f"schedule: {len(schedule)} partitions, predicted makespan "
        f"{schedule.predicted_makespan_ms(instance) / 1000:.1f} s"
    )

    # Execute for real: cut the sales log per the schedule and run each
    # partition in its phone's sandbox; sum partials at the server.
    results: dict[str, int] = {}
    interrupted_once = False
    for job in jobs:
        assignments = [a for a in schedule if a.job_id == job.job_id]
        partitions = split_text_by_kb(
            sales, [a.input_kb for a in assignments]
        )
        partials = []
        for assignment, partition in zip(assignments, partitions):
            sandbox = sandboxes[assignment.phone_id]
            items = partition.splitlines()
            if not interrupted_once and len(items) > 1000:
                # Simulate an unplug mid-partition: checkpoint, migrate,
                # resume on a different phone.
                suspended = sandbox.execute(job.task, items, max_items=500)
                other = next(
                    box
                    for pid, box in sandboxes.items()
                    if pid != assignment.phone_id
                )
                outcome = other.execute(
                    job.task, items, resume_from=suspended
                )
                interrupted_once = True
                print(
                    f"  migrated {job.task} partition from "
                    f"{assignment.phone_id} after 500 records"
                )
            else:
                outcome = sandbox.execute(job.task, items)
            assert isinstance(outcome, Finished)
            partials.append(outcome.result)
        results[job.task] = registry.get(job.task).aggregate(partials)

    # Verify against a single-machine run.
    print("\nproduct sales counts (distributed == direct):")
    for product in PRODUCTS:
        direct = sales.split().count(product)
        distributed = results[f"count-{product}"]
        status = "OK" if distributed == direct else "MISMATCH"
        print(f"  {product:9s} {distributed:7d}  [{status}]")
        assert distributed == direct

    best = max(PRODUCTS, key=lambda p: results[f"count-{p}"])
    print(f"\nbest seller: {best}")


if __name__ == "__main__":
    main()
