#!/usr/bin/env python3
"""Fleet planning: can this workload retire a server, and at what size?

The paper's pitch to the enterprise (Sections 1 and 3.2) is economic:
phones you already handed out can absorb nightly compute.  This example
plays the planner's part end to end:

1. derive each employee phone's overnight *reliability* from the
   charging study, and each phone's *throughput* from its battery state
   (MIMD throttling until full, unthrottled after);
2. ask the scheduler — not a watt ratio — how many phones the nightly
   workload actually needs (`minimum_fleet_size`), preferring reliable
   fast-link phones;
3. schedule availability-aware on the chosen sub-fleet and check the
   makespan fits the idle window;
4. price the result against keeping a server for the same work.

Run:  python examples/fleet_planning.py
"""

import random

from repro.analysis import (
    CORE2DUO_SERVER,
    TEGRA3_PHONE,
    EnergyCostModel,
)
from repro.core import AvailabilityAwareScheduler, CwcScheduler
from repro.core.instance import SchedulingInstance
from repro.core.prediction import RuntimePredictor
from repro.core.whatif import makespan_by_fleet_size, minimum_fleet_size
from repro.netmodel import measure_fleet
from repro.power import HTC_SENSATION, plan_fleet_power
from repro.profiling import AvailabilityForecast, generate_study
from repro.workloads import (
    evaluation_workload,
    paper_task_profiles,
    paper_testbed,
)

WINDOW_HOURS = 6.0


def main() -> None:
    rng = random.Random(11)
    testbed = paper_testbed()
    b = measure_fleet(testbed.links)
    predictor = RuntimePredictor(paper_task_profiles())
    jobs = evaluation_workload()

    # --- 1. reliability and throughput per phone -----------------------
    study = generate_study(days=28, seed=31)
    users = sorted(study)
    owner = {
        phone.phone_id: users[index % len(users)]
        for index, phone in enumerate(testbed.phones)
    }
    forecast = AvailabilityForecast.from_study(study, owner, days=28)
    survival = {
        phone.phone_id: forecast.survival_probability(
            phone.phone_id, start_hour=0.0, duration_hours=WINDOW_HOURS
        )
        for phone in testbed.phones
    }
    power = plan_fleet_power(
        {p.phone_id: HTC_SENSATION for p in testbed.phones},
        {p.phone_id: rng.uniform(20.0, 90.0) for p in testbed.phones},
        window_hours=WINDOW_HOURS,
    )

    # --- 2. how many phones does the workload need? ---------------------
    # Prefer reliable phones with fast links and low throttling.
    def preference(phone):
        return (
            b[phone.phone_id]
            * power[phone.phone_id].slowdown
            / max(survival[phone.phone_id], 1e-6)
        )

    ranked = tuple(sorted(testbed.phones, key=preference))
    deadline_ms = WINDOW_HOURS * 3_600_000.0
    needed = minimum_fleet_size(
        jobs, ranked, b, predictor, deadline_ms=deadline_ms
    )
    assert needed is not None, "workload does not fit the night at all"
    curve = makespan_by_fleet_size(
        jobs, ranked, b, predictor, sizes=(needed, min(len(ranked), needed + 4))
    )
    print(f"nightly workload: {len(jobs)} tasks")
    print(
        f"phones needed for the {WINDOW_HOURS:.0f} h window: {needed} "
        f"(makespan {curve[needed] / 3_600_000.0:.2f} h)"
    )

    # --- 3. availability-aware schedule on the chosen sub-fleet ---------
    subfleet = ranked[: max(needed, 6)]
    instance = SchedulingInstance.build(jobs, subfleet, b, predictor)
    scheduler = AvailabilityAwareScheduler(
        CwcScheduler(),
        forecast,
        start_hour=0.0,
        expected_duration_hours=WINDOW_HOURS,
        min_survival=0.1,
        risk_aversion=1.0,
    )
    schedule = scheduler.schedule(instance)
    makespan_h = schedule.predicted_makespan_ms(instance) / 3_600_000.0
    print(
        f"availability-aware schedule on {len(subfleet)} phones: "
        f"{makespan_h:.2f} h predicted (fits window: {makespan_h < WINDOW_HOURS})"
    )
    assert makespan_h < WINDOW_HOURS

    # --- 4. the economics ------------------------------------------------
    model = EnergyCostModel()
    duty = makespan_h / 24.0
    fleet_year = model.fleet_cost(TEGRA3_PHONE, len(subfleet), duty=duty)
    server_year = model.yearly_cost(CORE2DUO_SERVER, duty=duty)
    print(
        f"yearly energy for this nightly job: fleet ${fleet_year:.2f} vs "
        f"server ${server_year:.2f} "
        f"({server_year / fleet_year:.1f}x cheaper on phones)"
    )


if __name__ == "__main__":
    main()
