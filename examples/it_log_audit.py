#!/usr/bin/env python3
"""Nightly IT log auditing — the paper's third example application.

Section 3.2: "the IT department in an enterprise can gather machine
logs throughout the day and analyze them for certain types of failures
at night."  This example operates CWC as a service over a working week:

* each day produces fresh machine logs from a few server fleets;
* each night an :class:`OvernightCampaign` schedules the analysis jobs
  over the phone fleet with realistic unplug failures — the runtime
  predictor's learning persists across nights;
* one night's analysis is additionally executed *for real* through the
  phone sandboxes, and the distributed failure report is verified
  against a single-machine scan.

Run:  python examples/it_log_audit.py
"""

import random

from repro.core import CwcScheduler, Job, JobKind
from repro.core.instance import SchedulingInstance
from repro.core.prediction import RuntimePredictor, TaskProfile
from repro.netmodel import measure_fleet
from repro.runtime import TaskRegistry
from repro.sim import (
    FleetGroundTruth,
    OvernightCampaign,
    RandomUnplugModel,
    RealExecutionRunner,
    direct_results,
)
from repro.workloads import machine_log, paper_testbed, text_size_kb

FLEETS = ("web-tier", "db-tier", "batch-tier")
REFERENCE_MHZ = 806.0


def nightly_log_jobs(day: int, rng: random.Random):
    """One analysis job per server fleet, with that day's log volume."""
    logs = {
        f"{fleet}-day{day}": machine_log(
            rng.randint(15_000, 40_000), rng, failure_rate=0.04
        )
        for fleet in FLEETS
    }
    jobs = tuple(
        Job(
            job_id=name,
            task="loganalysis",
            kind=JobKind.BREAKABLE,
            executable_kb=60.0,
            input_kb=text_size_kb(text),
        )
        for name, text in logs.items()
    )
    return jobs, logs


def main() -> None:
    rng = random.Random(42)
    testbed = paper_testbed()
    profiles = {"loganalysis": TaskProfile("loganalysis", 20.0, REFERENCE_MHZ)}
    truth = FleetGroundTruth(profiles, deviation_sigma=0.05, seed=9)
    predictor = RuntimePredictor(profiles, alpha=1.0)

    # Overnight failure risk: quiet until 6 AM, then wake-ups.
    unplug = RandomUnplugModel([0.02] * 6 + [0.2, 0.3] + [0.1] * 16)

    nights = [nightly_log_jobs(day, rng) for day in range(5)]
    campaign = OvernightCampaign(
        testbed.phones,
        testbed.links,
        truth,
        predictor,
        CwcScheduler(),
        unplug_model=unplug,
        window_start_hour=0.0,
        window_hours=6.0,
        seed=17,
    )
    result = campaign.run([jobs for jobs, _ in nights])

    print("night  jobs  makespan  failures  overhead  prediction error")
    for night in result.nights:
        print(
            f"{night.night_index:5d}  {night.jobs_submitted:4d}  "
            f"{night.measured_makespan_ms / 1000:7.1f}s  "
            f"{night.failures:8d}  "
            f"{night.reschedule_overhead_ms / 1000:7.1f}s  "
            f"{night.prediction_error * 100:6.2f}%"
        )
    assert not result.final_backlog

    # Execute the last night for real and verify the report.
    jobs, logs = nights[-1]
    registry = TaskRegistry()
    registry.load("repro.workloads.loganalysis:LogAnalysisTask")
    b = measure_fleet(testbed.links)
    instance = SchedulingInstance.build(jobs, testbed.phones, b, predictor)
    schedule = CwcScheduler().schedule(instance)
    runner = RealExecutionRunner(registry, [p.phone_id for p in testbed.phones])
    outcome = runner.run(schedule, logs)
    reference = direct_results(
        registry, {name: ("loganalysis", text) for name, text in logs.items()}
    )

    print("\nfinal night's failure report (distributed == direct):")
    for name in sorted(logs):
        report = outcome.results[name]
        assert report == reference[name]
        top = sorted(report.counts.items(), key=lambda kv: -kv[1])[:3]
        summary = ", ".join(f"{sig}:{count}" for sig, count in top)
        print(f"  {name:18s} {report.lines_scanned:6d} lines  [{summary}]  OK")


if __name__ == "__main__":
    main()
