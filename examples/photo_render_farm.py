#!/usr/bin/env python3
"""Photo render farm — the paper's movie-production scenario.

Section 3.2 (after Condor's own motivating example): "A movie
production company can render each scene in a movie, in parallel,
using smartphones."  Rendering here is the paper's atomic evaluation
task — blurring photos — including the Dalvik workaround it documents:
the server pre-processes each photo into a line-per-pixel text file,
phones process the text, and the server re-creates the photos.

The batch of photos is scheduled as atomic jobs (a photo can never be
split across phones), executed for real in the phone sandboxes, and
each result is verified against a direct single-machine blur.

Run:  python examples/photo_render_farm.py
"""

import random

import numpy as np

from repro.core import CwcScheduler, Job, JobKind
from repro.core.instance import SchedulingInstance
from repro.core.prediction import RuntimePredictor, TaskProfile
from repro.netmodel import measure_fleet
from repro.runtime import Finished, PhoneSandbox, TaskRegistry
from repro.workloads import (
    box_blur,
    grid_to_text,
    paper_testbed,
    pixel_grid,
    text_size_kb,
    text_to_grid,
)


def main() -> None:
    rng = random.Random(7)
    testbed = paper_testbed()
    b = measure_fleet(testbed.links)

    # A night's batch: 24 variable-size "scenes" (grayscale frames).
    photos = {
        f"scene-{i:02d}": pixel_grid(
            rng.randint(40, 90), rng.randint(40, 90), rng
        )
        for i in range(24)
    }

    # Server-side pre-processing (the paper's BufferedImage workaround).
    photo_texts = {name: grid_to_text(grid) for name, grid in photos.items()}

    reference = min(testbed.phones, key=lambda p: p.cpu_mhz)
    predictor = RuntimePredictor(
        {"blur": TaskProfile("blur", 90.0, reference.cpu_mhz)}
    )
    jobs = tuple(
        Job(
            job_id=name,
            task="blur",
            kind=JobKind.ATOMIC,  # a blur cannot be partitioned
            executable_kb=80.0,
            input_kb=text_size_kb(text),
        )
        for name, text in photo_texts.items()
    )
    instance = SchedulingInstance.build(jobs, testbed.phones, b, predictor)
    schedule = CwcScheduler().schedule(instance)

    per_phone: dict[str, list[str]] = {}
    for assignment in schedule:
        per_phone.setdefault(assignment.phone_id, []).append(assignment.job_id)
    print(f"scheduled {len(jobs)} photos over {len(per_phone)} phones:")
    for phone_id in sorted(per_phone):
        print(f"  {phone_id}: {', '.join(per_phone[phone_id])}")
    print(
        f"predicted makespan: "
        f"{schedule.predicted_makespan_ms(instance) / 1000:.1f} s"
    )

    # Execute for real in each phone's sandbox and post-process.
    registry = TaskRegistry()
    registry.load("repro.workloads.photoblur:PhotoBlurTask", 1)
    sandbox_per_phone = {
        phone.phone_id: PhoneSandbox(registry) for phone in testbed.phones
    }
    rendered: dict[str, np.ndarray] = {}
    for assignment in schedule:
        sandbox = sandbox_per_phone[assignment.phone_id]
        outcome = sandbox.execute_text(
            "blur", photo_texts[assignment.job_id]
        )
        assert isinstance(outcome, Finished)
        rendered[assignment.job_id] = text_to_grid(outcome.result)

    # Verify every frame against a direct blur.
    mismatches = [
        name
        for name, grid in photos.items()
        if not np.allclose(rendered[name], box_blur(grid, 1))
    ]
    print(
        f"\nrendered {len(rendered)} photos; "
        f"{len(rendered) - len(mismatches)} verified against direct blur"
    )
    assert not mismatches


if __name__ == "__main__":
    main()
