"""Benchmark-harness configuration.

Each ``test_bench_*`` module regenerates one paper figure/table.  The
figure-level benches run their experiment driver once per round (these
are end-to-end experiments, not micro-benchmarks) and print the same
rows/series the paper reports; run with ``-s`` to see them.

Scheduler benches additionally record their headline numbers through
the :func:`record_scheduler_bench` fixture; at session end the records
are written to ``BENCH_scheduler.json`` at the repository root so the
scheduler's perf trajectory is tracked from PR to PR (CI uploads the
file as an artifact).
"""

import json
import os
import platform
from pathlib import Path

import numpy
import pytest

_SCHEDULER_BENCH_RECORDS: dict = {}

_BENCH_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_scheduler.json"


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark timer.

    Experiment drivers are deterministic and heavy; a single round
    gives the regeneration cost without re-running minutes of work.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, iterations=1, rounds=1
        )

    return run


@pytest.fixture
def record_scheduler_bench():
    """Register one named record for the BENCH_scheduler.json emitter."""

    def record(name: str, **fields):
        _SCHEDULER_BENCH_RECORDS[name] = fields

    return record


def pytest_sessionfinish(session, exitstatus):
    """Emit BENCH_scheduler.json when any scheduler bench recorded data.

    Existing records from benches not run in this session are kept, so
    partial runs (e.g. CI smoke running only the micro-benches) never
    erase the fleet-scale numbers.
    """
    if not _SCHEDULER_BENCH_RECORDS:
        return
    # Schema 2 adds the numpy version, the CPU count, and per-record
    # kernel fields — enough context to interpret dual-kernel numbers.
    payload = {"schema": 2, "records": {}}
    if _BENCH_JSON_PATH.exists():
        try:
            previous = json.loads(_BENCH_JSON_PATH.read_text())
            payload["records"].update(previous.get("records", {}))
        except (OSError, ValueError):
            pass
    payload["records"].update(_SCHEDULER_BENCH_RECORDS)
    payload["python"] = platform.python_version()
    payload["machine"] = platform.machine()
    payload["numpy"] = numpy.__version__
    # The CPUs this process may actually run on (cgroup/affinity-aware),
    # not the machine's nominal core count — probe-worker sizing uses
    # the same detector, so the recorded numbers are interpretable on
    # throttled CI runners.
    from repro.core.capacity import available_cpus

    payload["cpu_count"] = available_cpus()
    payload["cpu_count_nominal"] = os.cpu_count()
    _BENCH_JSON_PATH.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
