"""Benchmark-harness configuration.

Each ``test_bench_*`` module regenerates one paper figure/table.  The
figure-level benches run their experiment driver once per round (these
are end-to-end experiments, not micro-benchmarks) and print the same
rows/series the paper reports; run with ``-s`` to see them.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under the benchmark timer.

    Experiment drivers are deterministic and heavy; a single round
    gives the regeneration cost without re-running minutes of work.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(
            fn, args=args, kwargs=kwargs, iterations=1, rounds=1
        )

    return run
