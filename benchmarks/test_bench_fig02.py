"""Bench: regenerate Figure 2 (charging-behaviour study, Figs. 2a–2c)."""

from repro.experiments import fig02_charging


def test_bench_fig02_charging_study(once):
    report = once(fig02_charging.run, days=28, seed=31)
    print()
    print(report)
    assert 6.0 <= report.measured["median_night_hours"] <= 9.0
    assert report.measured["fraction_night_under_2mb"] >= 0.6
