"""Bench: fuzz-campaign and oracle throughput.

The fuzz smoke gate runs on every CI push, so its cost has to stay
bounded: a 50-scenario campaign (the CI configuration) and a
100-instance differential sweep are timed here.  The campaign digest is
also asserted against a rerun inside the same bench, so a
nondeterminism regression shows up as a failure, not just a slowdown.
"""

from repro.verify import run_campaign
from repro.verify.differential import run_differential_campaign


def test_bench_fuzz_campaign(once):
    report = once(run_campaign, 50, seed=0, minimize=False)
    assert not report.failures, [f.violations for f in report.failures]
    rerun = run_campaign(50, seed=0, minimize=False)
    assert rerun.campaign_digest == report.campaign_digest
    print(
        f"\nfuzz campaign: {len(report.digests)} scenarios, "
        f"0 failures, digest {report.campaign_digest[:16]}…"
    )


def test_bench_differential_sweep(once):
    reports = once(run_differential_campaign, 100, seed=0)
    assert len(reports) == 100
    lp_checked = sum(1 for r in reports if r.lp_checked)
    print(
        f"\ndifferential sweep: {len(reports)} instances, "
        f"{lp_checked} LP-checked, all legs byte-identical"
    )
