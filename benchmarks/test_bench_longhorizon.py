"""Long-horizon operation bench: a week of continuous churned nights.

Runs the full :class:`~repro.sim.campaign.ContinuousCampaign` loop —
Poisson arrivals chained across nights, fleet churn, night-boundary
checkpoints into a snapshot store — and records the wall-clock cost as
``multi_night_campaign`` in ``BENCH_scheduler.json`` so CI's
``check_regression.py --guard multi_night_campaign.total_s`` tracks the
trajectory.  The bench also asserts the durability invariants the PR
guarantees: zero job loss across night boundaries and a checkpoint per
night.
"""

import time

from repro.sim.campaign import ContinuousCampaign, capacity_planning_report
from repro.sim.churn import FleetChurnModel

NIGHTS = 7


def test_bench_multi_night_campaign(record_scheduler_bench, tmp_path):
    campaign = ContinuousCampaign(
        seed=2012,
        arrival_rate_per_hour=40.0,
        churn=FleetChurnModel(),
        checkpoint_dir=tmp_path / "ckpt",
    )
    started = time.perf_counter()
    result = campaign.run(NIGHTS)
    total_s = time.perf_counter() - started

    assert len(result.nights) == NIGHTS
    assert result.checkpoints == NIGHTS
    # Job conservation across every night boundary.
    assert (
        result.total_jobs_completed + len(result.final_backlog)
        == result.total_submitted
    )
    report = capacity_planning_report(
        result, window_hours=campaign.window_hours
    )

    print(
        f"\n{NIGHTS} nights in {total_s:.2f}s: "
        f"{result.total_submitted} submitted, "
        f"{result.total_jobs_completed} completed, "
        f"backlog {len(result.final_backlog)}, "
        f"mean window utilization "
        f"{report['mean_window_utilization']:.2f}"
    )
    record_scheduler_bench(
        "multi_night_campaign",
        nights=NIGHTS,
        submitted=result.total_submitted,
        completed=result.total_jobs_completed,
        checkpoints=result.checkpoints,
        total_s=round(total_s, 2),
    )
