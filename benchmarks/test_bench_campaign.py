"""Extension bench: CWC as a week-long overnight service.

Runs a five-night campaign on the paper testbed with realistic unplug
failures and adaptive bandwidth re-measurement, printing per-night
makespans, failures, and prediction error (which should collapse after
the first nights as the predictor learns the fleet).
"""

from repro.core.greedy import CwcScheduler
from repro.core.prediction import RuntimePredictor
from repro.netmodel.scheduler import MeasurementScheduler
from repro.sim.campaign import OvernightCampaign
from repro.sim.entities import FleetGroundTruth
from repro.sim.failures import RandomUnplugModel
from repro.workloads.mixes import (
    evaluation_workload,
    paper_task_profiles,
    paper_testbed,
)


def test_bench_five_night_campaign(once):
    def run_campaign():
        testbed = paper_testbed()
        profiles = paper_task_profiles()
        truth = FleetGroundTruth(profiles, deviation_sigma=0.06, seed=3)
        predictor = RuntimePredictor(profiles, alpha=1.0)
        campaign = OvernightCampaign(
            testbed.phones,
            testbed.links,
            truth,
            predictor,
            CwcScheduler(),
            unplug_model=RandomUnplugModel([0.02] * 6 + [0.25] + [0.08] * 17),
            measurement_scheduler=MeasurementScheduler(),
            window_start_hour=0.0,
            window_hours=6.0,
            seed=8,
        )
        nights = [
            evaluation_workload(seed=300 + n, instances_per_task=15)
            for n in range(5)
        ]
        return campaign.run(nights)

    result = once(run_campaign)
    print("\nnight  makespan(s)  failures  overhead(s)  prediction error")
    for night in result.nights:
        print(
            f"{night.night_index:5d}  {night.measured_makespan_ms / 1000:10.1f}"
            f"  {night.failures:8d}  {night.reschedule_overhead_ms / 1000:10.1f}"
            f"  {night.prediction_error * 100:8.2f}%"
        )
    assert not result.final_backlog
    errors = result.prediction_errors()
    assert errors[-1] <= max(errors[0], 0.02)
