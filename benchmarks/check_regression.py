"""Bench-regression guard for the scheduler trajectory file.

Compares a freshly generated ``BENCH_scheduler.json`` against the
committed baseline and fails (exit 1) when a guarded record slowed
down by more than its allowed fraction.  CI copies the committed file
aside before the bench run, then invokes::

    python benchmarks/check_regression.py baseline.json BENCH_scheduler.json

By default only ``fleet_scale_full_pass.total_s`` is guarded: it is the
tracked headline number, and the sub-timings (build/bounds/search) are
noisy enough individually that guarding each would cause false alarms
on shared CI runners.  The 25 % default tolerance absorbs
runner-to-runner variance while still catching real hot-path
regressions, which have historically been multiples, not percentages.

Additional records can be guarded with repeatable ``--guard``
options of the form ``record.field`` or ``record.field:tolerance``::

    python benchmarks/check_regression.py baseline.json current.json \
        --guard fleet_scale_full_pass.total_s:0.25 \
        --guard telemetry_disabled_mid_pass.total_s:0.05

A guard whose record is missing from the *baseline* is skipped with a
note (the migration path for freshly added benches); a record missing
from the *current* file fails, because the bench that produces it
stopped reporting.

Both files must declare the schema-2 layout (``{"schema": 2,
"records": {...}}``); anything else fails fast rather than comparing
incomparable numbers.

Schema-2 context fields: alongside the timings, records may carry
search-configuration context — ``kernel``, ``batch_width`` (candidate
capacities per speculative probe block), and
``probe_worker_utilisation`` (fraction of speculative probe verdicts
the bisection actually consumed; 1.0 on serial searches).  Sharded
records add ``pods`` (resolved pod count), ``pod_assign`` (job
splitter policy), ``pod_solve_ms_max`` (the slowest single pod — the
critical path a pod-per-CPU pool pays), ``pod_solve_ms_sum`` (the
serial-equivalent pod cost), ``shard_bound_ratio``
(makespan over the pod-aggregated LP floor; the certified quality of
the sharded schedule, always >= 1), ``solve_critical_path_s`` (the
span tracer's critical path through the sharded solve — split, pod
solves, rebalance, assemble, LP certificate — which must explain
>= 95 % of ``solve_s``), and ``solve_overhead_s`` (the unspanned
residual of ``solve_s``; tracer bookkeeping plus scheduler
entry/exit).  The ``trace_overhead`` record (see
``test_bench_trace.py``) carries ``plain_s``/``traced_s`` interleaved
medians and ``overhead_fraction`` — guard ``traced_s``, never the
fraction (it is a ratio of two noisy numbers).  The file-level ``cpu_count`` is
affinity/cgroup-aware (see ``repro.core.capacity.available_cpus``)
with the nominal machine count in ``cpu_count_nominal``.  Context
fields are for interpreting timings across machines — never guard
them: a ratio like utilisation going *down* is not a slowdown, and
guards are one-sided.  ``shard_bound_ratio`` is the exception that
proves the rule: it *is* guarded (one-sided, higher = worse quality)
on the 4000×20000 record so a splitter regression cannot hide behind
a wall-time win.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

EXPECTED_SCHEMA = 2

DEFAULT_GUARDS = ("fleet_scale_full_pass.total_s",)


def load_records(path: Path) -> dict:
    try:
        data = json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"{path}: cannot read bench json: {exc}")
    if not isinstance(data, dict) or "records" not in data:
        raise SystemExit(f"{path}: not a bench trajectory file (no records)")
    schema = data.get("schema")
    if schema != EXPECTED_SCHEMA:
        raise SystemExit(
            f"{path}: bench schema {schema!r} unsupported "
            f"(expected {EXPECTED_SCHEMA})"
        )
    records = data["records"]
    if not isinstance(records, dict):
        raise SystemExit(f"{path}: records must be an object")
    return records


def parse_guard(text: str, default_tolerance: float) -> tuple[str, str, float]:
    """``record.field[:tolerance]`` -> (record, field, tolerance)."""
    spec, _, tolerance_text = text.partition(":")
    record, _, field = spec.partition(".")
    if not record or not field:
        raise SystemExit(
            f"bad --guard {text!r}: expected record.field[:tolerance]"
        )
    if tolerance_text:
        try:
            tolerance = float(tolerance_text)
        except ValueError:
            raise SystemExit(
                f"bad --guard {text!r}: tolerance must be a number"
            )
        if tolerance < 0:
            raise SystemExit(f"bad --guard {text!r}: tolerance must be >= 0")
    else:
        tolerance = default_tolerance
    return record, field, tolerance


def check_guard(
    baseline_records: dict,
    current_records: dict,
    record: str,
    field: str,
    tolerance: float,
) -> bool:
    """Apply one guard; prints the verdict, returns True when it holds."""
    label = f"{record}.{field}"
    if record not in baseline_records or field not in baseline_records.get(
        record, {}
    ):
        print(f"{label}: not in baseline, skipping (new bench?)")
        return True
    try:
        current = float(current_records[record][field])
    except (KeyError, TypeError, ValueError):
        print(
            f"{label}: present in baseline but missing from current run",
            file=sys.stderr,
        )
        return False
    baseline = float(baseline_records[record][field])
    limit = baseline * (1.0 + tolerance)
    verdict = "OK" if current <= limit else "REGRESSION"
    print(
        f"{label}: baseline {baseline:.3f}, current {current:.3f}, "
        f"limit {limit:.3f} (+{tolerance * 100.0:.0f}%) -> {verdict}"
    )
    if current > limit:
        slowdown = (current / baseline - 1.0) * 100.0 if baseline else 0.0
        print(
            f"{label} slowed by {slowdown:.0f}% "
            f"(allowed {tolerance * 100.0:.0f}%)",
            file=sys.stderr,
        )
        return False
    return True


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path, help="committed BENCH json")
    parser.add_argument("current", type=Path, help="freshly generated json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="default allowed fractional slowdown (default 0.25 = 25%%)",
    )
    parser.add_argument(
        "--guard",
        action="append",
        metavar="RECORD.FIELD[:TOLERANCE]",
        help="guard an additional record field (repeatable); "
        "without an explicit tolerance, --max-regression applies",
    )
    args = parser.parse_args(argv)

    baseline_records = load_records(args.baseline)
    current_records = load_records(args.current)

    guard_texts = list(DEFAULT_GUARDS) + list(args.guard or ())
    ok = True
    for text in guard_texts:
        record, field, tolerance = parse_guard(text, args.max_regression)
        ok &= check_guard(
            baseline_records, current_records, record, field, tolerance
        )
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
