"""Bench-regression guard for the scheduler trajectory file.

Compares a freshly generated ``BENCH_scheduler.json`` against the
committed baseline and fails (exit 1) when the fleet-scale full pass
slowed down by more than the allowed fraction.  CI copies the committed
file aside before the bench run, then invokes::

    python benchmarks/check_regression.py baseline.json BENCH_scheduler.json

Only ``fleet_scale_full_pass.total_s`` is guarded: it is the tracked
headline number, and the sub-timings (build/bounds/search) are noisy
enough individually that guarding each would cause false alarms on
shared CI runners.  The 25 % default tolerance absorbs runner-to-runner
variance while still catching real hot-path regressions, which have
historically been multiples, not percentages.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

GUARDED_RECORD = "fleet_scale_full_pass"
GUARDED_FIELD = "total_s"


def load_metric(path: Path) -> float:
    data = json.loads(path.read_text())
    try:
        value = data["records"][GUARDED_RECORD][GUARDED_FIELD]
    except KeyError as exc:
        raise SystemExit(
            f"{path}: missing records.{GUARDED_RECORD}.{GUARDED_FIELD} "
            f"(key {exc} not found)"
        )
    return float(value)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", type=Path, help="committed BENCH json")
    parser.add_argument("current", type=Path, help="freshly generated json")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fractional slowdown (default 0.25 = 25%%)",
    )
    args = parser.parse_args(argv)

    baseline = load_metric(args.baseline)
    current = load_metric(args.current)
    limit = baseline * (1.0 + args.max_regression)
    verdict = "OK" if current <= limit else "REGRESSION"
    print(
        f"{GUARDED_RECORD}.{GUARDED_FIELD}: baseline {baseline:.2f}s, "
        f"current {current:.2f}s, limit {limit:.2f}s -> {verdict}"
    )
    if current > limit:
        print(
            f"fleet-scale pass slowed by "
            f"{(current / baseline - 1.0) * 100.0:.0f}% "
            f"(allowed {args.max_regression * 100.0:.0f}%)",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
