"""Bench: regenerate Figure 1 (CoreMark comparison).

Also times the pure-Python CoreMark-flavoured kernels as a real CPU
micro-benchmark of the host.
"""

from repro.experiments import fig01_coremark
from repro.profiling.coremark import python_coremark


def test_bench_fig01_table(once):
    report = once(fig01_coremark.run)
    print()
    print(report)
    assert report.measured["tegra3_vs_core2duo"] > 1.0


def test_bench_python_coremark_kernels(benchmark):
    rate = benchmark(python_coremark, 2_000)
    assert rate > 0
