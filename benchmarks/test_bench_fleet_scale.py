"""Fleet-scale scheduler benchmarks (1 000 phones × 5 000 jobs).

The paper's testbed is 18 phones; the ROADMAP's north star is an
enterprise fleet.  These benches measure the full scheduling pass —
instance build, capacity bounds, bisection, packing — at a scale three
orders of magnitude past the paper, and pin the hot-path overhaul's
speedup against the frozen pre-optimisation reference
(:mod:`repro.core._reference`).

Two scales are used deliberately:

* **mid scale** (72 phones × 600 jobs) — large enough that the
  reference's O(P·J²) bound computation and O(items × bins) packing
  dominate, small enough that it still finishes; both paths run here
  and the speedup ratio is recorded (acceptance floor: 5×);
* **fleet scale** (1 000 phones × 5 000 jobs) — the reference would
  take hours (its bounds alone are ~2.5 × 10¹⁰ operations), so only
  the optimised path runs; its absolute wall time is the tracked
  trajectory number.

Headline numbers land in ``BENCH_scheduler.json`` via the
``record_scheduler_bench`` fixture.  The fleet-scale pass runs *first*
in the session: it is the tracked trajectory number, and running it
before the reference search's seconds of hot scalar Python keeps
single-core thermal drift out of the recorded figure.
"""

import dataclasses
import time

from repro.core._reference import ReferenceCapacitySearch
from repro.core.capacity import CapacitySearch
from repro.core.instance import SchedulingInstance
from repro.core.prediction import RuntimePredictor
from repro.core.serialize import schedule_to_dict
from repro.netmodel.measurement import measure_fleet
from repro.workloads.mixes import (
    evaluation_workload,
    paper_task_profiles,
    paper_testbed,
)

#: Acceptance floor for the optimised-vs-reference full-pass ratio.
MIN_SPEEDUP = 5.0


def _fleet_instance(n_phones: int, n_jobs: int) -> SchedulingInstance:
    """A synthetic fleet built by replicating the paper testbed."""
    testbed = paper_testbed()
    base = len(testbed.phones)
    copies = (n_phones + base - 1) // base
    phones = [
        dataclasses.replace(phone, phone_id=f"{phone.phone_id}-c{copy}")
        for copy in range(copies)
        for phone in testbed.phones
    ][:n_phones]
    base_b = measure_fleet(testbed.links)
    b = {
        f"{pid}-c{copy}": value
        for pid, value in base_b.items()
        for copy in range(copies)
    }
    workload = len(evaluation_workload())
    repeats = (n_jobs + workload - 1) // workload
    jobs = [
        dataclasses.replace(job, job_id=f"{job.job_id}-r{repeat}")
        for repeat in range(repeats)
        for job in evaluation_workload(seed=150 + repeat)
    ][:n_jobs]
    predictor = RuntimePredictor(paper_task_profiles())
    return SchedulingInstance.build(jobs, tuple(phones), b, predictor)


def test_bench_fleet_scale_full_pass(record_scheduler_bench):
    """1 000 phones × 5 000 jobs through the whole optimised path."""
    started = time.perf_counter()
    instance = _fleet_instance(n_phones=1000, n_jobs=5000)
    build_s = time.perf_counter() - started

    started = time.perf_counter()
    lower, upper = instance.capacity_bounds()
    bounds_s = time.perf_counter() - started
    assert 0.0 < lower <= upper

    started = time.perf_counter()
    result = CapacitySearch().run(instance)
    search_s = time.perf_counter() - started

    result.schedule.validate(instance)
    assert result.kernel == "numpy", "auto kernel should pick numpy here"
    assert result.shortcircuit_skips > 0, (
        "certificates never fired at fleet scale — the dead zone is back"
    )
    record_scheduler_bench(
        "fleet_scale_full_pass",
        phones=len(instance.phones),
        jobs=len(instance.jobs),
        build_s=round(build_s, 2),
        bounds_s=round(bounds_s, 2),
        search_s=round(search_s, 2),
        total_s=round(build_s + bounds_s + search_s, 2),
        capacity_ms=round(result.capacity_ms, 1),
        packer_passes=result.packer_passes,
        bisection_steps=result.bisection_steps,
        shortcircuit_skips=result.shortcircuit_skips,
        kernel=result.kernel,
        batch_width=result.batch_width,
        probe_worker_utilisation=round(result.probe_worker_utilisation, 3),
    )
    print(
        f"\nfleet scale (1000x5000): build {build_s:.1f}s, "
        f"bounds {bounds_s:.1f}s, search {search_s:.1f}s "
        f"({result.packer_passes} packs, "
        f"{result.shortcircuit_skips} certificate skips, "
        f"kernel={result.kernel}, batch_width={result.batch_width})"
    )


def test_bench_mid_scale_speedup_vs_reference(record_scheduler_bench):
    """Optimised vs frozen reference, same instance, same schedule."""
    instance = _fleet_instance(n_phones=72, n_jobs=600)

    started = time.perf_counter()
    optimised = CapacitySearch().run(instance)
    optimised_s = time.perf_counter() - started

    started = time.perf_counter()
    reference = ReferenceCapacitySearch().run(instance)
    reference_s = time.perf_counter() - started

    assert schedule_to_dict(optimised.schedule) == schedule_to_dict(
        reference.schedule
    ), "hot-path overhaul changed the schedule"
    assert optimised.capacity_ms == reference.capacity_ms

    speedup = reference_s / optimised_s
    record_scheduler_bench(
        "mid_scale_full_pass",
        phones=len(instance.phones),
        jobs=len(instance.jobs),
        optimised_s=round(optimised_s, 3),
        reference_s=round(reference_s, 3),
        speedup=round(speedup, 1),
        packer_passes=optimised.packer_passes,
        bisection_steps=optimised.bisection_steps,
        kernel=optimised.kernel,
    )
    print(
        f"\nmid scale (72x600): optimised {optimised_s:.2f}s, "
        f"reference {reference_s:.2f}s, speedup {speedup:.1f}x"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"full-pass speedup {speedup:.1f}x below the {MIN_SPEEDUP:.0f}x floor"
    )


def test_bench_warm_start_rescheduling(record_scheduler_bench):
    """Warm-started rescheduling at mid scale: fewer packs, same bytes."""
    instance = _fleet_instance(n_phones=72, n_jobs=600)
    # A rescheduling instant: a tail of the workload on the same fleet.
    tail_jobs = instance.jobs[: len(instance.jobs) // 4]
    tail = SchedulingInstance(
        jobs=tail_jobs,
        phones=instance.phones,
        b_ms_per_kb=instance.b_ms_per_kb,
        c_ms_per_kb={
            (phone.phone_id, job.job_id): instance.c(
                phone.phone_id, job.job_id
            )
            for phone in instance.phones
            for job in tail_jobs
        },
    )
    search = CapacitySearch()

    started = time.perf_counter()
    cold = search.run(tail)
    cold_s = time.perf_counter() - started

    # The next scheduling instant re-plans the same residual workload
    # seeded with the previous round's converged capacity — exactly what
    # ``CwcScheduler(warm_start=True)`` feeds forward.  (A hint from the
    # *full* 600-job instance would land above the feasibility
    # certificate's threshold and save nothing the certificate doesn't.)
    started = time.perf_counter()
    warm = search.run(tail, warm_hint_ms=cold.capacity_ms)
    warm_s = time.perf_counter() - started

    assert schedule_to_dict(warm.schedule) == schedule_to_dict(cold.schedule)
    assert warm.packer_passes < cold.packer_passes
    record_scheduler_bench(
        "warm_start_rescheduling",
        phones=len(tail.phones),
        jobs=len(tail.jobs),
        cold_s=round(cold_s, 3),
        warm_s=round(warm_s, 3),
        cold_packs=cold.packer_passes,
        warm_packs=warm.packer_passes,
        assumed_feasible=warm.assumed_feasible,
    )
    print(
        f"\nwarm start (72x150 reschedule): cold {cold.packer_passes} packs "
        f"{cold_s:.2f}s, warm {warm.packer_passes} packs {warm_s:.2f}s"
    )
