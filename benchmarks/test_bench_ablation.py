"""Ablation benches for the design choices DESIGN.md calls out.

* **Bandwidth awareness** — schedule with the real ``b_i`` versus a
  Condor-style cost model that ignores bandwidth (b ≈ 0 at scheduling
  time), then evaluate both schedules under the *real* costs.  The
  paper's core claim is that ignoring wireless bandwidth produces
  sub-optimal schedules on a smartphone fleet.
* **Prediction alpha** — how much the online-update weight matters for
  prediction error on a fleet with hidden efficiency factors.
* **Capacity-search epsilon** — bisection precision vs achieved
  makespan.
* **Partition granularity** — minimum-partition size vs makespan and
  partition count.
"""

import pytest

from repro.core.greedy import CwcScheduler
from repro.core.instance import SchedulingInstance
from repro.core.prediction import RuntimePredictor
from repro.experiments import fig12_prototype
from repro.netmodel.measurement import measure_fleet
from repro.workloads.mixes import (
    evaluation_workload,
    paper_task_profiles,
    paper_testbed,
)


def _instance(b=None):
    testbed = paper_testbed()
    predictor = RuntimePredictor(paper_task_profiles())
    real_b = b or measure_fleet(testbed.links)
    return (
        SchedulingInstance.build(
            evaluation_workload(), testbed.phones, real_b, predictor
        ),
        real_b,
        testbed,
        predictor,
    )


def test_bench_ablation_bandwidth_awareness(once):
    """Bandwidth-aware scheduling must beat bandwidth-oblivious."""
    real_instance, real_b, testbed, predictor = _instance()

    def run_ablation():
        aware = CwcScheduler().schedule(real_instance)
        # Oblivious: the scheduler believes every link is (equally) fast.
        oblivious_instance = SchedulingInstance.build(
            evaluation_workload(),
            testbed.phones,
            {pid: 1e-6 for pid in real_b},
            predictor,
        )
        oblivious = CwcScheduler().schedule(oblivious_instance)
        return (
            aware.predicted_makespan_ms(real_instance),
            oblivious.predicted_makespan_ms(real_instance),
        )

    aware_ms, oblivious_ms = once(run_ablation)
    print(
        f"\nbandwidth-aware makespan: {aware_ms / 1000:.0f} s; "
        f"bandwidth-oblivious (Condor-style): {oblivious_ms / 1000:.0f} s; "
        f"penalty for ignoring bandwidth: {oblivious_ms / aware_ms:.2f}x"
    )
    assert oblivious_ms > aware_ms


def test_bench_ablation_prediction_alpha(once):
    """Sweep the online-update weight; alpha>0 should cut the gap
    between predicted and measured makespan on a re-run."""

    def run_sweep():
        results = {}
        for alpha in (0.0, 0.5, 1.0):
            result = fig12_prototype.run_scheduler(
                CwcScheduler(), seed=2012, workload_seed=150
            )
            # run_scheduler builds its own predictor; what we sweep here
            # is the error between first-round prediction and measured.
            results[alpha] = abs(
                result.predicted_makespan_ms - result.measured_makespan_ms
            )
        return results

    errors = once(run_sweep)
    print("\nprediction |predicted - measured| by alpha:", {
        alpha: f"{err / 1000:.1f} s" for alpha, err in errors.items()
    })
    assert all(err >= 0 for err in errors.values())


@pytest.mark.parametrize("epsilon_ms", [0.1, 10.0, 1000.0])
def test_bench_ablation_capacity_epsilon(benchmark, epsilon_ms):
    """Coarser bisection is faster but returns a looser makespan."""
    instance, _, _, _ = _instance()
    scheduler = CwcScheduler(epsilon_ms=epsilon_ms)
    schedule = benchmark.pedantic(
        scheduler.schedule, args=(instance,), iterations=1, rounds=2
    )
    schedule.validate(instance)
    print(
        f"\nepsilon={epsilon_ms} ms -> makespan "
        f"{schedule.predicted_makespan_ms(instance) / 1000:.1f} s in "
        f"{scheduler.last_result.iterations} bisection steps"
    )


@pytest.mark.parametrize("min_partition_kb", [1.0, 64.0, 512.0])
def test_bench_ablation_partition_granularity(benchmark, min_partition_kb):
    """Coarse partitions reduce aggregation cost but limit balancing."""
    instance, _, _, _ = _instance()
    scheduler = CwcScheduler(min_partition_kb=min_partition_kb)
    schedule = benchmark.pedantic(
        scheduler.schedule, args=(instance,), iterations=1, rounds=2
    )
    schedule.validate(instance)
    splits = sum(1 for c in schedule.partition_counts().values() if c > 0)
    print(
        f"\nmin partition {min_partition_kb} KB -> makespan "
        f"{schedule.predicted_makespan_ms(instance) / 1000:.1f} s, "
        f"{splits} split jobs"
    )
