"""Bench: regenerate Figure 6 (predicted vs measured speedup)."""

from repro.experiments import fig06_speedup


def test_bench_fig06_speedup_scatter(once):
    report = once(fig06_speedup.run)
    print()
    print(report)
    assert report.measured["rms_relative_error"] < 0.4
