"""Bench: regenerate Figure 12 (prototype evaluation, parts a/b/c).

Also micro-benchmarks the greedy scheduler on the exact 18-phone ×
150-task instance the prototype uses.
"""

from repro.core.greedy import CwcScheduler
from repro.core.instance import SchedulingInstance
from repro.core.prediction import RuntimePredictor
from repro.experiments import fig12_prototype
from repro.netmodel.measurement import measure_fleet
from repro.workloads.mixes import (
    evaluation_workload,
    paper_task_profiles,
    paper_testbed,
)


def test_bench_fig12_prototype_runs(once):
    report = once(fig12_prototype.run)
    print()
    print(report)
    assert report.measured["equal_split_ratio"] > 1.3
    assert report.measured["unsplit_fraction"] >= 0.75


def _paper_instance():
    testbed = paper_testbed()
    predictor = RuntimePredictor(paper_task_profiles())
    b = measure_fleet(testbed.links)
    return SchedulingInstance.build(
        evaluation_workload(), testbed.phones, b, predictor
    )


def test_bench_greedy_scheduler_on_paper_instance(benchmark):
    instance = _paper_instance()
    scheduler = CwcScheduler()
    schedule = benchmark(scheduler.schedule, instance)
    schedule.validate(instance)
