"""Span-tracer overhead benches: tracing must observe, never slow.

PR 9 threads the span tracer through the scheduler's phases (build,
bounds, bisection steps, probe dispatch, pack) behind the same
``tracer is None`` guard the telemetry facade uses.  These benches pin
the two guarantees the flight recorder ships with:

* **disabled is free** — a run without tracing takes the exact same
  code path as before PR 9 (``maybe_span`` returns a shared null
  context), and its schedule is byte-identical to a traced run's
  (tracing observes, never steers);
* **enabled is cheap** — a fully traced mid-scale pass stays within
  ``MAX_TRACE_OVERHEAD`` of the untraced pass, measured as interleaved
  A/B medians so single-core drift cannot bias either side.  The
  traced median lands in ``BENCH_scheduler.json`` as
  ``trace_overhead`` for CI's
  ``check_regression.py --guard trace_overhead.traced_s:0.1`` guard.
"""

import statistics
import time

from repro.core.greedy import CwcScheduler
from repro.core.serialize import schedule_to_dict
from repro.obs import Telemetry

from .test_bench_fleet_scale import _fleet_instance

#: Allowed fractional overhead of a traced scheduling pass over the
#: untraced pass (medians of interleaved trials).
MAX_TRACE_OVERHEAD = 0.05

_TRIALS = 9


def test_bench_trace_overhead(record_scheduler_bench):
    """Traced vs untraced full pass, interleaved A/B medians."""
    instance = _fleet_instance(n_phones=72, n_jobs=600)

    # Warm both paths (allocation, caches) before timing anything.
    CwcScheduler().schedule(instance)
    CwcScheduler(
        telemetry=Telemetry.create(run_id="warm", tracing=True)
    ).schedule(instance)

    plain_trials: list[float] = []
    traced_trials: list[float] = []
    plain_schedule = traced_schedule = None
    span_count = 0
    for _ in range(_TRIALS):
        started = time.perf_counter()
        plain_schedule = CwcScheduler().schedule(instance)
        plain_trials.append(time.perf_counter() - started)

        telemetry = Telemetry.create(run_id="bench-trace", tracing=True)
        started = time.perf_counter()
        traced_schedule = CwcScheduler(telemetry=telemetry).schedule(
            instance
        )
        traced_trials.append(time.perf_counter() - started)
        span_count = len(telemetry.tracer.spans)

    assert schedule_to_dict(plain_schedule) == schedule_to_dict(
        traced_schedule
    ), "tracing changed the schedule — it must observe, never steer"
    assert span_count > 0, "the traced pass recorded no spans"

    plain_s = statistics.median(plain_trials)
    traced_s = statistics.median(traced_trials)
    overhead = traced_s / plain_s - 1.0
    record_scheduler_bench(
        "trace_overhead",
        phones=len(instance.phones),
        jobs=len(instance.jobs),
        trials=_TRIALS,
        spans=span_count,
        plain_s=round(plain_s, 4),
        traced_s=round(traced_s, 4),
        overhead_fraction=round(overhead, 4),
    )
    print(
        f"\ntrace overhead (72x600, median of {_TRIALS}): "
        f"plain {plain_s * 1000:.1f} ms, traced {traced_s * 1000:.1f} ms "
        f"({overhead * 100:+.1f}%, {span_count} spans)"
    )
    assert overhead <= MAX_TRACE_OVERHEAD, (
        f"traced scheduling pass costs {overhead * 100:.1f}% "
        f"(allowed {MAX_TRACE_OVERHEAD * 100:.0f}%) — span recording "
        "leaked into the hot loop"
    )


def test_bench_trace_disabled_identical():
    """Telemetry without tracing schedules byte-identically to plain."""
    instance = _fleet_instance(n_phones=72, n_jobs=600)
    plain = CwcScheduler().schedule(instance)
    untraced_tel = Telemetry.create(run_id="bench-untraced")
    assert untraced_tel.tracer is None, (
        "tracing must stay opt-in on Telemetry.create"
    )
    untraced = CwcScheduler(telemetry=untraced_tel).schedule(instance)
    assert schedule_to_dict(plain) == schedule_to_dict(untraced)
