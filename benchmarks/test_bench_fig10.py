"""Bench: regenerate Figure 10 (charging under no-task/continuous/MIMD)."""

from repro.experiments import fig10_throttling
from repro.power.battery import HTC_SENSATION
from repro.power.charging import simulate_charging
from repro.power.throttle import MimdThrottle


def test_bench_fig10_charging_schemes(once):
    report = once(fig10_throttling.run, dt_s=1.0)
    print()
    print(report)
    assert report.measured["htc_sensation_mimd_delay"] < 0.1


def test_bench_mimd_charging_simulation(benchmark):
    """Micro-benchmark of one full MIMD charging simulation."""
    trace = benchmark.pedantic(
        lambda: simulate_charging(HTC_SENSATION, MimdThrottle(), dt_s=5.0),
        iterations=1,
        rounds=3,
    )
    assert trace.reached_target
