"""Bench: regenerate Figure 11 (the testbed deployment layout)."""

from repro.experiments import fig11_testbed


def test_bench_fig11_deployment(once):
    report = once(fig11_testbed.run)
    print()
    print(report)
    assert report.measured["houses"] == 3
    assert report.measured["phones"] == 18
    assert report.measured["wifi_per_house"] == 2
