"""Batch-of-atomic-tasks concurrency (Section 4's task model).

"Although an atomic task cannot be parallelized, there are still
concurrency benefits when many such tasks are executed in batches" —
e.g. 1000 photos blurred one-per-phone.  This bench quantifies that:
the makespan of a photo batch on the full fleet versus a single phone,
which should approach the fleet's aggregate-capacity speedup.
"""

import random

from repro.core.greedy import CwcScheduler
from repro.core.instance import SchedulingInstance
from repro.core.model import Job, JobKind
from repro.core.prediction import RuntimePredictor
from repro.workloads.mixes import paper_task_profiles, paper_testbed


def _photo_batch(count: int, seed: int = 3):
    rng = random.Random(seed)
    return tuple(
        Job(
            job_id=f"photo-{i:04d}",
            task="blur",
            kind=JobKind.ATOMIC,
            executable_kb=80.0,
            input_kb=rng.uniform(200.0, 1200.0),
        )
        for i in range(count)
    )


def test_bench_atomic_batch_concurrency(once):
    def run():
        testbed = paper_testbed()
        predictor = RuntimePredictor(paper_task_profiles())
        rng = random.Random(1)
        b = {p.phone_id: rng.uniform(1.0, 10.0) for p in testbed.phones}
        jobs = _photo_batch(200)

        fleet_instance = SchedulingInstance.build(
            jobs, testbed.phones, b, predictor
        )
        fleet = CwcScheduler().schedule(fleet_instance)
        fleet_ms = fleet.predicted_makespan_ms(fleet_instance)

        one_phone = (testbed.phones[0],)
        solo_instance = SchedulingInstance.build(jobs, one_phone, b, predictor)
        solo = CwcScheduler().schedule(solo_instance)
        solo_ms = solo.predicted_makespan_ms(solo_instance)
        return fleet_ms, solo_ms, fleet.unsplit_fraction()

    fleet_ms, solo_ms, unsplit = once(run)
    speedup = solo_ms / fleet_ms
    print(
        f"\n200 atomic photos: single phone {solo_ms / 1000:.0f} s, "
        f"18-phone fleet {fleet_ms / 1000:.0f} s -> {speedup:.1f}x speedup "
        f"(all jobs unsplit: {unsplit == 1.0})"
    )
    assert unsplit == 1.0  # atomicity preserved for every photo
    assert speedup > 6.0   # batching atomic tasks parallelises well
