"""Bench: regenerate the Section 3.2 energy-cost table."""

import pytest

from repro.experiments import costs_table


def test_bench_costs_table(once):
    report = once(costs_table.run)
    print()
    print(report)
    assert report.measured["core2duo_server_per_year"] == pytest.approx(
        74.5, abs=0.5
    )
    assert report.measured["phone_per_year"] == pytest.approx(1.33, abs=0.02)
