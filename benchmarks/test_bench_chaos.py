"""Bench: chaos resilience on the 18-phone Fig. 12 testbed.

Injects flapping phones and mid-run CPU stragglers into the prototype
evaluation workload and measures what the hardened central server does
about it.  The headline comparison: with speculation enabled the
makespan under chaos drops versus the same chaos with detection only,
while every job still completes with verified aggregation (every
credited partition's input adds up to exactly the submitted input).
"""

import pytest

from repro.core.greedy import CwcScheduler
from repro.core.prediction import RuntimePredictor
from repro.netmodel.measurement import measure_fleet
from repro.sim.chaos import ChaosPlan, CpuSlowdown, ResiliencePolicy
from repro.sim.failures import FailurePlan
from repro.sim.metrics import compute_resilience_report
from repro.sim.server import CentralServer
from repro.sim.validation import check_run_invariants
from repro.workloads.mixes import (
    evaluation_workload,
    paper_task_profiles,
    paper_testbed,
)

#: Two phones silently slow to 6x for the whole run (the scheduler
#: keeps believing their clock-derived speed), two more flap silently:
#: phone-03 stays dark long enough for keep-alive detection (90 s of
#: missed probes), phone-12's outages are sub-detection blips.  Silent
#: (offline) failures lose all partition progress, so every credited
#: partition is a complete execution — aggregation totals stay exact.
CHAOS = ChaosPlan(
    failures=FailurePlan.flapping(
        "phone-03", first_ms=20_000.0, down_ms=150_000.0, up_ms=90_000.0,
        cycles=2, online=False,
    ).merged(
        FailurePlan.flapping(
            "phone-12", first_ms=50_000.0, down_ms=30_000.0,
            up_ms=120_000.0, cycles=2, online=False,
        )
    ),
    slowdowns=[
        CpuSlowdown("phone-01", 0.0, 6.0),
        CpuSlowdown("phone-08", 0.0, 6.0),
    ],
)


def _run_under_chaos(policy):
    testbed = paper_testbed(seed=2012)
    profiles = paper_task_profiles()
    from repro.sim.entities import FleetGroundTruth

    truth = FleetGroundTruth(profiles, deviation_sigma=0.03, seed=2012)
    predictor = RuntimePredictor(profiles)
    b = measure_fleet(testbed.links)
    aggregated = {}

    def on_result(job_id, task, phone_id, input_kb, payload):
        aggregated[job_id] = aggregated.get(job_id, 0.0) + input_kb

    server = CentralServer(
        testbed.phones,
        truth,
        predictor,
        CwcScheduler(),
        b,
        chaos=CHAOS,
        resilience=policy,
        on_result=on_result,
    )
    jobs = evaluation_workload(instances_per_task=8)
    result = server.run(jobs)
    check_run_invariants(result, jobs)
    return result, jobs, aggregated


def _assert_verified_aggregation(jobs, aggregated):
    """Every job's credited partitions sum to exactly its input."""
    assert set(aggregated) == {j.job_id for j in jobs}
    for job in jobs:
        assert aggregated[job.job_id] == pytest.approx(job.input_kb)


def test_bench_chaos_speculation_beats_detection_only(once):
    detection_only = ResiliencePolicy(straggler_factor=2.5)
    speculating = ResiliencePolicy(straggler_factor=2.5, speculate=True)

    result_off, jobs, agg_off = once(_run_under_chaos, detection_only)
    result_on, _, agg_on = _run_under_chaos(speculating)

    assert not result_off.unfinished_jobs
    assert not result_on.unfinished_jobs
    _assert_verified_aggregation(jobs, agg_off)
    _assert_verified_aggregation(jobs, agg_on)

    report_off = compute_resilience_report(result_off)
    report_on = compute_resilience_report(
        result_on, baseline_makespan_ms=result_off.measured_makespan_ms
    )
    print()
    print(
        f"chaos makespan, detection only : "
        f"{result_off.measured_makespan_ms / 1000:8.1f} s"
    )
    print(
        f"chaos makespan, speculation on : "
        f"{result_on.measured_makespan_ms / 1000:8.1f} s "
        f"({report_on.makespan_inflation:.2f}x of detection-only)"
    )
    print(
        f"speculations launched/won      : "
        f"{report_on.speculations_launched}/{report_on.speculations_won}"
    )
    print(
        f"wasted work (speculation on)   : "
        f"{report_on.wasted_work_ms / 1000:.1f} s "
        f"({report_on.wasted_fraction:.1%})"
    )
    assert report_off.stragglers_detected > 0
    assert report_on.speculations_launched > 0
    # The tentpole claim: same chaos seed, speculation strictly helps.
    assert (
        result_on.measured_makespan_ms < result_off.measured_makespan_ms
    )


def test_bench_chaos_hardened_server_survives_flapping(once):
    result, jobs, aggregated = once(
        _run_under_chaos, ResiliencePolicy.hardened()
    )
    assert not result.unfinished_jobs
    _assert_verified_aggregation(jobs, aggregated)
    report = compute_resilience_report(result)
    print()
    for line in report.summary_lines():
        print(line)
    assert report.rejoins == 4  # both flappers came back twice
    # phone-03's long outages cross the keep-alive miss budget;
    # phone-12's blips stay under it and are never detected.
    assert report.failures_detected >= 2
