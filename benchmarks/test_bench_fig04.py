"""Bench: regenerate Figure 4 (WiFi bandwidth stability, 3 houses)."""

from repro.experiments import fig04_wifi_stability


def test_bench_fig04_wifi_stability(once):
    report = once(fig04_wifi_stability.run, duration_s=600.0)
    print()
    print(report)
    assert report.measured["max_wifi_cv"] < 0.1
