"""Extension bench: proactive availability-aware scheduling.

Section 3.1 suggests per-user unplug profiles can steer work away from
phones likely to fail.  This bench quantifies the payoff: run the same
workload under the same stochastic unplug pattern with (a) the plain
greedy scheduler and (b) the availability-aware wrapper, and compare
rescheduling overhead and total makespan.
"""

import random

from repro.core.availability import AvailabilityAwareScheduler
from repro.core.greedy import CwcScheduler
from repro.core.prediction import RuntimePredictor
from repro.netmodel.measurement import measure_fleet
from repro.profiling.forecast import AvailabilityForecast
from repro.sim.entities import FleetGroundTruth
from repro.sim.failures import FailurePlan, PlannedFailure
from repro.sim.server import CentralServer
from repro.workloads.mixes import (
    evaluation_workload,
    paper_task_profiles,
    paper_testbed,
)


def _risky_fleet_run(scheduler_factory, *, seed=7):
    """Run the workload on a fleet where 1/3 of phones are flaky."""
    testbed = paper_testbed()
    rng = random.Random(seed)
    flaky = set(
        rng.sample([p.phone_id for p in testbed.phones], 6)
    )
    profiles = {
        p.phone_id: ([0.25] * 24 if p.phone_id in flaky else [0.01] * 24)
        for p in testbed.phones
    }
    forecast = AvailabilityForecast(profiles)

    # The actual failures follow the same risk pattern the forecast saw.
    plan = FailurePlan(
        PlannedFailure(pid, rng.uniform(30_000.0, 500_000.0), online=True)
        for pid in sorted(flaky)
        if rng.random() < 0.6
    )

    task_profiles = paper_task_profiles()
    truth = FleetGroundTruth(task_profiles, deviation_sigma=0.03, seed=seed)
    predictor = RuntimePredictor(task_profiles)
    b = measure_fleet(testbed.links)
    server = CentralServer(
        testbed.phones,
        truth,
        predictor,
        scheduler_factory(forecast),
        b,
        failure_plan=plan,
    )
    return server.run(evaluation_workload())


def test_bench_availability_aware_vs_plain(once):
    def run_both():
        plain = _risky_fleet_run(lambda forecast: CwcScheduler())
        aware = _risky_fleet_run(
            lambda forecast: AvailabilityAwareScheduler(
                CwcScheduler(),
                forecast,
                start_hour=0.0,
                expected_duration_hours=1.0,
                min_survival=0.1,
                risk_aversion=1.5,
            )
        )
        return plain, aware

    plain, aware = once(run_both)
    print(
        f"\nplain greedy: makespan {plain.measured_makespan_ms / 1000:.0f} s, "
        f"reschedule overhead {plain.reschedule_overhead_ms / 1000:.0f} s, "
        f"{len(plain.trace.failures)} failures"
    )
    print(
        f"availability-aware: makespan {aware.measured_makespan_ms / 1000:.0f} s, "
        f"reschedule overhead {aware.reschedule_overhead_ms / 1000:.0f} s, "
        f"{len(aware.trace.failures)} failures"
    )
    assert not plain.unfinished_jobs
    assert not aware.unfinished_jobs
    # Proactive placement must not lose more work than reactive recovery.
    assert (
        aware.reschedule_overhead_ms
        <= plain.reschedule_overhead_ms + plain.measured_makespan_ms
    )
