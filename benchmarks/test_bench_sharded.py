"""Sharded-scheduler benchmarks: past the monolithic interactive range.

PR 7 left the monolithic path at 3.6 s for 1 000 phones × 5 000 jobs;
one global solve couples fleet size to single-solve cost, so 4 000 ×
20 000 (16× the cells) is not interactive.  The sharded scheduler cuts
the fleet into pods, solves each with the same kernels, and certifies
the assembled makespan against the pod-aggregated LP floor — so the
tracked number here is both a wall-time and a *quality* trajectory:
``shard_bound_ratio = makespan / lp_floor`` must stay bounded while
the scale grows.

Two records land in ``BENCH_scheduler.json``:

* ``sharded_fleet_scale`` — the 4 000 × 20 000 certified solve (4 pods,
  greedy splitter, serial pod execution so the figure is comparable on
  the 1-CPU bench container; ``pod_solve_ms_max`` is the critical path
  a pod-per-CPU pool would pay, ``pod_solve_ms_sum`` the serial cost).
  The solve runs with the span tracer armed and decomposes its own
  wall time: ``solve_critical_path_s`` is the tracer's critical path
  through the sharded solve (split → pod solves → rebalance →
  assemble → LP certificate) and ``solve_overhead_s`` the slice of
  ``solve_s`` outside any span — the decomposition must explain
  ≥ 95 % of the measured solve;
* ``sharded_vs_monolithic`` — interleaved-median head-to-head at the
  PR 7 scale (1 000 × 5 000), certification off so both sides do the
  same work (solve + pack, no LP).  Interleaving mono/sharded rounds
  keeps single-core thermal drift from biasing either median.
"""

import statistics
import time

from repro.core.capacity import CapacitySearch
from repro.core.sharding import ShardedScheduler
from repro.obs import Telemetry
from repro.obs.profile import critical_path

from .test_bench_fleet_scale import _fleet_instance


def test_bench_sharded_fleet_scale(record_scheduler_bench):
    """4 000 phones × 20 000 jobs: certified 4-pod sharded solve."""
    started = time.perf_counter()
    instance = _fleet_instance(n_phones=4000, n_jobs=20000)
    build_s = time.perf_counter() - started

    telemetry = Telemetry.create(run_id="bench-sharded", tracing=True)
    scheduler = ShardedScheduler(
        pods=4, pod_assign="greedy", pod_workers=None, telemetry=telemetry
    )
    started = time.perf_counter()
    schedule = scheduler.schedule(instance)
    solve_s = time.perf_counter() - started
    result = scheduler.last_result

    schedule.validate(instance)
    assert result.pods == 4
    assert result.lp_floor_ms is not None, (
        "the pod LP must certify the fleet-scale solve"
    )
    assert result.max_height_ms >= result.lp_floor_ms * (1 - 1e-9)
    assert result.shard_bound_ratio >= 1.0 - 1e-9

    # Decompose the measured solve with the span tracer: the critical
    # path telescopes to the sharded_schedule root's duration, so the
    # residual is time outside any span (scheduler entry/exit, tracer
    # bookkeeping).  It must stay a rounding error at this scale.
    path = critical_path(telemetry.tracer.to_dicts())
    critical_s = sum(step.contribution_ms for step in path) / 1000.0
    overhead_s = solve_s - critical_s
    assert critical_s >= 0.95 * solve_s, (
        f"trace critical path ({critical_s:.2f}s) explains only "
        f"{critical_s / solve_s:.0%} of the measured solve ({solve_s:.2f}s)"
    )
    record_scheduler_bench(
        "sharded_fleet_scale",
        phones=len(instance.phones),
        jobs=len(instance.jobs),
        pods=result.pods,
        pod_assign=result.pod_assign,
        build_s=round(build_s, 2),
        solve_s=round(solve_s, 2),
        total_s=round(build_s + solve_s, 2),
        solve_critical_path_s=round(critical_s, 2),
        solve_overhead_s=round(overhead_s, 3),
        pod_solve_ms_max=round(result.pod_solve_ms_max, 1),
        pod_solve_ms_sum=round(result.pod_solve_ms_sum, 1),
        shard_bound_ratio=round(result.shard_bound_ratio, 3),
        lp_floor_ms=round(result.lp_floor_ms, 1),
        makespan_ms=round(result.max_height_ms, 1),
        rebalance_moves=result.rebalance_moves,
        kernel=result.kernel,
    )
    print(
        f"\nsharded fleet scale (4000x20000, 4 pods): build {build_s:.1f}s, "
        f"solve {solve_s:.1f}s (pod max {result.pod_solve_ms_max / 1000:.1f}s, "
        f"sum {result.pod_solve_ms_sum / 1000:.1f}s), "
        f"bound ratio {result.shard_bound_ratio:.3f}, "
        f"trace critical path {critical_s:.1f}s "
        f"(+{overhead_s * 1000:.0f} ms unspanned)"
    )


def test_bench_sharded_vs_monolithic(record_scheduler_bench):
    """Interleaved-median head-to-head at the PR 7 monolithic scale."""
    instance = _fleet_instance(n_phones=1000, n_jobs=5000)
    rounds = 3
    mono_s: list[float] = []
    sharded_s: list[float] = []
    sharded_result = None
    for _ in range(rounds):
        started = time.perf_counter()
        mono = CapacitySearch().run(instance)
        mono_s.append(time.perf_counter() - started)

        scheduler = ShardedScheduler(
            pods=4, pod_assign="greedy", pod_workers=None, certify=False
        )
        started = time.perf_counter()
        schedule = scheduler.schedule(instance)
        sharded_s.append(time.perf_counter() - started)
        sharded_result = scheduler.last_result
        schedule.validate(instance)

    mono_median = statistics.median(mono_s)
    sharded_median = statistics.median(sharded_s)
    # Quality: the sharded makespan stays within a bounded factor of
    # the monolithic one (the differential harness pins the LP side).
    assert sharded_result.max_height_ms <= mono.max_height_ms * 2.0
    record_scheduler_bench(
        "sharded_vs_monolithic",
        phones=len(instance.phones),
        jobs=len(instance.jobs),
        pods=sharded_result.pods,
        pod_assign=sharded_result.pod_assign,
        rounds=rounds,
        mono_s_median=round(mono_median, 2),
        sharded_s_median=round(sharded_median, 2),
        serial_ratio=round(sharded_median / mono_median, 3),
        pod_solve_ms_max=round(sharded_result.pod_solve_ms_max, 1),
        pod_solve_ms_sum=round(sharded_result.pod_solve_ms_sum, 1),
        mono_makespan_ms=round(mono.max_height_ms, 1),
        sharded_makespan_ms=round(sharded_result.max_height_ms, 1),
    )
    print(
        f"\nsharded vs monolithic (1000x5000, medians of {rounds}): "
        f"mono {mono_median:.2f}s, sharded-serial {sharded_median:.2f}s, "
        f"pod critical path {sharded_result.pod_solve_ms_max / 1000:.2f}s"
    )
