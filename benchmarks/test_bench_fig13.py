"""Bench: regenerate Figure 13 (greedy vs LP-relaxation gap).

The bench uses 50 random configurations (the statistics stabilise long
before the paper's 1000); the LP solve itself is micro-benchmarked on
the full-size instance.
"""

from repro.core.instance import SchedulingInstance
from repro.core.lp_bound import solve_relaxed_makespan
from repro.core.prediction import RuntimePredictor
from repro.experiments import fig13_lp_gap
from repro.netmodel.measurement import measure_fleet
from repro.workloads.mixes import (
    evaluation_workload,
    paper_task_profiles,
    paper_testbed,
)


def test_bench_fig13_lp_gap(once):
    report = once(fig13_lp_gap.run, configurations=50)
    print()
    print(report)
    assert report.measured["bound_violations"] == 0
    assert report.measured["median_gap"] >= 0.0


def test_bench_lp_relaxation_solve(benchmark):
    testbed = paper_testbed()
    predictor = RuntimePredictor(paper_task_profiles())
    b = measure_fleet(testbed.links)
    instance = SchedulingInstance.build(
        evaluation_workload(), testbed.phones, b, predictor
    )
    solution = benchmark.pedantic(
        solve_relaxed_makespan, args=(instance,), iterations=1, rounds=3
    )
    assert solution.makespan_ms > 0
