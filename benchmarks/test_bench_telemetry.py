"""Telemetry-overhead benches: disabled must cost (almost) nothing.

PR 4 threads an optional telemetry facade through the scheduler's hot
path — the packing kernel wrapper, the capacity search, the scheduler
``schedule()`` — all guarded by a single ``enabled`` check.  These
benches pin the guarantee that the *disabled* path (the default for
every existing caller) did not regress the PR 2/3 scheduler wins:

* the instrumented ``pack()`` wrapper is compared against the raw
  kernel body (``_pack_impl`` — exactly the pre-telemetry pack) on the
  same packer and capacities, same machine, same session: the median
  overhead must stay within ±5 %;
* a full telemetry-disabled mid-scale scheduling pass is recorded as
  ``telemetry_disabled_mid_pass`` in ``BENCH_scheduler.json``, so CI's
  ``check_regression.py --guard telemetry_disabled_mid_pass.total_s:0.05``
  tracks the absolute trajectory against the committed baseline;
* the enabled path must produce a byte-identical schedule (telemetry
  observes, never steers), with its overhead recorded for context.
"""

import statistics
import time

from repro.core.capacity import CapacitySearch
from repro.core.greedy import CwcScheduler
from repro.core.packing import GreedyPacker
from repro.core.serialize import schedule_to_dict
from repro.obs import Telemetry

from .test_bench_fleet_scale import _fleet_instance

#: Allowed fractional overhead of the instrumented pack wrapper over
#: the raw kernel body when telemetry is disabled.
MAX_PACK_OVERHEAD = 0.05

_TRIALS = 9
_PACKS_PER_TRIAL = 40


def _interleaved_medians(fn_a, fn_b, capacities) -> tuple[float, float]:
    """Median sweep times for two pack paths, trials interleaved A/B.

    Interleaving keeps slow drift (thermal throttling, background
    load) from landing entirely on one side of the comparison.
    """
    trials_a, trials_b = [], []
    for _ in range(_TRIALS):
        for fn, sink in ((fn_a, trials_a), (fn_b, trials_b)):
            started = time.perf_counter()
            for capacity_ms in capacities:
                fn(capacity_ms)
            sink.append(time.perf_counter() - started)
    return statistics.median(trials_a), statistics.median(trials_b)


def test_bench_pack_wrapper_overhead(record_scheduler_bench):
    """Instrumented pack() vs the raw kernel body, telemetry disabled."""
    instance = _fleet_instance(n_phones=72, n_jobs=600)
    packer = GreedyPacker(instance)
    lower, upper = instance.capacity_bounds()
    step = (upper - lower) / _PACKS_PER_TRIAL
    capacities = [lower + step * i for i in range(1, _PACKS_PER_TRIAL + 1)]

    # Warm both paths once (allocation, branch predictors, caches).
    packer._pack_impl(capacities[0])
    packer.pack(capacities[0])

    raw_s, wrapped_s = _interleaved_medians(
        packer._pack_impl, packer.pack, capacities
    )
    overhead = wrapped_s / raw_s - 1.0

    record_scheduler_bench(
        "telemetry_pack_overhead",
        phones=len(instance.phones),
        jobs=len(instance.jobs),
        raw_s=round(raw_s, 4),
        wrapped_s=round(wrapped_s, 4),
        overhead_fraction=round(overhead, 4),
    )
    print(
        f"\npack wrapper overhead (72x600, {_PACKS_PER_TRIAL} packs, "
        f"median of {_TRIALS}): raw {raw_s * 1000:.1f} ms, "
        f"wrapped {wrapped_s * 1000:.1f} ms ({overhead * 100:+.1f}%)"
    )
    assert overhead <= MAX_PACK_OVERHEAD, (
        f"telemetry-disabled pack wrapper costs {overhead * 100:.1f}% "
        f"(allowed {MAX_PACK_OVERHEAD * 100:.0f}%) — the hot path "
        "regressed; recording must stay out of the disabled path"
    )


def test_bench_telemetry_disabled_mid_pass(record_scheduler_bench):
    """Full mid-scale pass with telemetry disabled — the default path.

    This is the trajectory record the CI regression guard watches at a
    ±5 % tolerance; it must track ``mid_scale_full_pass`` (PR 3's
    number) because the disabled facade adds only dead branches.
    """
    instance = _fleet_instance(n_phones=72, n_jobs=600)

    started = time.perf_counter()
    disabled = CwcScheduler().schedule(instance)
    disabled_s = time.perf_counter() - started

    telemetry = Telemetry.create(run_id="bench")
    started = time.perf_counter()
    enabled = CwcScheduler(telemetry=telemetry).schedule(instance)
    enabled_s = time.perf_counter() - started

    assert schedule_to_dict(disabled) == schedule_to_dict(enabled), (
        "telemetry changed the schedule — it must observe, never steer"
    )
    assert telemetry.registry.counter_value("capacity_searches_total", kernel="python") == 1

    record_scheduler_bench(
        "telemetry_disabled_mid_pass",
        phones=len(instance.phones),
        jobs=len(instance.jobs),
        total_s=round(disabled_s, 3),
        enabled_s=round(enabled_s, 3),
        enabled_overhead_fraction=round(enabled_s / disabled_s - 1.0, 4),
    )
    print(
        f"\ntelemetry mid pass (72x600): disabled {disabled_s:.3f}s, "
        f"enabled {enabled_s:.3f}s "
        f"({(enabled_s / disabled_s - 1.0) * 100:+.1f}%)"
    )


def test_bench_capacity_search_disabled_equals_plain():
    """CapacitySearch with an explicit disabled facade is the plain path."""
    instance = _fleet_instance(n_phones=72, n_jobs=600)
    plain = CapacitySearch().run(instance)
    explicit = CapacitySearch(telemetry=None).run(instance)
    assert schedule_to_dict(plain.schedule) == schedule_to_dict(
        explicit.schedule
    )
    assert plain.capacity_ms == explicit.capacity_ms
    assert plain.packer_passes == explicit.packer_passes
