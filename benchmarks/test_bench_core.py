"""Micro-benchmarks of the core machinery (not tied to one figure).

These quantify the claim that the central server is lightweight — "a
rudimentary low cost PC will suffice" (Section 1): scheduling 150 tasks
over 18 phones, packing at a fixed capacity, event-loop throughput,
and the end-to-end simulated run.
"""

from repro.core.capacity import capacity_bounds
from repro.core.greedy import CwcScheduler
from repro.core.instance import SchedulingInstance
from repro.core.packing import GreedyPacker
from repro.core.prediction import RuntimePredictor
from repro.netmodel.measurement import measure_fleet
from repro.sim.engine import EventLoop
from repro.sim.entities import FleetGroundTruth
from repro.sim.server import CentralServer
from repro.workloads.mixes import (
    evaluation_workload,
    paper_task_profiles,
    paper_testbed,
)


def _paper_instance():
    testbed = paper_testbed()
    predictor = RuntimePredictor(paper_task_profiles())
    b = measure_fleet(testbed.links)
    return SchedulingInstance.build(
        evaluation_workload(), testbed.phones, b, predictor
    )


def test_bench_single_packing_pass(benchmark):
    instance = _paper_instance()
    packer = GreedyPacker(instance)
    lower, upper = capacity_bounds(instance)
    capacity = (lower + upper) / 2
    result = benchmark(packer.pack, capacity)
    assert result.capacity_ms == capacity


def test_bench_capacity_bounds_cold(benchmark):
    """First bounds computation on a fresh instance (fills the cache)."""

    def bounds_on_fresh_instance():
        return capacity_bounds(_paper_instance())

    lower, upper = benchmark.pedantic(
        bounds_on_fresh_instance, iterations=1, rounds=5
    )
    assert lower <= upper


def test_bench_capacity_bounds(benchmark):
    """Repeated bounds queries hit the per-instance cache."""
    instance = _paper_instance()
    capacity_bounds(instance)  # warm the cache
    lower, upper = benchmark(capacity_bounds, instance)
    assert lower <= upper


def test_bench_event_loop_throughput(benchmark):
    """Dispatch 10k chained events."""

    def run_loop():
        loop = EventLoop()
        count = 0

        def tick():
            nonlocal count
            count += 1
            if count < 10_000:
                loop.schedule_after(1.0, tick)

        loop.schedule_after(1.0, tick)
        loop.run()
        return count

    assert benchmark(run_loop) == 10_000


def test_bench_end_to_end_simulated_run(benchmark):
    """Full prototype run: schedule + dispatch + execute + aggregate."""

    def run():
        testbed = paper_testbed()
        profiles = paper_task_profiles()
        truth = FleetGroundTruth(profiles, deviation_sigma=0.03, seed=1)
        predictor = RuntimePredictor(profiles)
        b = measure_fleet(testbed.links)
        server = CentralServer(
            testbed.phones, truth, predictor, CwcScheduler(), b
        )
        return server.run(evaluation_workload())

    result = benchmark.pedantic(run, iterations=1, rounds=3)
    assert not result.unfinished_jobs


def _scaled_instance(n_jobs_factor: int, n_phone_copies: int):
    """Grow the paper instance by replicating jobs and phones."""
    import dataclasses

    testbed = paper_testbed()
    phones = []
    for copy in range(n_phone_copies):
        for phone in testbed.phones:
            phones.append(
                dataclasses.replace(
                    phone, phone_id=f"{phone.phone_id}-c{copy}"
                )
            )
    predictor = RuntimePredictor(paper_task_profiles())
    base_b = measure_fleet(testbed.links)
    b = {
        f"{pid}-c{copy}": value
        for pid, value in base_b.items()
        for copy in range(n_phone_copies)
    }
    jobs = []
    for repeat in range(n_jobs_factor):
        for job in evaluation_workload(seed=150 + repeat):
            jobs.append(
                dataclasses.replace(job, job_id=f"{job.job_id}-r{repeat}")
            )
    return SchedulingInstance.build(jobs, tuple(phones), b, predictor)


def test_bench_scheduler_scaling_300_jobs_18_phones(benchmark):
    """Twice the paper's workload on the paper's fleet."""
    instance = _scaled_instance(n_jobs_factor=2, n_phone_copies=1)
    schedule = benchmark.pedantic(
        CwcScheduler().schedule, args=(instance,), iterations=1, rounds=2
    )
    schedule.validate(instance)


def test_bench_scheduler_scaling_150_jobs_54_phones(benchmark):
    """The paper's workload on a 3x fleet — the enterprise-scale case."""
    instance = _scaled_instance(n_jobs_factor=1, n_phone_copies=3)
    schedule = benchmark.pedantic(
        CwcScheduler().schedule, args=(instance,), iterations=1, rounds=2
    )
    schedule.validate(instance)
