"""Scheduler tournament: the Fig. 12a comparison over many seeds.

A single prototype run can flatter any scheduler; this bench repeats
the greedy-vs-baselines comparison across randomised bandwidth
configurations and prints the paired makespan distributions.
"""

import random

from repro.analysis.compare import compare_schedulers, render_comparison
from repro.core.baselines import EqualSplitScheduler, RoundRobinScheduler
from repro.core.greedy import CwcScheduler
from repro.core.instance import SchedulingInstance
from repro.core.prediction import RuntimePredictor
from repro.workloads.mixes import (
    evaluation_workload,
    paper_task_profiles,
    paper_testbed,
)


def _factory(seed: int) -> SchedulingInstance:
    testbed = paper_testbed()
    predictor = RuntimePredictor(paper_task_profiles())
    rng = random.Random(seed)
    b = {phone.phone_id: rng.uniform(1.0, 70.0) for phone in testbed.phones}
    return SchedulingInstance.build(
        evaluation_workload(instances_per_task=20), testbed.phones, b, predictor
    )


def test_bench_scheduler_tournament(once):
    results = once(
        compare_schedulers,
        [CwcScheduler(), EqualSplitScheduler(), RoundRobinScheduler()],
        _factory,
        trials=8,
    )
    print()
    print(render_comparison(results))
    assert results[0].name == "cwc-greedy"
    # The paper's claim generalises: greedy wins by a clear margin on
    # every random configuration, not just the prototype's.
    runner_up = results[1]
    assert runner_up.mean_ms > results[0].mean_ms * 1.2


def test_bench_policy_tournament(record_scheduler_bench):
    """Wall-clock cost of a seeded Monte Carlo policy tournament.

    Records ``policy_tournament`` in ``BENCH_scheduler.json`` so CI's
    ``check_regression.py --guard policy_tournament.total_s`` tracks
    the harness trajectory: every leg replays a fuzzed scenario through
    the full simulator with the invariant oracle armed, so a slowdown
    here means either the simulator hot path or a policy regressed.
    """
    import time

    from repro.verify.tournament import run_tournament

    started = time.perf_counter()
    report = run_tournament(
        6,
        policies=("cwc-greedy", "replication", "energy-aware"),
        regimes=("calm", "churn"),
        seed=0,
    )
    total_s = time.perf_counter() - started

    assert report.ok, report.violation_count
    legs = len(report.legs)
    print(
        f"\n{legs} tournament legs in {total_s:.2f}s "
        f"({total_s / legs * 1000:.0f} ms/leg), digest {report.digest[:12]}"
    )
    record_scheduler_bench(
        "policy_tournament",
        policies=len(report.policies),
        regimes=len(report.regimes),
        legs=legs,
        violations=report.violation_count,
        total_s=round(total_s, 2),
    )
