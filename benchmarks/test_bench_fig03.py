"""Bench: regenerate Figure 3 (unplug availability, Figs. 3a–3c)."""

from repro.experiments import fig03_availability


def test_bench_fig03_availability(once):
    report = once(fig03_availability.run, days=28, seed=31)
    print()
    print(report)
    assert report.measured["cumulative_unplug_by_8am"] < 0.35
