"""Bench: regenerate Figure 5 (600-file turnaround CDFs, 6 vs 4 phones)."""

from repro.experiments import fig05_bandwidth_variability


def test_bench_fig05_turnaround_cdfs(once):
    report = once(fig05_bandwidth_variability.run, n_files=600)
    print()
    print(report)
    assert (
        report.measured["p90_fast_phones_ms"]
        < report.measured["p90_all_phones_ms"]
    )


def test_bench_fifo_dispatch_throughput(benchmark):
    """Micro-benchmark of the FIFO dispatch loop itself."""
    service = {f"p{i}": 100.0 + 50.0 * i for i in range(6)}
    outcome = benchmark(
        fig05_bandwidth_variability.fifo_dispatch, service, 600
    )
    assert len(outcome.turnaround_ms) == 600
